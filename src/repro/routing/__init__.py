"""Routing substrate: shortest paths, ECMP, k-shortest paths, detours.

All functions are deterministic: ties between equal-cost paths are
broken lexicographically on the node sequence, so experiments are
reproducible across runs and platforms.
"""

from repro.routing.paths import (
    Path,
    cached_path_links,
    path_hops,
    path_links,
    path_stretch,
    validate_path,
)
from repro.routing.shortest import (
    all_pairs_hop_counts,
    dijkstra,
    shortest_path,
    shortest_path_length,
)
from repro.routing.ecmp import all_shortest_paths, ecmp_hash, ecmp_path_for_flow
from repro.routing.ksp import k_shortest_paths
from repro.routing.detour import (
    DetourBreakdown,
    DetourClass,
    DetourTable,
    classify_link_detour,
    detour_breakdown,
    find_detour_paths,
)

__all__ = [
    "Path",
    "cached_path_links",
    "path_hops",
    "path_links",
    "path_stretch",
    "validate_path",
    "dijkstra",
    "shortest_path",
    "shortest_path_length",
    "all_pairs_hop_counts",
    "all_shortest_paths",
    "ecmp_hash",
    "ecmp_path_for_flow",
    "k_shortest_paths",
    "DetourClass",
    "DetourBreakdown",
    "DetourTable",
    "classify_link_detour",
    "detour_breakdown",
    "find_detour_paths",
]
