"""Detour discovery and classification — the Table 1 machinery.

The paper classifies every link of an ISP map by the length of the
best alternative ("detour") path between its endpoints when the link
itself is removed:

- **1 hop**  — a detour through a single intermediate node exists
  (the link closes a triangle);
- **2 hops** — best detour uses two intermediate nodes;
- **3+ hops** — best detour uses three or more intermediate nodes;
- **N/A**    — the link is a bridge: no alternative path at all.

:class:`DetourTable` additionally enumerates the concrete detour paths
around each link (up to a configurable depth); the INRP strategies use
it to spill excess traffic around congested links.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RoutingError, TopologyError
from repro.routing.paths import Path
from repro.topology.graph import Link, Node, Topology


class DetourClass(enum.Enum):
    """Detour availability class of a link (paper Table 1 columns)."""

    ONE_HOP = "1 hop"
    TWO_HOP = "2 hops"
    THREE_PLUS = "3+ hops"
    NONE = "N/A"


def _alternative_hop_distance(topo: Topology, u: Node, v: Node) -> Optional[int]:
    """Hop distance from *u* to *v* ignoring the direct link, or None.

    A plain BFS that refuses to take the edge ``(u, v)`` on its first
    step — equivalent to removing the link, without copying the graph.
    """
    if not topo.has_link(u, v):
        raise TopologyError(f"unknown link: {u!r} -- {v!r}")
    seen = {u}
    queue = deque([(u, 0)])
    while queue:
        node, dist = queue.popleft()
        for neighbour in topo.neighbors(node):
            if node == u and neighbour == v:
                continue  # the removed link itself
            if neighbour == v:
                return dist + 1
            if neighbour not in seen:
                seen.add(neighbour)
                queue.append((neighbour, dist + 1))
    return None


def classify_link_detour(topo: Topology, u: Node, v: Node) -> DetourClass:
    """Classify link ``(u, v)`` by its best detour length.

    The "1 hop" class of the paper means one intermediate node, i.e.
    an alternative path of 2 links.
    """
    distance = _alternative_hop_distance(topo, u, v)
    if distance is None:
        return DetourClass.NONE
    if distance == 2:
        return DetourClass.ONE_HOP
    if distance == 3:
        return DetourClass.TWO_HOP
    return DetourClass.THREE_PLUS


@dataclass
class DetourBreakdown:
    """Per-class link counts for one topology (one Table 1 row)."""

    counts: Dict[DetourClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in DetourClass}
    )

    @property
    def total_links(self) -> int:
        return sum(self.counts.values())

    def percentage(self, detour_class: DetourClass) -> float:
        """Share of links in *detour_class*, in percent."""
        total = self.total_links
        if total == 0:
            raise RoutingError("breakdown over an empty topology")
        return 100.0 * self.counts[detour_class] / total

    def percentages(self) -> Tuple[float, float, float, float]:
        """``(one_hop, two_hop, three_plus, none)`` percentages."""
        return (
            self.percentage(DetourClass.ONE_HOP),
            self.percentage(DetourClass.TWO_HOP),
            self.percentage(DetourClass.THREE_PLUS),
            self.percentage(DetourClass.NONE),
        )


def detour_breakdown(topo: Topology) -> DetourBreakdown:
    """Classify every link of *topo* (one row of Table 1)."""
    breakdown = DetourBreakdown()
    for u, v in topo.links():
        breakdown.counts[classify_link_detour(topo, u, v)] += 1
    return breakdown


def find_detour_paths(
    topo: Topology, u: Node, v: Node, max_intermediate: int = 2
) -> List[Path]:
    """Concrete detour paths around link ``(u, v)``.

    Returns simple paths ``u -> ... -> v`` that avoid the direct link
    and use at most *max_intermediate* intermediate nodes, sorted by
    length then lexicographically.  ``max_intermediate=1`` yields the
    paper's 1-hop detours (common neighbours of *u* and *v*).
    """
    if not topo.has_link(u, v):
        raise TopologyError(f"unknown link: {u!r} -- {v!r}")
    if max_intermediate < 1:
        raise RoutingError(f"max_intermediate must be >= 1, got {max_intermediate}")
    results: List[Path] = []
    neighbours_u = set(topo.neighbors(u))
    neighbours_v = set(topo.neighbors(v))
    for w in sorted(neighbours_u & neighbours_v, key=repr):
        if w not in (u, v):
            results.append((u, w, v))
    if max_intermediate >= 2:
        for w1 in sorted(neighbours_u - {v}, key=repr):
            for w2 in sorted(neighbours_v - {u}, key=repr):
                if w1 == w2 or w1 == u or w2 == v:
                    continue
                if topo.has_link(w1, w2):
                    results.append((u, w1, w2, v))
    if max_intermediate >= 3:
        results.extend(
            _deep_detours(topo, u, v, max_intermediate, {p for p in results})
        )
    results.sort(key=lambda p: (len(p), tuple(repr(n) for n in p)))
    return results


def _deep_detours(
    topo: Topology, u: Node, v: Node, max_intermediate: int, known: set
) -> List[Path]:
    """DFS enumeration of longer simple detours (depth >= 3)."""
    found: List[Path] = []
    limit = max_intermediate + 1  # links allowed

    def _dfs(path: List[Node]) -> None:
        head = path[-1]
        if len(path) - 1 > limit:
            return
        for neighbour in sorted(topo.neighbors(head), key=repr):
            if len(path) == 1 and neighbour == v:
                continue  # the direct link
            if neighbour == v:
                candidate = tuple(path) + (v,)
                if candidate not in known and len(candidate) >= 5:
                    found.append(candidate)
                    known.add(candidate)
                continue
            if neighbour in path:
                continue
            if len(path) - 1 + 1 < limit:
                path.append(neighbour)
                _dfs(path)
                path.pop()

    _dfs([u])
    return found


class DetourTable:
    """Pre-computed detour options for every link of a topology.

    Parameters
    ----------
    max_intermediate:
        Detour depth: 1 reproduces the paper's "routers exploit up to
        1-hop detours"; 2 additionally allows the detour-of-detour
        ("nodes on the detour path can further detour, but for one
        extra hop only").
    """

    def __init__(self, topo: Topology, max_intermediate: int = 2):
        if max_intermediate < 1:
            raise RoutingError(
                f"max_intermediate must be >= 1, got {max_intermediate}"
            )
        self.topology = topo
        self.max_intermediate = max_intermediate
        # Options are stored per directed link: the reverse orientation
        # holds the same detours walked backwards, so both directions
        # enumerate candidates in the same deterministic order.
        self._options: Dict[Link, List[Path]] = {}
        for u, v in topo.links():
            forward = find_detour_paths(topo, u, v, max_intermediate)
            self._options[(u, v)] = forward
            self._options[(v, u)] = [tuple(reversed(path)) for path in forward]

    def options(self, u: Node, v: Node) -> List[Path]:
        """Detour paths around the directed link ``(u, v)``, oriented u -> v."""
        stored = self._options.get((u, v))
        if stored is None:
            raise TopologyError(f"unknown link: {u!r} -- {v!r}")
        return list(stored)

    def has_detour(self, u: Node, v: Node) -> bool:
        return bool(self._options.get((u, v)))

    def __len__(self) -> int:
        """Number of physical links covered by the table."""
        return len(self._options) // 2
