"""Path representation and helpers.

A path is a plain tuple of nodes ``(n0, n1, ..., nk)``.  Using tuples
(rather than a class) keeps paths hashable, cheap and directly usable
as dictionary keys by the allocators.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

from repro.errors import RoutingError
from repro.topology.graph import Link, Node, Topology

Path = Tuple[Node, ...]


def path_hops(path: Sequence[Node]) -> int:
    """Number of links traversed by *path*.

    >>> path_hops((1, 2, 4))
    2
    """
    if len(path) < 1:
        raise RoutingError("a path needs at least one node")
    return len(path) - 1


def path_links(path: Sequence[Node]) -> List[Link]:
    """Directed links traversed by *path*, in traversal order.

    Each hop is the traversal-order tuple ``(u, v)`` — the canonical
    directed link key consumed by the allocators, so forward and
    reverse traffic over the same physical link never alias.
    """
    return list(zip(path, path[1:]))


@lru_cache(maxsize=65536)
def cached_path_links(path: Path) -> Tuple[Link, ...]:
    """Directed links of *path* as a cached tuple.

    The result depends only on the path itself and may be shared
    across topologies.  The allocators call this in their hot loops;
    caching amortises link derivation to once per distinct path.
    """
    return tuple(zip(path, path[1:]))


def validate_path(topo: Topology, path: Sequence[Node]) -> Path:
    """Check that *path* is a simple path over existing links.

    Returns the path as a tuple; raises :class:`RoutingError` on any
    violation (unknown node, missing link, repeated node).
    """
    if len(path) < 1:
        raise RoutingError("a path needs at least one node")
    for node in path:
        if not topo.has_node(node):
            raise RoutingError(f"unknown node on path: {node!r}")
    if len(set(path)) != len(path):
        raise RoutingError(f"path revisits a node: {tuple(path)!r}")
    for u, v in zip(path, path[1:]):
        if not topo.has_link(u, v):
            raise RoutingError(f"path uses missing link: {u!r} -- {v!r}")
    return tuple(path)


def path_stretch(path: Sequence[Node], shortest_hops: int) -> float:
    """Multiplicative path stretch relative to the shortest path.

    This is the paper's Fig. 4b metric: hops taken divided by hops of
    the shortest path between the same endpoints.

    >>> path_stretch((1, 3, 2), 2)
    1.0
    """
    if shortest_hops <= 0:
        raise RoutingError(f"shortest_hops must be positive, got {shortest_hops}")
    return path_hops(path) / shortest_hops
