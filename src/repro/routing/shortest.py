"""Deterministic single-source shortest paths.

Implemented from scratch (heap-based Dijkstra) so that tie-breaking is
under our control: when several predecessors give the same distance,
the lexicographically smallest ``repr`` wins, making routing tables
stable across runs, platforms and networkx versions.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.errors import NoPathError, RoutingError
from repro.routing.paths import Path
from repro.topology.graph import Node, Topology

WeightFn = Callable[[Node, Node], float]


def _hop_weight(_u: Node, _v: Node) -> float:
    return 1.0


def _node_rank(node: Node):
    return (str(type(node).__name__), repr(node))


def dijkstra(
    topo: Topology,
    source: Node,
    weight: Optional[WeightFn] = None,
    target: Optional[Node] = None,
) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Single-source shortest distances and predecessors.

    Parameters
    ----------
    weight:
        Callable ``(u, v) -> cost``; defaults to hop count, the metric
        used throughout the paper's evaluation.
    target:
        Stop as soon as this node is settled.  The returned maps then
        cover only the explored region, but the path to *target* (and
        its tie-break) is exactly the one a full run would produce: a
        settled node's predecessor chain can no longer change, and
        every tie-break update for *target* comes from a node with a
        strictly smaller distance, settled earlier.  This is what
        makes per-flow routing on locality-bounded workloads cheap —
        the search explores the neighbourhood, not the whole map.

    Returns
    -------
    (distances, predecessors):
        ``distances[n]`` is the cost from *source*; nodes unreachable
        from *source* are absent.  ``predecessors[n]`` is the chosen
        previous hop (deterministic tie-break).
    """
    if not topo.has_node(source):
        raise RoutingError(f"unknown node: {source!r}")
    weight = weight or _hop_weight
    distances: Dict[Node, float] = {source: 0.0}
    predecessors: Dict[Node, Node] = {}
    visited = set()
    frontier = [(0.0, _node_rank(source), source)]
    while frontier:
        dist, _, node = heapq.heappop(frontier)
        if node in visited:
            continue
        visited.add(node)
        if target is not None and node == target:
            break
        for neighbour in topo.neighbors(node):
            if neighbour in visited:
                continue
            cost = weight(node, neighbour)
            if cost < 0:
                raise RoutingError(f"negative link weight on {node!r} -- {neighbour!r}")
            candidate = dist + cost
            best = distances.get(neighbour)
            if (
                best is None
                or candidate < best - 1e-12
                or (
                    abs(candidate - best) <= 1e-12
                    and _node_rank(node) < _node_rank(predecessors[neighbour])
                )
            ):
                distances[neighbour] = candidate
                predecessors[neighbour] = node
                heapq.heappush(frontier, (candidate, _node_rank(neighbour), neighbour))
    return distances, predecessors


def shortest_path(
    topo: Topology,
    source: Node,
    destination: Node,
    weight: Optional[WeightFn] = None,
) -> Path:
    """The deterministic shortest path from *source* to *destination*.

    Raises :class:`NoPathError` when the nodes are disconnected.
    """
    if not topo.has_node(destination):
        raise RoutingError(f"unknown node: {destination!r}")
    distances, predecessors = dijkstra(topo, source, weight, target=destination)
    if destination not in distances:
        raise NoPathError(source, destination)
    path = [destination]
    while path[-1] != source:
        path.append(predecessors[path[-1]])
    path.reverse()
    return tuple(path)


def path_from_tree(
    topo: Topology,
    source: Node,
    destination: Node,
    tree: Tuple[Dict[Node, float], Dict[Node, Node]],
) -> Path:
    """The shortest path read out of a full single-source Dijkstra tree.

    ``tree`` is the ``(distances, predecessors)`` pair of a *full*
    :func:`dijkstra` run from *source* (no ``target``).  Per the
    tie-break argument in :func:`dijkstra`, the reconstructed path is
    exactly what :func:`shortest_path` would return — callers routing
    many destinations from the same source can amortise one tree over
    all of them.  Raises :class:`NoPathError` when disconnected.
    """
    if not topo.has_node(destination):
        raise RoutingError(f"unknown node: {destination!r}")
    distances, predecessors = tree
    if destination not in distances:
        raise NoPathError(source, destination)
    path = [destination]
    while path[-1] != source:
        path.append(predecessors[path[-1]])
    path.reverse()
    return tuple(path)


def shortest_path_length(
    topo: Topology,
    source: Node,
    destination: Node,
    weight: Optional[WeightFn] = None,
) -> float:
    """Cost of the shortest path (hops by default)."""
    target = destination if topo.has_node(destination) else None
    distances, _ = dijkstra(topo, source, weight, target=target)
    if destination not in distances:
        raise NoPathError(source, destination)
    return distances[destination]


def all_pairs_hop_counts(topo: Topology) -> Dict[Node, Dict[Node, int]]:
    """Hop distance between every pair of nodes (BFS per node)."""
    result: Dict[Node, Dict[Node, int]] = {}
    for source in topo.nodes():
        distances, _ = dijkstra(topo, source)
        result[source] = {node: int(dist) for node, dist in distances.items()}
    return result


def iter_sp_next_hops(
    topo: Topology, destination: Node
) -> Iterator[Tuple[Node, Node]]:
    """Yield ``(node, next_hop)`` pairs of the SP tree toward *destination*.

    Used to build FIBs for the chunk-level simulator: for every node
    that can reach *destination*, the deterministic next hop on its
    shortest path.
    """
    distances, predecessors = dijkstra(topo, destination)
    for node in distances:
        if node == destination:
            continue
        # Predecessor in the tree rooted at `destination` is the next hop.
        yield node, predecessors[node]
