"""Yen's k-shortest loopless paths.

Used by the INRP flow-level strategy to pre-compute alternative
sub-paths, and exposed as a general substrate.  Implemented from
scratch on top of our deterministic Dijkstra, with the textbook
root-path/spur-node structure.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.errors import NoPathError, RoutingError
from repro.routing.paths import Path, path_hops
from repro.routing.shortest import WeightFn, shortest_path
from repro.topology.graph import Node, Topology


def _spur_path(
    topo: Topology,
    spur_node: Node,
    destination: Node,
    banned_links: Set[Tuple[Node, Node]],
    banned_nodes: Set[Node],
    weight: Optional[WeightFn],
) -> Optional[Path]:
    """Shortest path avoiding banned links/nodes, or None."""
    scratch = topo.copy("ksp-scratch")
    for u, v in banned_links:
        if scratch.has_link(u, v):
            scratch.remove_link(u, v)
    for node in banned_nodes:
        if scratch.has_node(node):
            for neighbour in list(scratch.neighbors(node)):
                scratch.remove_link(node, neighbour)
    try:
        return shortest_path(scratch, spur_node, destination, weight)
    except NoPathError:
        return None


def k_shortest_paths(
    topo: Topology,
    source: Node,
    destination: Node,
    k: int,
    weight: Optional[WeightFn] = None,
) -> List[Path]:
    """Up to *k* loopless paths in non-decreasing cost order.

    Raises :class:`NoPathError` if even one path does not exist, and
    returns fewer than *k* paths when the graph does not contain them.
    """
    if k < 1:
        raise RoutingError(f"k must be >= 1, got {k}")
    accepted: List[Path] = [shortest_path(topo, source, destination, weight)]
    candidates: List[Tuple[float, Path]] = []

    def _cost(path: Path) -> float:
        if weight is None:
            return float(path_hops(path))
        return sum(weight(u, v) for u, v in zip(path, path[1:]))

    while len(accepted) < k:
        previous = accepted[-1]
        for i in range(len(previous) - 1):
            spur_node = previous[i]
            root = previous[: i + 1]
            banned_links: Set[Tuple[Node, Node]] = set()
            for path in accepted:
                if path[: i + 1] == root and len(path) > i + 1:
                    banned_links.add((path[i], path[i + 1]))
            banned_nodes = set(root[:-1])
            spur = _spur_path(
                topo, spur_node, destination, banned_links, banned_nodes, weight
            )
            if spur is None:
                continue
            candidate = root[:-1] + spur
            entry = (_cost(candidate), candidate)
            if candidate not in accepted and entry not in candidates:
                candidates.append(entry)
        if not candidates:
            break
        candidates.sort(key=lambda item: (item[0], tuple(repr(n) for n in item[1])))
        _, best = candidates.pop(0)
        accepted.append(best)
    return accepted
