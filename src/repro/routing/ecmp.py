"""Equal-cost multipath (ECMP) helpers.

The paper's Fig. 4a compares INRP against per-flow ECMP (RFC 2992
style): each flow is hashed onto one of the equal-cost shortest paths
between its endpoints.  :func:`all_shortest_paths` enumerates the
equal-cost set deterministically; :func:`ecmp_path_for_flow` performs
the stable per-flow hash.
"""

from __future__ import annotations

import zlib
from typing import Dict, List

from repro.errors import NoPathError
from repro.routing.paths import Path
from repro.routing.shortest import dijkstra
from repro.topology.graph import Node, Topology


def all_shortest_paths(topo: Topology, source: Node, destination: Node) -> List[Path]:
    """All minimum-hop paths from *source* to *destination*, sorted.

    Paths are enumerated by walking the shortest-path DAG backwards
    from the destination and returned in lexicographic node order, so
    the list is deterministic.
    """
    distances, _ = dijkstra(topo, source)
    if destination not in distances:
        raise NoPathError(source, destination)

    paths: List[Path] = []

    def _extend(suffix: List[Node]) -> None:
        head = suffix[-1]
        if head == source:
            paths.append(tuple(reversed(suffix)))
            return
        target = distances[head] - 1
        for neighbour in topo.neighbors(head):
            if distances.get(neighbour) == target:
                suffix.append(neighbour)
                _extend(suffix)
                suffix.pop()

    _extend([destination])
    paths.sort(key=lambda p: tuple(repr(n) for n in p))
    return paths


def ecmp_hash(flow_id: int, num_paths: int) -> int:
    """Stable hash of *flow_id* onto ``range(num_paths)``.

    Uses CRC32 so the mapping does not change across Python processes
    (``hash`` is salted).
    """
    if num_paths <= 0:
        raise NoPathError(None, None, "empty ECMP path set")
    digest = zlib.crc32(str(flow_id).encode("utf-8"))
    return digest % num_paths


def ecmp_path_for_flow(
    topo: Topology, source: Node, destination: Node, flow_id: int
) -> Path:
    """The ECMP path assigned to *flow_id* between the endpoints."""
    paths = all_shortest_paths(topo, source, destination)
    return paths[ecmp_hash(flow_id, len(paths))]


def ecmp_path_table(
    topo: Topology, source: Node, destination: Node
) -> Dict[int, Path]:
    """Enumerated ECMP choice table (index -> path), for inspection."""
    return dict(enumerate(all_shortest_paths(topo, source, destination)))
