"""Command-line interface: regenerate every paper artifact.

Usage::

    python -m repro table1               # Table 1 with paper deltas
    python -m repro fig3 [--duration S]  # fluid + chunk-level Fig. 3
    python -m repro fig4 [--snapshots N] # Fig. 4a bars + Fig. 4b CDF
    python -m repro export-isp telstra out.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.fig3 import run_fig3_all
from repro.analysis.fig4 import run_fig4
from repro.analysis.table1 import run_table1
from repro.topology.io import save_topology
from repro.topology.isp import ISP_NAMES, build_isp_topology


def _cmd_table1(args: argparse.Namespace) -> int:
    result = run_table1(seed=args.seed)
    print(result.render())
    print(f"\nmax deviation from the paper: {result.max_error:.4f} pp")
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    results = run_fig3_all(duration=args.duration)
    for result in results.values():
        print(result.comparisons().render())
        print()
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    result = run_fig4(seed=args.seed, num_snapshots=args.snapshots)
    print(result.render_fig4a())
    print()
    print(result.comparisons().render())
    print()
    print(result.render_fig4b())
    return 0


def _cmd_export_isp(args: argparse.Namespace) -> int:
    topo = build_isp_topology(args.isp, seed=args.seed)
    save_topology(topo, args.output)
    print(f"wrote {topo!r} to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Revisiting Resource Pooling' (HotNets 2014)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("table1", help="Table 1: detour availability")

    fig3 = commands.add_parser("fig3", help="Fig. 3: fairness worked example")
    fig3.add_argument(
        "--duration", type=float, default=20.0, help="chunk-sim seconds"
    )

    fig4 = commands.add_parser("fig4", help="Fig. 4: flow-level evaluation")
    fig4.add_argument(
        "--snapshots", type=int, default=8, help="snapshots per configuration"
    )
    fig4.set_defaults(seed=42)

    export = commands.add_parser("export-isp", help="export an ISP map as JSON")
    export.add_argument("isp", choices=list(ISP_NAMES))
    export.add_argument("output", help="output JSON path")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "fig3": _cmd_fig3,
        "fig4": _cmd_fig4,
        "export-isp": _cmd_export_isp,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
