"""Command-line interface: regenerate every paper artifact.

Usage::

    python -m repro table1               # Table 1 with paper deltas
    python -m repro fig3 [--duration S]  # fluid + chunk-level Fig. 3
    python -m repro fig4 [--snapshots N] # Fig. 4a bars + Fig. 4b CDF
    python -m repro export-isp telstra out.json
    python -m repro validate [--scenarios NAMES] [--engine ENGINE]
    python -m repro campaign list
    python -m repro campaign run --scenarios table1,fig4 --grid seed=0,1,2
    python -m repro campaign report
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.errors import ReproError
from repro.analysis.fig3 import run_fig3_all
from repro.analysis.fig4 import run_fig4
from repro.analysis.reporting import ascii_table
from repro.analysis.table1 import run_table1
from repro.campaign.grid import parse_grid
from repro.campaign.runner import CampaignRunner, plan_runs
from repro.campaign.scenario import iter_scenarios
from repro.campaign.store import DEFAULT_RESULTS_DIR, ResultStore
from repro.topology.io import save_topology
from repro.topology.isp import ISP_NAMES, build_isp_topology
from repro.validation import run_all_validations

#: Per-command seed defaults, applied only when the user does not pass
#: an explicit ``--seed`` (fig4's calibrated operating point is seed 42).
#: ``campaign run`` is absent deliberately: there ``--seed`` is a base
#: seed mixed per scenario via :func:`repro.rng.derive_seed`, and
#: omitting it keeps each scenario's own calibrated default.
_SEED_DEFAULTS = {"table1": 0, "fig4": 42, "export-isp": 0}


def _split_names(text: Optional[str]) -> List[str]:
    """Split a comma-separated option value, dropping blanks/whitespace."""
    if not text:
        return []
    return [name.strip() for name in text.split(",") if name.strip()]


def _effective_seed(args: argparse.Namespace) -> int:
    """The user's explicit ``--seed`` if given, else the command default."""
    if args.seed is not None:
        return args.seed
    return _SEED_DEFAULTS.get(args.command, 0)


def _cmd_table1(args: argparse.Namespace) -> int:
    result = run_table1(seed=_effective_seed(args))
    print(result.render())
    print(f"\nmax deviation from the paper: {result.max_error:.4f} pp")
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    results = run_fig3_all(duration=args.duration)
    for result in results.values():
        print(result.comparisons().render())
        print()
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    result = run_fig4(seed=_effective_seed(args), num_snapshots=args.snapshots)
    print(result.render_fig4a())
    print()
    print(result.comparisons().render())
    print()
    print(result.render_fig4b())
    return 0


def _cmd_export_isp(args: argparse.Namespace) -> int:
    topo = build_isp_topology(args.isp, seed=_effective_seed(args))
    save_topology(topo, args.output)
    print(f"wrote {topo!r} to {args.output}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    names = _split_names(args.scenarios) or None
    reports = run_all_validations(names=names, engine=args.engine)
    for report in reports:
        print(report.render())
        print()
    failed = [report for report in reports if not report.passed]
    print(
        f"cross-fidelity: {len(reports) - len(failed)}/{len(reports)} "
        f"scenario(s) within tolerance"
    )
    return 1 if failed else 0


def _cmd_campaign_list(args: argparse.Namespace) -> int:
    tags = _split_names(args.tags) or None
    rows = []
    for scenario in iter_scenarios(tags=tags):
        params = ", ".join(
            f"{name}={default!r}" for name, default in scenario.defaults.items()
        )
        rows.append(
            [scenario.name, ",".join(scenario.tags), scenario.summary, params]
        )
    print(
        ascii_table(
            ["scenario", "tags", "summary", "parameters (defaults)"],
            rows,
            title=f"registered scenarios ({len(rows)})",
        )
    )
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    scenario_names = _split_names(args.scenarios)
    if not scenario_names:
        print("no scenarios selected", file=sys.stderr)
        return 2
    grid = parse_grid(args.grid or [])
    specs = plan_runs(scenario_names, grid, base_seed=args.seed)
    runner = CampaignRunner(
        store=ResultStore(args.results_dir),
        workers=args.workers,
        force=args.force,
    )
    report = runner.run(specs)
    for outcome in report.outcomes:
        status = "cached " if outcome.cached else "computed"
        print(f"[{status}] {outcome.spec.describe()} -> {outcome.path}")
    print(report.summary())
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.results_dir)
    scenario_names = _split_names(args.scenarios) or [None]
    rows = []
    for scenario in scenario_names:
        for record in store.iter_records(scenario):
            params = ", ".join(
                f"{k}={v!r}" for k, v in sorted(record["params"].items())
            )
            headline = ", ".join(
                f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in record["result"].items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            )
            rows.append([record["scenario"], record["run_key"], params, headline])
    if not rows:
        print(f"no records under {store.root}/ (run a campaign first)")
        return 0
    print(
        ascii_table(
            ["scenario", "run key", "parameters", "scalar results"],
            rows,
            title=f"{len(rows)} stored record(s) in {store.root}/",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Revisiting Resource Pooling' (HotNets 2014)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="experiment seed (default: 0, except fig4 which uses its "
        "calibrated seed 42); for 'campaign run' this is a base seed "
        "mixed per scenario, and omitting it keeps scenario defaults",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("table1", help="Table 1: detour availability")

    fig3 = commands.add_parser("fig3", help="Fig. 3: fairness worked example")
    fig3.add_argument(
        "--duration", type=float, default=20.0, help="chunk-sim seconds"
    )

    fig4 = commands.add_parser("fig4", help="Fig. 4: flow-level evaluation")
    fig4.add_argument(
        "--snapshots", type=int, default=8, help="snapshots per configuration"
    )

    export = commands.add_parser("export-isp", help="export an ISP map as JSON")
    export.add_argument("isp", choices=list(ISP_NAMES))
    export.add_argument("output", help="output JSON path")

    validate = commands.add_parser(
        "validate",
        help="cross-fidelity validation: chunksim vs flowsim agreement",
    )
    validate.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated calibrated scenario names (default: all)",
    )
    validate.add_argument(
        "--engine",
        default="modern",
        choices=("modern", "reference"),
        help="chunk-level event engine to validate (default: modern)",
    )

    campaign = commands.add_parser(
        "campaign", help="orchestrate scenario campaigns (sweeps, caching)"
    )
    campaign_commands = campaign.add_subparsers(
        dest="campaign_command", required=True
    )

    campaign_list = campaign_commands.add_parser(
        "list", help="list registered scenarios"
    )
    campaign_list.add_argument(
        "--tags", default=None, help="comma-separated tag filter"
    )

    campaign_run = campaign_commands.add_parser(
        "run", help="run scenarios over a parameter grid"
    )
    campaign_run.add_argument(
        "--scenarios",
        required=True,
        help="comma-separated scenario names (see 'campaign list')",
    )
    campaign_run.add_argument(
        "--grid",
        action="append",
        metavar="KEY=V1,V2,...",
        help="parameter axis to sweep; repeatable, applied to every "
        "selected scenario that accepts the parameter",
    )
    campaign_run.add_argument(
        "--workers", type=int, default=1, help="worker processes (default 1)"
    )
    campaign_run.add_argument(
        "--force",
        action="store_true",
        help="recompute runs even when a cached record exists",
    )
    campaign_run.add_argument(
        "--results-dir",
        default=DEFAULT_RESULTS_DIR,
        help=f"result store directory (default {DEFAULT_RESULTS_DIR}/)",
    )

    campaign_report = campaign_commands.add_parser(
        "report", help="summarise stored campaign records"
    )
    campaign_report.add_argument(
        "--results-dir",
        default=DEFAULT_RESULTS_DIR,
        help=f"result store directory (default {DEFAULT_RESULTS_DIR}/)",
    )
    campaign_report.add_argument(
        "--scenarios", default=None, help="comma-separated scenario filter"
    )

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "fig3": _cmd_fig3,
        "fig4": _cmd_fig4,
        "export-isp": _cmd_export_isp,
        "validate": _cmd_validate,
    }
    campaign_handlers = {
        "list": _cmd_campaign_list,
        "run": _cmd_campaign_run,
        "report": _cmd_campaign_report,
    }
    try:
        if args.command == "campaign":
            return campaign_handlers[args.campaign_command](args)
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
