"""Scenario registry — the declarative catalogue of runnable experiments.

A *scenario* is a named, parameterised experiment whose result is a
plain JSON-serialisable mapping.  Drivers register themselves with the
:func:`register_scenario` decorator::

    @register_scenario("table1", summary="Table 1 detour availability")
    def scenario_table1(seed: int = 0) -> dict:
        ...

The registry is what the campaign runner, the CLI (``python -m repro
campaign list``) and the result store key off: a scenario's name plus a
concrete parameter assignment fully identifies a run.

Scenario functions must

- accept only keyword-able parameters with defaults (so every scenario
  is runnable with zero arguments),
- be deterministic given their parameters (seeds are explicit
  parameters, never ambient state), and
- return a JSON-serialisable mapping (``dict`` of str keys to scalars,
  lists or nested dicts).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

ScenarioFunc = Callable[..., Mapping[str, Any]]


@dataclass(frozen=True)
class Scenario:
    """A registered experiment: name, callable and parameter schema."""

    name: str
    func: ScenarioFunc
    summary: str
    tags: Tuple[str, ...] = ()
    #: Parameter name -> default value, from the function signature.
    defaults: Mapping[str, Any] = field(default_factory=dict)

    @property
    def params(self) -> Tuple[str, ...]:
        return tuple(self.defaults)

    def accepts(self, param: str) -> bool:
        return param in self.defaults

    def bind(self, **overrides: Any) -> Dict[str, Any]:
        """Full parameter assignment: defaults overlaid with *overrides*."""
        unknown = sorted(set(overrides) - set(self.defaults))
        if unknown:
            raise ConfigurationError(
                f"scenario {self.name!r} does not accept parameter(s) "
                f"{', '.join(unknown)}; accepted: {', '.join(self.params)}"
            )
        bound = dict(self.defaults)
        bound.update(overrides)
        return bound

    def run(self, **overrides: Any) -> Mapping[str, Any]:
        """Execute the scenario with defaults overlaid by *overrides*."""
        result = self.func(**self.bind(**overrides))
        if not isinstance(result, Mapping):
            raise ConfigurationError(
                f"scenario {self.name!r} returned {type(result).__name__}, "
                "expected a JSON-serialisable mapping"
            )
        return result


_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(
    name: str, summary: str = "", tags: Sequence[str] = ()
) -> Callable[[ScenarioFunc], ScenarioFunc]:
    """Decorator: add a scenario function to the global registry.

    Every parameter of the decorated function must have a default so
    the scenario is runnable as-is; grid axes override per run.
    Re-registering a name replaces the previous entry (so module
    reloads in tests stay idempotent).
    """

    def decorator(func: ScenarioFunc) -> ScenarioFunc:
        signature = inspect.signature(func)
        defaults: Dict[str, Any] = {}
        for param in signature.parameters.values():
            if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
                raise ConfigurationError(
                    f"scenario {name!r}: *args/**kwargs parameters are not "
                    "supported"
                )
            if param.default is inspect.Parameter.empty:
                raise ConfigurationError(
                    f"scenario {name!r}: parameter {param.name!r} needs a "
                    "default value"
                )
            defaults[param.name] = param.default
        _REGISTRY[name] = Scenario(
            name=name,
            func=func,
            summary=summary or (inspect.getdoc(func) or "").split("\n")[0],
            tags=tuple(tags),
            defaults=defaults,
        )
        return func

    return decorator


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name (after builtin scenarios are loaded)."""
    load_builtin_scenarios()
    scenario = _REGISTRY.get(name)
    if scenario is None:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ConfigurationError(f"unknown scenario {name!r}; known: {known}")
    return scenario


def iter_scenarios(tags: Optional[Sequence[str]] = None) -> List[Scenario]:
    """All registered scenarios (optionally filtered by tag), by name."""
    load_builtin_scenarios()
    scenarios = sorted(_REGISTRY.values(), key=lambda s: s.name)
    if tags:
        wanted = set(tags)
        scenarios = [s for s in scenarios if wanted & set(s.tags)]
    return scenarios


def load_builtin_scenarios() -> None:
    """Import every module that registers built-in scenarios.

    Registration happens at import time via :func:`register_scenario`,
    so this is idempotent and cheap after the first call.  Worker
    processes call it before executing a run so the registry exists in
    every interpreter.
    """
    import repro.analysis.ablations  # noqa: F401
    import repro.analysis.fig3  # noqa: F401
    import repro.analysis.fig4  # noqa: F401
    import repro.analysis.table1  # noqa: F401
    import repro.campaign.sweeps  # noqa: F401
    import repro.validation.harness  # noqa: F401
