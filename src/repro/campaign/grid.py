"""Parameter-grid parsing and expansion for campaign sweeps.

A grid is a mapping of parameter name to the list of values to sweep;
the cartesian product of all axes yields the run points.  On the CLI a
grid arrives as repeated ``--grid key=v1,v2,...`` options::

    python -m repro campaign run --scenarios table1,fig4 \
        --grid seed=0,1,2 --grid detour_depth=1,2

Values are parsed leniently: ``int`` first, then ``float``, then the
literals ``true``/``false``/``none``, falling back to the raw string —
so ``seed=0,1,2`` sweeps integers while ``isp=telstra,exodus`` sweeps
topology names.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Mapping, Sequence

from repro.errors import ConfigurationError

GridValue = Any
Grid = Dict[str, List[GridValue]]


def parse_grid_value(text: str) -> GridValue:
    """Parse one grid value: int, float, bool/None literal or string."""
    lowered = text.strip().lower()
    literals = {"true": True, "false": False, "none": None, "null": None}
    if lowered in literals:
        return literals[lowered]
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text.strip()


def parse_grid_axis(spec: str) -> tuple:
    """Parse one ``key=v1,v2,...`` axis spec into ``(key, values)``."""
    if "=" not in spec:
        raise ConfigurationError(
            f"grid axis {spec!r} is not of the form key=v1,v2,..."
        )
    key, _, raw_values = spec.partition("=")
    key = key.strip()
    values = [parse_grid_value(v) for v in raw_values.split(",") if v.strip() != ""]
    if not key or not values:
        raise ConfigurationError(
            f"grid axis {spec!r} needs a key and at least one value"
        )
    return key, values


def parse_grid(specs: Iterable[str]) -> Grid:
    """Parse repeated ``key=v1,v2`` specs into a grid mapping.

    Repeating a key extends its value list (duplicate values are an
    error — they would silently collapse into one cached run).
    """
    grid: Grid = {}
    for spec in specs:
        key, values = parse_grid_axis(spec)
        existing = grid.setdefault(key, [])
        for value in values:
            if value in existing:
                raise ConfigurationError(
                    f"grid axis {key!r} lists value {value!r} twice"
                )
            existing.append(value)
    return grid


def expand_grid(grid: Mapping[str, Sequence[GridValue]]) -> List[Dict[str, GridValue]]:
    """Cartesian product of all axes, in axis-declaration order.

    An empty grid yields one empty assignment (the scenario's
    defaults).
    """
    if not grid:
        return [{}]
    keys = list(grid)
    products = itertools.product(*(grid[key] for key in keys))
    return [dict(zip(keys, values)) for values in products]
