"""Grid-sweep scenarios that go beyond the paper's fixed operating points.

The paper evaluates INRP at a handful of points; resource pooling's
benefit is an *aggregate* claim, so these scenarios expose every knob —
seed × ISP topology × routing strategy × detour depth × load — as a
campaign grid axis.  A typical sweep::

    python -m repro campaign run --scenarios snapshot-sweep \
        --grid seed=0,1,2 --grid isp=telstra,exodus,tiscali \
        --grid strategy=sp,ecmp,inrp --grid detour_depth=0,1,2 \
        --workers 8
"""

from __future__ import annotations

from typing import Any, Dict

from repro.analysis.fig4 import run_snapshot_cell
from repro.campaign.scenario import register_scenario
from repro.topology.isp import build_isp_topology
from repro.units import mbps


@register_scenario(
    "snapshot-sweep",
    summary="flow-level snapshot point: one (seed, isp, strategy, depth) cell",
    tags=("sweep", "flowsim"),
)
def scenario_snapshot_sweep(
    seed: int = 0,
    isp: str = "telstra",
    strategy: str = "inrp",
    detour_depth: int = 2,
    num_snapshots: int = 8,
    demand_mbps: float = 10.0,
    flows_per_node: float = 1.0 / 12.0,
    max_hops: int = 5,
) -> Dict[str, Any]:
    """One cell of the Fig. 4-style sweep grid.

    Grid axes are the parameters; the campaign runner takes the
    cartesian product, so a full seed × isp × strategy × depth sweep is
    one ``campaign run`` invocation instead of a hand-rolled loop.
    """
    topo = build_isp_topology(isp, seed=0)
    snapshot = run_snapshot_cell(
        topo,
        strategy,
        seed=seed,
        sampler_label=f"snapshot-sweep-{isp}",
        num_snapshots=num_snapshots,
        demand_bps=mbps(demand_mbps),
        flows_per_node=flows_per_node,
        max_hops=max_hops,
        detour_depth=detour_depth,
    )
    uses_detour = strategy in ("inrp", "urp")
    result: Dict[str, Any] = {
        "isp": isp,
        "strategy": snapshot.strategy,
        "detour_depth": detour_depth if uses_detour else None,
        "num_flows": max(10, int(topo.num_nodes * flows_per_node)),
        "num_snapshots": num_snapshots,
        "mean_throughput": snapshot.mean_throughput,
        "std_throughput": snapshot.std_throughput,
        "switches": snapshot.switches,
        "backpressured": snapshot.backpressured,
    }
    if snapshot.stretch_values:
        cdf = snapshot.stretch_cdf()
        result["stretch"] = {
            "p50": cdf.quantile(0.50),
            "p90": cdf.quantile(0.90),
            "p99": cdf.quantile(0.99),
        }
    return result


@register_scenario(
    "load-sweep",
    summary="throughput vs offered load for one strategy on one ISP map",
    tags=("sweep", "flowsim"),
)
def scenario_load_sweep(
    seed: int = 0,
    isp: str = "exodus",
    strategy: str = "inrp",
    flows_per_node: float = 1.0 / 12.0,
    num_snapshots: int = 6,
    demand_mbps: float = 10.0,
) -> Dict[str, Any]:
    """Load-scaling point: sweep ``flows_per_node`` to trace saturation.

    Pooling pays off most near saturation; sweeping the stationary
    population size locates the knee for each strategy.
    """
    return scenario_snapshot_sweep(
        seed=seed,
        isp=isp,
        strategy=strategy,
        num_snapshots=num_snapshots,
        demand_mbps=demand_mbps,
        flows_per_node=flows_per_node,
    )
