"""Grid-sweep scenarios that go beyond the paper's fixed operating points.

The paper evaluates INRP at a handful of points; resource pooling's
benefit is an *aggregate* claim, so these scenarios expose every knob —
seed × ISP topology × routing strategy × detour depth × pooling
fraction × load — as a campaign grid axis.  A typical sweep::

    python -m repro campaign run --scenarios snapshot-sweep \
        --grid seed=0,1,2 --grid isp=telstra,exodus,tiscali \
        --grid strategy=sp,ecmp,inrp --grid detour_depth=0,1,2 \
        --workers 8
"""

from __future__ import annotations

from typing import Any, Dict

from repro.analysis.fig4 import run_snapshot_cell
from repro.campaign.scenario import register_scenario
from repro.flowsim.simulator import FlowLevelSimulator
from repro.flowsim.strategies import make_strategy
from repro.topology.isp import build_isp_topology
from repro.units import mbps
from repro.workloads.traffic import FlowWorkload, local_pairs


@register_scenario(
    "snapshot-sweep",
    summary="flow-level snapshot point: one (seed, isp, strategy, depth) cell",
    tags=("sweep", "flowsim"),
)
def scenario_snapshot_sweep(
    seed: int = 0,
    isp: str = "telstra",
    strategy: str = "inrp",
    detour_depth: int = 2,
    num_snapshots: int = 8,
    demand_mbps: float = 10.0,
    flows_per_node: float = 1.0 / 12.0,
    max_hops: int = 5,
    pooling_fraction: float = 1.0,
) -> Dict[str, Any]:
    """One cell of the Fig. 4-style sweep grid.

    Grid axes are the parameters; the campaign runner takes the
    cartesian product, so a full seed × isp × strategy × depth sweep is
    one ``campaign run`` invocation instead of a hand-rolled loop.
    ``pooling_fraction`` (INRP/URP only) dials pooling from off (0.0)
    to the paper's full pooling (1.0) — grid it to trace how much of
    the pooling gain survives partial deployment.
    """
    topo = build_isp_topology(isp, seed=0)
    snapshot = run_snapshot_cell(
        topo,
        strategy,
        seed=seed,
        sampler_label=f"snapshot-sweep-{isp}",
        num_snapshots=num_snapshots,
        demand_bps=mbps(demand_mbps),
        flows_per_node=flows_per_node,
        max_hops=max_hops,
        detour_depth=detour_depth,
        pooling_fraction=pooling_fraction,
    )
    uses_detour = strategy in ("inrp", "urp")
    result: Dict[str, Any] = {
        "isp": isp,
        "strategy": snapshot.strategy,
        "detour_depth": detour_depth if uses_detour else None,
        "pooling_fraction": pooling_fraction if uses_detour else None,
        "num_flows": max(10, int(topo.num_nodes * flows_per_node)),
        "num_snapshots": num_snapshots,
        "mean_throughput": snapshot.mean_throughput,
        "std_throughput": snapshot.std_throughput,
        "switches": snapshot.switches,
        "backpressured": snapshot.backpressured,
    }
    if snapshot.stretch_values:
        cdf = snapshot.stretch_cdf()
        result["stretch"] = {
            "p50": cdf.quantile(0.50),
            "p90": cdf.quantile(0.90),
            "p99": cdf.quantile(0.99),
        }
    return result


@register_scenario(
    "load-sweep",
    summary="throughput vs offered load for one strategy on one ISP map",
    tags=("sweep", "flowsim"),
)
def scenario_load_sweep(
    seed: int = 0,
    isp: str = "exodus",
    strategy: str = "inrp",
    flows_per_node: float = 1.0 / 12.0,
    num_snapshots: int = 6,
    demand_mbps: float = 10.0,
) -> Dict[str, Any]:
    """Load-scaling point: sweep ``flows_per_node`` to trace saturation.

    Pooling pays off most near saturation; sweeping the stationary
    population size locates the knee for each strategy.
    """
    return scenario_snapshot_sweep(
        seed=seed,
        isp=isp,
        strategy=strategy,
        num_snapshots=num_snapshots,
        demand_mbps=demand_mbps,
        flows_per_node=flows_per_node,
    )


@register_scenario(
    "load-sweep-large",
    summary="event-driven 10k-100k flow Poisson sweep through the incremental core",
    tags=("sweep", "flowsim", "scale"),
)
def scenario_load_sweep_large(
    seed: int = 0,
    isp: str = "sprint",
    strategy: str = "sp",
    num_flows: int = 10_000,
    arrival_rate: float = 1500.0,
    mean_size_mbit: float = 2.5,
    demand_mbps: float = 10.0,
    max_hops: int = 4,
    detour_depth: int = 2,
    pooling_fraction: float = 1.0,
    core: str = "auto",
    sink: str = "materialize",
) -> Dict[str, Any]:
    """One cell of the large event-driven load sweep (Fig. 3/4 regime).

    Unlike the snapshot scenarios, this runs the full arrival/departure
    dynamics: ``num_flows`` Poisson arrivals with locality-bounded
    endpoints pushed through :class:`FlowLevelSimulator`'s incremental
    core.  Grid ``num_flows=10000,...,100000`` against ``strategy`` and
    ``arrival_rate`` traces throughput and FCT across operating points
    at population sizes the pre-incremental core could not reach.

    ``sink="streaming"`` streams the specs straight from the workload
    and folds completions into online aggregates — the reported cell is
    identical in shape (quantiles within sketch rank error) but the
    run's memory stays flat in ``num_flows``.
    """
    topo = build_isp_topology(isp, seed=0)
    uses_detour = strategy in ("inrp", "urp")
    kwargs = (
        {"detour_depth": detour_depth, "pooling_fraction": pooling_fraction}
        if uses_detour
        else {}
    )
    workload = FlowWorkload(
        topo,
        arrival_rate=arrival_rate,
        mean_size_bits=mean_size_mbit * 1e6,
        demand_bps=mbps(demand_mbps),
        seed=seed,
        pair_sampler=local_pairs(topo, seed=seed + 1, max_hops=max_hops),
    )
    if sink == "streaming":
        specs = workload.iter_specs(max_flows=num_flows)
    else:
        specs = workload.generate(max_flows=num_flows)
    result = FlowLevelSimulator(
        topo, make_strategy(strategy, topo, **kwargs), specs, core=core, sink=sink
    ).run()
    return {
        "isp": isp,
        "strategy": strategy,
        "detour_depth": detour_depth if uses_detour else None,
        "pooling_fraction": pooling_fraction if uses_detour else None,
        "num_flows": num_flows,
        "arrival_rate": arrival_rate,
        "core": core,
        "sink": sink,
        "completed": result.completed_count,
        "unfinished": result.unfinished,
        "allocations": result.allocations,
        "full_refills": result.full_refills,
        "duration": result.duration,
        "network_throughput": result.network_throughput,
        "mean_fct": result.mean_fct(),
        "p50_fct": result.fct_quantile(0.50),
        "p99_fct": result.fct_quantile(0.99),
        "total_switches": result.total_switches,
    }


@register_scenario(
    "inrp-load-sweep-large",
    summary="event-driven 10k+ flow INRP sweep through the incremental detour-closure core",
    tags=("sweep", "flowsim", "scale", "inrp"),
)
def scenario_inrp_load_sweep_large(
    seed: int = 0,
    isp: str = "sprint",
    num_flows: int = 10_000,
    arrival_rate: float = 800.0,
    mean_size_mbit: float = 2.5,
    demand_mbps: float = 10.0,
    max_hops: int = 3,
    detour_depth: int = 2,
    pooling_fraction: float = 1.0,
    core: str = "auto",
) -> Dict[str, Any]:
    """The ``load-sweep-large`` dynamics for the paper's own strategy.

    INRP is the headline of Fig. 4, and since the detour-closure
    allocator (:class:`repro.flowsim.allocation.IncrementalInrp`) it
    runs event-driven at the same population sizes as SP/ECMP.  The
    defaults are the calibrated INRP operating point (sprint, local
    pairs within 3 hops, ρ < 1: ~0.75 network throughput, components a
    fraction of the active set); grid ``num_flows`` / ``arrival_rate``
    / ``core`` to trace scaling or to compare the cores themselves.
    """
    return scenario_load_sweep_large(
        seed=seed,
        isp=isp,
        strategy="inrp",
        num_flows=num_flows,
        arrival_rate=arrival_rate,
        mean_size_mbit=mean_size_mbit,
        demand_mbps=demand_mbps,
        max_hops=max_hops,
        detour_depth=detour_depth,
        pooling_fraction=pooling_fraction,
        core=core,
    )


@register_scenario(
    "load-sweep-xl",
    summary="million-flow streaming sweep: lazy specs, streaming sink, bounded memory",
    tags=("sweep", "flowsim", "scale", "streaming"),
)
def scenario_load_sweep_xl(
    seed: int = 0,
    isp: str = "sprint",
    strategy: str = "sp",
    num_flows: int = 1_000_000,
    arrival_rate: float = 1500.0,
    mean_size_mbit: float = 0.25,
    demand_mbps: float = 10.0,
    max_hops: int = 4,
    detour_depth: int = 2,
    core: str = "auto",
) -> Dict[str, Any]:
    """The ``load-sweep-large`` dynamics at million-flow scale.

    This is the streaming pipeline end to end: specs are pulled lazily
    from :meth:`FlowWorkload.iter_specs` (one unarrived spec resident
    at a time) and completions fold into a
    :class:`~repro.flowsim.sinks.StreamingSink`, so resident memory is
    the active population plus O(1) aggregates no matter how large
    ``num_flows`` grows — the operating regime the materializing
    default cannot reach.  The default operating point keeps ρ < 1
    (small flows at the large-sweep arrival rate) so the active set —
    and hence per-event cost — stays small and a million arrivals
    complete in minutes of wall clock.  Reported quantiles carry the
    sketch's documented rank error; counts, throughput and goodput are
    exact.
    """
    return scenario_load_sweep_large(
        seed=seed,
        isp=isp,
        strategy=strategy,
        num_flows=num_flows,
        arrival_rate=arrival_rate,
        mean_size_mbit=mean_size_mbit,
        demand_mbps=demand_mbps,
        max_hops=max_hops,
        detour_depth=detour_depth,
        core=core,
        sink="streaming",
    )
