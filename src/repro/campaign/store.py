"""Schema-versioned JSON result store with content-hashed run keys.

Every campaign run is identified by a *run key*: the SHA-256 of the
canonical JSON encoding of ``{schema_version, scenario, params}``.
Identical scenario + parameters therefore map to the same key, which is
what makes re-runs cache hits; bumping :data:`SCHEMA_VERSION` (on any
change to the record layout or to result semantics) invalidates every
existing record at once.

Records land under ``<root>/<scenario>/<run_key>.json`` and are written
deterministically (sorted keys, fixed indentation, trailing newline),
so the same run produces byte-identical files — a property the test
suite asserts.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Union

from repro.errors import ConfigurationError

#: Bump on any change to the record layout or result semantics.
SCHEMA_VERSION = 1

#: Default result directory, relative to the working directory.
DEFAULT_RESULTS_DIR = "campaign-results"


def canonical_json(payload: Any) -> str:
    """Canonical (sorted, compact) JSON encoding used for hashing."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def run_key(scenario: str, params: Mapping[str, Any]) -> str:
    """Content hash identifying one (scenario, params) run."""
    identity = {
        "schema_version": SCHEMA_VERSION,
        "scenario": scenario,
        "params": dict(params),
    }
    try:
        encoded = canonical_json(identity)
    except TypeError as exc:
        raise ConfigurationError(
            f"parameters for scenario {scenario!r} are not "
            f"JSON-serialisable: {exc}"
        ) from exc
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:16]


class ResultStore:
    """Filesystem-backed store of campaign run records."""

    def __init__(self, root: Union[str, Path] = DEFAULT_RESULTS_DIR):
        self.root = Path(root)

    def path_for(self, scenario: str, key: str) -> Path:
        return self.root / scenario / f"{key}.json"

    def load(
        self, scenario: str, params: Mapping[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """Return the cached record for a run, or ``None``.

        Records whose ``schema_version`` does not match the current one
        are treated as absent (stale cache), not as errors.
        """
        path = self.path_for(scenario, run_key(scenario, params))
        if not path.exists():
            return None
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict):
            return None
        if record.get("schema_version") != SCHEMA_VERSION:
            return None
        return record

    def save(
        self,
        scenario: str,
        params: Mapping[str, Any],
        result: Mapping[str, Any],
    ) -> Path:
        """Persist one run record; returns the file path."""
        key = run_key(scenario, params)
        record = {
            "schema_version": SCHEMA_VERSION,
            "run_key": key,
            "scenario": scenario,
            "params": dict(params),
            "result": dict(result),
        }
        try:
            encoded = json.dumps(record, sort_keys=True, indent=2) + "\n"
        except TypeError as exc:
            raise ConfigurationError(
                f"scenario {scenario!r} produced a non-JSON-serialisable "
                f"result: {exc}"
            ) from exc
        path = self.path_for(scenario, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(encoded)
        return path

    def iter_records(
        self, scenario: Optional[str] = None
    ) -> Iterator[Dict[str, Any]]:
        """Yield stored records (current schema only), sorted by path.

        Damaged files — unreadable, truncated/corrupt JSON, or JSON
        that is not a record object — are skipped with a
        :class:`RuntimeWarning` naming the file, so ``campaign
        report`` over a partially-written store degrades instead of
        crashing.  Records from a different schema version are skipped
        silently: they are a stale cache, not damage.
        """
        if not self.root.exists():
            return
        pattern = f"{scenario}/*.json" if scenario else "*/*.json"
        for path in sorted(self.root.glob(pattern)):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError) as exc:
                warnings.warn(
                    f"skipping corrupt campaign record {path}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if not isinstance(record, dict):
                warnings.warn(
                    f"skipping malformed campaign record {path}: "
                    f"expected a JSON object, got {type(record).__name__}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if record.get("schema_version") != SCHEMA_VERSION:
                continue
            yield record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore(root={str(self.root)!r})"
