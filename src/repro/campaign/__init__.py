"""Campaign orchestration: declarative scenarios, parallel sweeps, cached results.

This package is the substrate for running *many* operating points of
the reproduction — paper artifacts, ablations and parameter-grid
sweeps — instead of one bespoke entry point per figure:

- :mod:`repro.campaign.scenario` — the registry naming every runnable
  experiment (drivers self-register with ``@register_scenario``);
- :mod:`repro.campaign.grid` — ``key=v1,v2`` axis parsing and cartesian
  expansion;
- :mod:`repro.campaign.runner` — grid planning, per-run seeding via
  :mod:`repro.rng` and ``multiprocessing`` fan-out;
- :mod:`repro.campaign.store` — schema-versioned JSON records with
  content-hashed run keys (re-runs are cache hits, ``--force``
  recomputes);
- :mod:`repro.campaign.sweeps` — grid scenarios over seed × ISP ×
  strategy × detour depth beyond the paper's fixed points.

CLI::

    python -m repro campaign list
    python -m repro campaign run --scenarios table1,fig4 --grid seed=0,1,2 --workers 4
    python -m repro campaign report
"""

from repro.campaign.grid import expand_grid, parse_grid
from repro.campaign.runner import (
    CampaignReport,
    CampaignRunner,
    RunOutcome,
    RunSpec,
    plan_runs,
)
from repro.campaign.scenario import (
    Scenario,
    get_scenario,
    iter_scenarios,
    load_builtin_scenarios,
    register_scenario,
)
from repro.campaign.store import SCHEMA_VERSION, ResultStore, run_key

__all__ = [
    "SCHEMA_VERSION",
    "CampaignReport",
    "CampaignRunner",
    "ResultStore",
    "RunOutcome",
    "RunSpec",
    "Scenario",
    "expand_grid",
    "get_scenario",
    "iter_scenarios",
    "load_builtin_scenarios",
    "parse_grid",
    "plan_runs",
    "register_scenario",
    "run_key",
]
