"""Campaign execution: grid planning and parallel fan-out.

:func:`plan_runs` turns a scenario selection plus a parameter grid into
a concrete list of :class:`RunSpec` points; :class:`CampaignRunner`
executes the plan against a :class:`~repro.campaign.store.ResultStore`,
skipping cached runs and fanning uncached ones out over a
``multiprocessing`` pool.

Seeding follows :mod:`repro.rng` discipline: when a campaign base seed
is given and the grid does not pin a ``seed`` axis, every seed-accepting
scenario gets ``derive_seed(base_seed, scenario_name)`` — runs of
different scenarios draw from independent streams, and the same base
seed reproduces the whole campaign bit-for-bit.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.campaign.grid import Grid, expand_grid
from repro.campaign.scenario import get_scenario, load_builtin_scenarios
from repro.campaign.store import ResultStore, run_key
from repro.errors import ConfigurationError
from repro.rng import derive_seed


@dataclass(frozen=True)
class RunSpec:
    """One concrete run: a scenario plus its full parameter assignment."""

    scenario: str
    params: Mapping[str, Any]

    @property
    def key(self) -> str:
        return run_key(self.scenario, self.params)

    def describe(self) -> str:
        overrides = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        return f"{self.scenario}({overrides})"


@dataclass
class RunOutcome:
    """The result of executing (or cache-hitting) one run."""

    spec: RunSpec
    run_key: str
    path: str
    cached: bool
    result: Mapping[str, Any]


@dataclass
class CampaignReport:
    """Aggregate outcome of one campaign invocation."""

    outcomes: List[RunOutcome] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def computed(self) -> int:
        return len(self.outcomes) - self.cache_hits

    def summary(self) -> str:
        return (
            f"{len(self.outcomes)} run(s): {self.computed} computed, "
            f"{self.cache_hits} cache hit(s)"
        )


def plan_runs(
    scenario_names: Sequence[str],
    grid: Optional[Grid] = None,
    base_seed: Optional[int] = None,
) -> List[RunSpec]:
    """Expand scenarios × grid into concrete run specs.

    Grid axes apply only to scenarios that accept the parameter; an
    axis accepted by *no* selected scenario is a configuration error
    (it would silently sweep nothing).
    """
    load_builtin_scenarios()
    grid = grid or {}
    scenarios = [get_scenario(name) for name in scenario_names]
    for axis in grid:
        if not any(scenario.accepts(axis) for scenario in scenarios):
            names = ", ".join(s.name for s in scenarios)
            raise ConfigurationError(
                f"grid axis {axis!r} is not a parameter of any selected "
                f"scenario ({names})"
            )
    specs: List[RunSpec] = []
    for scenario in scenarios:
        axes = {k: v for k, v in grid.items() if scenario.accepts(k)}
        for point in expand_grid(axes):
            if (
                base_seed is not None
                and scenario.accepts("seed")
                and "seed" not in point
            ):
                point["seed"] = derive_seed(base_seed, scenario.name)
            specs.append(RunSpec(scenario.name, scenario.bind(**point)))
    return specs


def execute_run(payload: Tuple[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Worker entry point: run one scenario in this process.

    Module-level (not a closure) so it pickles under both the fork and
    spawn start methods; loads the builtin registry because a spawned
    worker starts with a fresh interpreter.
    """
    scenario_name, params = payload
    load_builtin_scenarios()
    scenario = get_scenario(scenario_name)
    return dict(scenario.run(**params))


class CampaignRunner:
    """Execute run specs with caching and a worker pool.

    Parameters
    ----------
    store:
        Result store consulted for cache hits and written on completion.
    workers:
        Worker-process count; ``1`` executes inline (easier debugging,
        no pickling requirements on exotic scenarios).
    force:
        Recompute even when a cached record exists.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 1,
        force: bool = False,
    ):
        if workers < 1:
            raise ConfigurationError(f"need >= 1 worker, got {workers}")
        self.store = store or ResultStore()
        self.workers = workers
        self.force = force

    def run(self, specs: Sequence[RunSpec]) -> CampaignReport:
        """Execute *specs*, returning outcomes in spec order."""
        cached: Dict[int, RunOutcome] = {}
        todo: List[Tuple[int, RunSpec]] = []
        for index, spec in enumerate(specs):
            record = None if self.force else self.store.load(
                spec.scenario, spec.params
            )
            if record is not None:
                cached[index] = RunOutcome(
                    spec=spec,
                    run_key=record["run_key"],
                    path=str(self.store.path_for(spec.scenario, record["run_key"])),
                    cached=True,
                    result=record["result"],
                )
            else:
                todo.append((index, spec))

        results = self._execute(spec for _, spec in todo)
        report = CampaignReport()
        fresh: Dict[int, RunOutcome] = {}
        for (index, spec), result in zip(todo, results):
            path = self.store.save(spec.scenario, spec.params, result)
            fresh[index] = RunOutcome(
                spec=spec,
                run_key=spec.key,
                path=str(path),
                cached=False,
                result=result,
            )
        for index in range(len(specs)):
            report.outcomes.append(cached.get(index) or fresh[index])
        return report

    def _execute(self, specs) -> List[Dict[str, Any]]:
        payloads = [(spec.scenario, dict(spec.params)) for spec in specs]
        if not payloads:
            return []
        if self.workers == 1 or len(payloads) == 1:
            return [execute_run(payload) for payload in payloads]
        processes = min(self.workers, len(payloads))
        with multiprocessing.Pool(processes=processes) as pool:
            return pool.map(execute_run, payloads)
