"""Workload generation: arrival processes, flow sizes, traffic matrices."""

from repro.workloads.arrivals import DeterministicArrivals, PoissonArrivals
from repro.workloads.sizes import (
    ExponentialSize,
    FixedSize,
    ParetoSize,
    SizeDistribution,
)
from repro.workloads.traffic import (
    FlowSpec,
    FlowWorkload,
    gravity_pairs,
    local_pairs,
    uniform_pairs,
)

__all__ = [
    "PoissonArrivals",
    "DeterministicArrivals",
    "SizeDistribution",
    "FixedSize",
    "ExponentialSize",
    "ParetoSize",
    "FlowSpec",
    "FlowWorkload",
    "uniform_pairs",
    "gravity_pairs",
    "local_pairs",
]
