"""Flow workloads: endpoint selection and full flow schedules.

A :class:`FlowWorkload` combines an arrival process, a size
distribution and an endpoint sampler into the schedule of
:class:`FlowSpec` records consumed by the flow-level simulator —
either lazily, one spec at a time in arrival order
(:meth:`FlowWorkload.iter_specs`, the streaming contract that keeps
million-flow runs out of memory), or materialised as a list
(:meth:`FlowWorkload.generate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.rng import SeedLike, make_rng
from repro.topology.graph import Node, Topology
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.sizes import ExponentialSize, SizeDistribution

PairSampler = Callable[[], Tuple[Node, Node]]


@dataclass(frozen=True)
class FlowSpec:
    """One flow to inject into a simulator."""

    flow_id: int
    source: Node
    destination: Node
    arrival_time: float
    size_bits: float
    #: Access-rate cap in bits/s (the sender cannot exceed this).
    demand_bps: float


def uniform_pairs(topo: Topology, seed: SeedLike = None) -> PairSampler:
    """Sampler drawing distinct (source, destination) uniformly."""
    nodes = topo.nodes()
    if len(nodes) < 2:
        raise WorkloadError("need at least two nodes to build flows")
    rng = make_rng(seed, "uniform-pairs")

    def _sample() -> Tuple[Node, Node]:
        i = int(rng.integers(0, len(nodes)))
        j = int(rng.integers(0, len(nodes) - 1))
        if j >= i:
            j += 1
        return nodes[i], nodes[j]

    return _sample


def local_pairs(
    topo: Topology,
    seed: SeedLike = None,
    max_hops: int = 5,
    min_degree: int = 2,
) -> PairSampler:
    """Sampler for locality-weighted core-to-core demands.

    Draws a source uniformly among nodes with degree >= *min_degree*
    and a destination uniformly among core nodes within 2..*max_hops*
    hops — the intra-domain traffic-engineering picture of the paper
    (leaf/pendant nodes are access tails, not transit endpoints).
    """
    if max_hops < 2:
        raise WorkloadError(f"max_hops must be >= 2, got {max_hops}")
    core = [node for node in topo.nodes() if topo.degree(node) >= min_degree]
    if len(core) < 2:
        raise WorkloadError("not enough core nodes for local pair sampling")
    rng = make_rng(seed, "local-pairs")

    def _candidates(source: Node) -> List[Node]:
        from collections import deque

        seen = {source: 0}
        queue = deque([source])
        found: List[Node] = []
        while queue:
            node = queue.popleft()
            if seen[node] >= max_hops:
                continue
            for neighbour in topo.neighbors(node):
                if neighbour in seen:
                    continue
                seen[neighbour] = seen[node] + 1
                queue.append(neighbour)
                if seen[neighbour] >= 2 and topo.degree(neighbour) >= min_degree:
                    found.append(neighbour)
        return found

    def _sample() -> Tuple[Node, Node]:
        for _ in range(100):
            source = core[int(rng.integers(0, len(core)))]
            candidates = _candidates(source)
            if candidates:
                return source, candidates[int(rng.integers(0, len(candidates)))]
        raise WorkloadError("could not find a local pair; topology too sparse")

    return _sample


def gravity_pairs(topo: Topology, seed: SeedLike = None) -> PairSampler:
    """Sampler weighting endpoints by node degree (gravity model).

    High-degree (core) nodes originate and sink proportionally more
    flows, as in ISP traffic matrices.
    """
    nodes = topo.nodes()
    if len(nodes) < 2:
        raise WorkloadError("need at least two nodes to build flows")
    rng = make_rng(seed, "gravity-pairs")
    degrees = [max(topo.degree(node), 1) for node in nodes]
    total = float(sum(degrees))
    weights = [degree / total for degree in degrees]

    def _sample() -> Tuple[Node, Node]:
        while True:
            i = int(rng.choice(len(nodes), p=weights))
            j = int(rng.choice(len(nodes), p=weights))
            if i != j:
                return nodes[i], nodes[j]

    return _sample


class FlowWorkload:
    """Generates a reproducible schedule of flows for a topology.

    Parameters
    ----------
    arrival_rate:
        Poisson flow-arrival rate (flows/second) over the whole
        network.
    mean_size_bits:
        Mean flow size; sizes are exponential unless *sizes* overrides.
    demand_bps:
        Per-flow access-rate cap ("senders insert more data if they
        see extra available bandwidth" — the cap is what their access
        link permits).
    """

    def __init__(
        self,
        topo: Topology,
        arrival_rate: float,
        mean_size_bits: float,
        demand_bps: float,
        seed: SeedLike = 0,
        sizes: Optional[SizeDistribution] = None,
        pair_sampler: Optional[PairSampler] = None,
    ):
        if demand_bps <= 0:
            raise WorkloadError(f"demand must be positive, got {demand_bps}")
        self.topology = topo
        base = make_rng(seed, "flow-workload")
        self._arrivals = PoissonArrivals(arrival_rate, base)
        self._sizes = sizes or ExponentialSize(mean_size_bits, base)
        self._pairs = pair_sampler or uniform_pairs(topo, base)
        self.demand_bps = float(demand_bps)

    def iter_specs(
        self,
        horizon: Optional[float] = None,
        max_flows: Optional[int] = None,
    ) -> Iterator[FlowSpec]:
        """Yield the flow schedule lazily, in arrival order.

        This is the streaming contract: one :class:`FlowSpec` exists
        at a time, so the schedule's memory footprint is O(1) no
        matter how many flows the horizon or *max_flows* admits.  The
        sequence is fully determined by the workload's seed — two
        iterators from identically-constructed workloads yield
        identical specs, which is what lets simulator checkpoints
        resume by fast-forwarding a fresh iterator.
        """
        for flow_id, arrival in enumerate(
            self._arrivals.times(horizon=horizon, max_events=max_flows)
        ):
            source, destination = self._pairs()
            yield FlowSpec(
                flow_id=flow_id,
                source=source,
                destination=destination,
                arrival_time=arrival,
                size_bits=self._sizes.sample(),
                demand_bps=self.demand_bps,
            )

    def generate(
        self,
        horizon: Optional[float] = None,
        max_flows: Optional[int] = None,
    ) -> List[FlowSpec]:
        """Materialise the flow schedule (sorted by arrival time)."""
        return list(self.iter_specs(horizon=horizon, max_flows=max_flows))
