"""Flow-size distributions (bits).

Bulk content transfers (the paper's "ftp" case) are modelled with
exponential sizes by default; Pareto sizes exercise heavy-tailed mixes.
"""

from __future__ import annotations

import abc

from repro.errors import WorkloadError
from repro.rng import SeedLike, make_rng


class SizeDistribution(abc.ABC):
    """Draw flow sizes in bits."""

    @abc.abstractmethod
    def sample(self) -> float:
        """One flow size (bits, strictly positive)."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected size in bits."""


class FixedSize(SizeDistribution):
    """Every flow has the same size."""

    def __init__(self, size_bits: float):
        if size_bits <= 0:
            raise WorkloadError(f"size must be positive, got {size_bits}")
        self._size = float(size_bits)

    def sample(self) -> float:
        return self._size

    @property
    def mean(self) -> float:
        return self._size


class ExponentialSize(SizeDistribution):
    """Exponentially distributed sizes with the given mean."""

    def __init__(self, mean_bits: float, seed: SeedLike = None):
        if mean_bits <= 0:
            raise WorkloadError(f"mean must be positive, got {mean_bits}")
        self._mean = float(mean_bits)
        self._rng = make_rng(seed, "exp-sizes")

    def sample(self) -> float:
        # Clamp away from zero so transfers always carry data.
        return max(float(self._rng.exponential(self._mean)), 1.0)

    @property
    def mean(self) -> float:
        return self._mean


class ParetoSize(SizeDistribution):
    """Pareto (heavy-tailed) sizes with the given mean and shape.

    The shape must exceed 1 so the mean exists; the scale is derived
    as ``mean * (shape - 1) / shape``.
    """

    def __init__(self, mean_bits: float, shape: float = 1.5, seed: SeedLike = None):
        if mean_bits <= 0:
            raise WorkloadError(f"mean must be positive, got {mean_bits}")
        if shape <= 1.0:
            raise WorkloadError(f"shape must exceed 1, got {shape}")
        self._mean = float(mean_bits)
        self._shape = float(shape)
        self._scale = mean_bits * (shape - 1.0) / shape
        self._rng = make_rng(seed, "pareto-sizes")

    def sample(self) -> float:
        # numpy's pareto() is the Lomax form; shift by 1 for classic Pareto.
        return float(self._scale * (1.0 + self._rng.pareto(self._shape)))

    @property
    def mean(self) -> float:
        return self._mean
