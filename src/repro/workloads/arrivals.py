"""Arrival processes.

The paper's flow-level evaluation uses Poisson flow arrivals
("flows arrive Poisson distributed").  Both processes here yield
absolute arrival times and can be capped by time horizon or count.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import WorkloadError
from repro.rng import SeedLike, make_rng


class PoissonArrivals:
    """Homogeneous Poisson process with rate *rate_per_second*."""

    def __init__(self, rate_per_second: float, seed: SeedLike = None):
        if rate_per_second <= 0:
            raise WorkloadError(f"rate must be positive, got {rate_per_second}")
        self.rate = float(rate_per_second)
        self._rng = make_rng(seed, "poisson-arrivals")

    def next_interarrival(self) -> float:
        """Draw one exponential inter-arrival gap (seconds)."""
        return float(self._rng.exponential(1.0 / self.rate))

    def times(
        self,
        horizon: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> Iterator[float]:
        """Yield absolute arrival times from t=0.

        At least one of *horizon* / *max_events* must be given so the
        iterator terminates.
        """
        if horizon is None and max_events is None:
            raise WorkloadError("need a horizon or a max_events bound")
        now = 0.0
        count = 0
        while True:
            now += self.next_interarrival()
            if horizon is not None and now > horizon:
                return
            if max_events is not None and count >= max_events:
                return
            count += 1
            yield now


class DeterministicArrivals:
    """Fixed-gap arrivals; useful for tests and worked examples."""

    def __init__(self, interval: float, start: float = 0.0):
        if interval <= 0:
            raise WorkloadError(f"interval must be positive, got {interval}")
        self.interval = float(interval)
        self.start = float(start)

    def times(
        self,
        horizon: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> Iterator[float]:
        if horizon is None and max_events is None:
            raise WorkloadError("need a horizon or a max_events bound")
        now = self.start
        count = 0
        while True:
            if horizon is not None and now > horizon:
                return
            if max_events is not None and count >= max_events:
                return
            count += 1
            yield now
            now += self.interval
