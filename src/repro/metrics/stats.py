"""Distribution statistics: CDFs, percentiles, summaries.

:class:`Cdf` backs the Fig. 4b path-stretch plot: an empirical,
optionally weighted, cumulative distribution with exact evaluation at
arbitrary points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


class Cdf:
    """Empirical (weighted) cumulative distribution function.

    ``cdf(x)`` returns ``P[X <= x]``.  Weights model, e.g., bits
    carried per flow so that the stretch CDF is traffic-weighted as in
    the paper's Fig. 4b.
    """

    def __init__(self, values: Sequence[float], weights: Optional[Sequence[float]] = None):
        if len(values) == 0:
            raise ConfigurationError("cannot build a CDF from no values")
        values = np.asarray(values, dtype=float)
        if weights is None:
            weights = np.ones_like(values)
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != values.shape:
                raise ConfigurationError("weights must match values in length")
            if np.any(weights < 0):
                raise ConfigurationError("weights must be non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise ConfigurationError("total weight must be positive")
        order = np.argsort(values, kind="stable")
        self._xs = values[order]
        self._ps = np.cumsum(weights[order]) / total

    def __call__(self, x: float) -> float:
        """``P[X <= x]``."""
        index = np.searchsorted(self._xs, x, side="right")
        if index == 0:
            return 0.0
        return float(self._ps[index - 1])

    def quantile(self, q: float) -> float:
        """Smallest x with ``P[X <= x] >= q``."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        index = np.searchsorted(self._ps, q, side="left")
        index = min(index, len(self._xs) - 1)
        return float(self._xs[index])

    def points(self) -> Tuple[List[float], List[float]]:
        """Step points ``(xs, ps)`` suitable for plotting."""
        return list(map(float, self._xs)), list(map(float, self._ps))

    @property
    def min(self) -> float:
        return float(self._xs[0])

    @property
    def max(self) -> float:
        return float(self._xs[-1])


def weighted_cdf(values: Sequence[float], weights: Sequence[float]) -> Cdf:
    """Convenience constructor mirroring :class:`Cdf`."""
    return Cdf(values, weights)


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summary statistics of *values*."""
    if len(values) == 0:
        raise ConfigurationError("cannot summarise an empty sample")
    array = np.asarray(values, dtype=float)
    return SummaryStats(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std()),
        minimum=float(array.min()),
        p50=float(np.percentile(array, 50)),
        p90=float(np.percentile(array, 90)),
        p99=float(np.percentile(array, 99)),
        maximum=float(array.max()),
    )
