"""Distribution statistics: CDFs, percentiles, summaries, sketches.

:class:`Cdf` backs the Fig. 4b path-stretch plot: an empirical,
optionally weighted, cumulative distribution with exact evaluation at
arbitrary points.  :class:`QuantileSketch` is its streaming
counterpart: a mergeable Greenwald–Khanna summary with bounded rank
error, used by the flow simulator's streaming result sink where
materialising every sample would defeat the point of streaming.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


class Cdf:
    """Empirical (weighted) cumulative distribution function.

    ``cdf(x)`` returns ``P[X <= x]``.  Weights model, e.g., bits
    carried per flow so that the stretch CDF is traffic-weighted as in
    the paper's Fig. 4b.
    """

    def __init__(self, values: Sequence[float], weights: Optional[Sequence[float]] = None):
        if len(values) == 0:
            raise ConfigurationError("cannot build a CDF from no values")
        values = np.asarray(values, dtype=float)
        if weights is None:
            weights = np.ones_like(values)
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != values.shape:
                raise ConfigurationError("weights must match values in length")
            if np.any(weights < 0):
                raise ConfigurationError("weights must be non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise ConfigurationError("total weight must be positive")
        order = np.argsort(values, kind="stable")
        self._xs = values[order]
        self._ps = np.cumsum(weights[order]) / total

    def __call__(self, x: float) -> float:
        """``P[X <= x]``."""
        index = np.searchsorted(self._xs, x, side="right")
        if index == 0:
            return 0.0
        return float(self._ps[index - 1])

    def quantile(self, q: float) -> float:
        """Smallest x with ``P[X <= x] >= q``."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        index = np.searchsorted(self._ps, q, side="left")
        index = min(index, len(self._xs) - 1)
        return float(self._xs[index])

    def points(self) -> Tuple[List[float], List[float]]:
        """Step points ``(xs, ps)`` suitable for plotting."""
        return list(map(float, self._xs)), list(map(float, self._ps))

    @property
    def min(self) -> float:
        return float(self._xs[0])

    @property
    def max(self) -> float:
        return float(self._xs[-1])


def weighted_cdf(values: Sequence[float], weights: Sequence[float]) -> Cdf:
    """Convenience constructor mirroring :class:`Cdf`."""
    return Cdf(values, weights)


class QuantileSketch:
    """Mergeable Greenwald–Khanna epsilon-approximate quantile sketch.

    Maintains a bounded summary of a (weighted) sample supporting
    rank-error-bounded quantile queries: for ``quantile(q)`` the
    returned value's true weighted rank lies within
    ``epsilon * total_weight`` of ``q * total_weight``, provided no
    single observation carries more than ``2 * epsilon`` of the total
    weight (a heavier atom is kept as an exact entry and the query
    lands inside its own rank span, so point masses degrade the answer
    no further than the distribution's own jump).

    The summary is the GK tuple list ``(value, g, delta)``: ``g`` is
    the weight gap to the preceding entry and ``delta`` the rank
    uncertainty of the entry itself; the invariant
    ``g + delta <= 2 * epsilon * W`` is restored by compression after
    every buffered batch of inserts.  Size is O(1/epsilon * log(eps*W))
    regardless of how many samples stream through.

    ``merge`` concatenates two summaries and re-compresses: rank
    errors add, so a merged sketch answers within
    ``(eps1 + eps2) * W`` — shard-parallel runs can each keep a sketch
    and fold them at the end, paying one epsilon per merge generation.
    """

    def __init__(self, epsilon: float = 0.01):
        if not 0.0 < epsilon < 0.5:
            raise ConfigurationError(
                f"epsilon must be in (0, 0.5), got {epsilon}"
            )
        self.epsilon = float(epsilon)
        #: GK summary entries ``[value, g, delta]``, sorted by value.
        self._entries: List[List[float]] = []
        self._buffer: List[Tuple[float, float]] = []
        self._buffer_limit = max(32, int(math.ceil(1.0 / (2.0 * epsilon))))
        self._total_weight = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        """Number of observations inserted."""
        return self._count

    @property
    def total_weight(self) -> float:
        return self._total_weight

    @property
    def min(self) -> float:
        if self._count == 0:
            raise ConfigurationError("empty sketch has no minimum")
        return self._min

    @property
    def max(self) -> float:
        if self._count == 0:
            raise ConfigurationError("empty sketch has no maximum")
        return self._max

    def __len__(self) -> int:
        return len(self._entries) + len(self._buffer)

    def insert(self, value: float, weight: float = 1.0) -> None:
        """Add one observation with non-negative *weight*."""
        value = float(value)
        weight = float(weight)
        if not math.isfinite(value):
            raise ConfigurationError(f"value must be finite, got {value}")
        if not math.isfinite(weight) or weight < 0.0:
            raise ConfigurationError(
                f"weight must be finite and >= 0, got {weight}"
            )
        if weight == 0.0:
            return
        self._buffer.append((value, weight))
        self._total_weight += weight
        self._count += 1
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if len(self._buffer) >= self._buffer_limit:
            self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        self._buffer.sort()
        threshold = 2.0 * self.epsilon * self._total_weight
        merged: List[List[float]] = []
        entries = self._entries
        i = 0
        for value, weight in self._buffer:
            while i < len(entries) and entries[i][0] <= value:
                merged.append(entries[i])
                i += 1
            # Interior inserts inherit the local rank uncertainty; the
            # extremes stay exact so min/max quantiles are sharp.
            if not merged or i >= len(entries):
                delta = 0.0
            else:
                delta = max(threshold - weight, 0.0)
            merged.append([value, weight, delta])
        merged.extend(entries[i:])
        self._buffer.clear()
        self._entries = merged
        self._compress()

    def _compress(self) -> None:
        entries = self._entries
        if len(entries) < 3:
            return
        threshold = 2.0 * self.epsilon * self._total_weight
        # Backward pass merging an entry into its successor while the
        # combined uncertainty stays within the invariant.  First and
        # last entries are never absorbed (exact extremes).
        out = [entries[-1]]
        for entry in reversed(entries[:-1]):
            nxt = out[-1]
            if entry is not entries[0] and (
                entry[1] + nxt[1] + nxt[2] <= threshold
            ):
                nxt[1] += entry[1]
            else:
                out.append(entry)
        out.reverse()
        self._entries = out

    def quantile(self, q: float) -> float:
        """Value whose weighted rank is within ``epsilon * W`` of ``q * W``."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            raise ConfigurationError("cannot query an empty sketch")
        self._flush()
        target = q * self._total_weight
        allowance = self.epsilon * self._total_weight
        rmin = 0.0
        previous = self._entries[0][0]
        for value, g, delta in self._entries:
            rmin += g
            if rmin + delta > target + allowance:
                return previous
            previous = value
        return self._entries[-1][0]

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        return [self.quantile(q) for q in qs]

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold *other* into this sketch (in place; returns self)."""
        if not isinstance(other, QuantileSketch):
            raise ConfigurationError(
                f"can only merge QuantileSketch, got {type(other).__name__}"
            )
        self._flush()
        other._flush()
        if other._count == 0:
            return self
        self.epsilon = max(self.epsilon, other.epsilon)
        combined = sorted(
            self._entries + [list(entry) for entry in other._entries],
            key=lambda entry: entry[0],
        )
        self._entries = combined
        self._total_weight += other._total_weight
        self._count += other._count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._compress()
        return self

    def summary(self) -> "SummaryStats":
        """Sketch-derived :class:`SummaryStats` (mean/std unavailable
        from rank summaries are reported as ``nan``)."""
        if self._count == 0:
            raise ConfigurationError("cannot summarise an empty sketch")
        return SummaryStats(
            count=self._count,
            mean=math.nan,
            std=math.nan,
            minimum=self.min,
            p50=self.quantile(0.50),
            p90=self.quantile(0.90),
            p99=self.quantile(0.99),
            maximum=self.max,
        )


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summary statistics of *values*."""
    if len(values) == 0:
        raise ConfigurationError("cannot summarise an empty sample")
    array = np.asarray(values, dtype=float)
    return SummaryStats(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std()),
        minimum=float(array.min()),
        p50=float(np.percentile(array, 50)),
        p90=float(np.percentile(array, 90)),
        p99=float(np.percentile(array, 99)),
        maximum=float(array.max()),
    )
