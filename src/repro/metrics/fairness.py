"""Fairness metrics.

The paper quantifies its Fig. 3 example with Jain's fairness index
(Chiu & Jain): ``F = (sum T)^2 / (n * sum T^2)``.  This module also
provides a max-min fairness *certificate* used by the test suite to
verify the progressive-filling allocator: an allocation is max-min
fair iff every flow is either satisfied or crosses a saturated link on
which it receives at least as much as every other flow.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError

FlowId = Hashable
LinkId = Hashable


def jain_index(rates: Sequence[float]) -> float:
    """Jain's fairness index of *rates*.

    Lies in ``(0, 1]``; 1.0 means perfectly equal rates.  The paper's
    Fig. 3: ``jain_index([2, 8]) == 0.735...`` (reported as 0.73) and
    ``jain_index([5, 5]) == 1.0``.

    >>> round(jain_index([2.0, 8.0]), 2)
    0.74
    >>> jain_index([5.0, 5.0])
    1.0
    """
    if not rates:
        raise ConfigurationError("jain_index of an empty rate list")
    if any(rate < 0 for rate in rates):
        raise ConfigurationError("rates must be non-negative")
    total = float(sum(rates))
    squares = sum(rate * rate for rate in rates)
    if total == 0.0 or squares == 0.0:
        # All-zero (or subnormal, squaring to zero) allocations are
        # degenerately equal.
        return 1.0
    # Cauchy-Schwarz bounds the true value by 1; clamp float error.
    return min((total * total) / (len(rates) * squares), 1.0)


def max_min_violations(
    rates: Mapping[FlowId, float],
    demands: Mapping[FlowId, float],
    flow_links: Mapping[FlowId, Sequence[LinkId]],
    capacities: Mapping[LinkId, float],
    tolerance: float = 1e-6,
) -> List[str]:
    """Human-readable max-min fairness violations (empty = fair).

    Checks the bottleneck characterisation: a feasible allocation is
    max-min fair iff every flow either meets its demand or traverses a
    *bottleneck* link — one that is saturated and on which the flow's
    rate is maximal among the link's flows.
    """
    violations: List[str] = []
    link_load: Dict[LinkId, float] = {link: 0.0 for link in capacities}
    link_flows: Dict[LinkId, List[FlowId]] = {link: [] for link in capacities}
    for flow, links in flow_links.items():
        for link in links:
            if link not in capacities:
                violations.append(f"flow {flow!r} uses unknown link {link!r}")
                continue
            link_load[link] += rates[flow]
            link_flows[link].append(flow)

    for link, load in link_load.items():
        if load > capacities[link] + tolerance:
            violations.append(
                f"link {link!r} overloaded: {load:.6g} > {capacities[link]:.6g}"
            )

    for flow, rate in rates.items():
        demand = demands[flow]
        if rate > demand + tolerance:
            violations.append(f"flow {flow!r} exceeds demand: {rate:.6g} > {demand:.6g}")
            continue
        if rate >= demand - tolerance:
            continue  # satisfied
        has_bottleneck = False
        for link in flow_links[flow]:
            saturated = link_load[link] >= capacities[link] - tolerance
            if not saturated:
                continue
            peers = link_flows[link]
            if all(rates[peer] <= rate + tolerance for peer in peers):
                has_bottleneck = True
                break
        if not has_bottleneck:
            violations.append(
                f"flow {flow!r} unsatisfied ({rate:.6g} < {demand:.6g}) "
                "with no bottleneck link"
            )
    return violations


def bottleneck_fairness_certificate(
    rates: Mapping[FlowId, float],
    demands: Mapping[FlowId, float],
    flow_links: Mapping[FlowId, Sequence[LinkId]],
    capacities: Mapping[LinkId, float],
    tolerance: float = 1e-6,
) -> bool:
    """True iff the allocation passes :func:`max_min_violations`."""
    return not max_min_violations(rates, demands, flow_links, capacities, tolerance)
