"""Time-series accumulators used by the simulators.

- :class:`TimeWeightedMean` integrates a piecewise-constant signal
  (e.g. aggregate throughput between simulator events);
- :class:`RateEstimator` is the windowed counter behind the INRPP
  router's anticipated-rate estimation (Eq. 1 of the paper): events
  (forwarded requests) are counted per interval ``Ti`` and exposed as
  a rate for the *next* interval.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.errors import ConfigurationError, SimulationError


class TimeWeightedMean:
    """Integrates ``value * dt`` over observation intervals."""

    def __init__(self, start_time: float = 0.0):
        self._last_time = float(start_time)
        self._area = 0.0
        self._duration = 0.0

    def observe(self, now: float, value: float) -> None:
        """Record that the signal held *value* since the last call."""
        if now < self._last_time - 1e-12:
            raise SimulationError(
                f"time went backwards: {now} < {self._last_time}"
            )
        dt = max(0.0, now - self._last_time)
        self._area += value * dt
        self._duration += dt
        self._last_time = now

    @property
    def mean(self) -> float:
        """Time-weighted mean so far (0.0 before any time passes)."""
        if self._duration == 0.0:
            return 0.0
        return self._area / self._duration

    @property
    def total(self) -> float:
        """Raw integral (e.g. bits delivered if the signal was bps)."""
        return self._area

    @property
    def duration(self) -> float:
        return self._duration


class RateEstimator:
    """Sliding-window event-rate estimator.

    ``record(now, amount)`` logs *amount* units (e.g. anticipated data
    bits implied by one forwarded request); ``rate(now)`` returns the
    units/second observed over the trailing *window* seconds.  This is
    the measurement behind the paper's anticipated rate ``r_a(i)``,
    with ``window`` playing the role of ``Ti ≈ avgRTT``.
    """

    def __init__(self, window: float):
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        self.window = float(window)
        self._events: Deque[Tuple[float, float]] = deque()
        self._sum = 0.0

    def record(self, now: float, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"amount must be >= 0, got {amount}")
        self._events.append((float(now), float(amount)))
        self._sum += amount
        self._expire(now)

    def rate(self, now: float) -> float:
        """Observed rate (units/s) over the trailing window."""
        self._expire(now)
        return self._sum / self.window

    def total(self, now: float) -> float:
        """Units observed within the trailing window."""
        self._expire(now)
        return self._sum

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._events and self._events[0][0] <= horizon:
            _, amount = self._events.popleft()
            self._sum -= amount
        if not self._events:
            # An empty window means exactly zero: the repeated add/
            # subtract cycle leaves float residue of either sign.
            self._sum = 0.0
