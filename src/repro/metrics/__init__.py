"""Metrics: fairness indices, distribution statistics, time series."""

from repro.metrics.fairness import (
    bottleneck_fairness_certificate,
    jain_index,
    max_min_violations,
)
from repro.metrics.stats import (
    Cdf,
    QuantileSketch,
    SummaryStats,
    summarize,
    weighted_cdf,
)
from repro.metrics.timeseries import RateEstimator, TimeWeightedMean

__all__ = [
    "jain_index",
    "max_min_violations",
    "bottleneck_fairness_certificate",
    "Cdf",
    "QuantileSketch",
    "weighted_cdf",
    "SummaryStats",
    "summarize",
    "TimeWeightedMean",
    "RateEstimator",
]
