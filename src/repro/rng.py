"""Deterministic random-number management.

Every stochastic component of the library draws from a
:class:`numpy.random.Generator` derived from a single experiment seed
plus a component label, so that

- the same seed reproduces the same experiment bit-for-bit, and
- changing one component (e.g. the arrival process) does not perturb the
  random stream of another (e.g. topology generation).
"""

from __future__ import annotations

import zlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def derive_seed(seed: int, label: str) -> int:
    """Derive a sub-seed from *seed* and a component *label*.

    The derivation is a CRC32 mix, stable across Python versions and
    platforms (unlike ``hash``, which is salted per process).
    """
    mixed = zlib.crc32(label.encode("utf-8"), seed & 0xFFFFFFFF)
    return mixed & 0x7FFFFFFF


def make_rng(seed: SeedLike = None, label: Optional[str] = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed* and *label*.

    *seed* may be an ``int`` (optionally mixed with *label*), an existing
    generator (returned unchanged, so components can share a stream when
    the caller wants them to) or ``None`` for a non-deterministic stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if label is not None:
        seed = derive_seed(int(seed), label)
    return np.random.default_rng(int(seed))


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Fork an independent child generator from *rng*."""
    return np.random.default_rng(rng.integers(0, 2**63 - 1))
