"""Unit helpers for link rates, data sizes and time.

Internally the whole library uses a single convention:

- **rates** are floats in bits per second (bps),
- **sizes** are integers in bytes,
- **times** are floats in seconds.

This module provides readable constructors (``mbps(10)``,
``gigabytes(10)``), parsers for human strings (``parse_rate("40Gbps")``)
and formatters used by the reporting code.
"""

from __future__ import annotations

import re

from repro.errors import ConfigurationError

#: Number of bits in a byte; chunk sizes are bytes, link rates are bits/s.
BITS_PER_BYTE = 8

_DECIMAL = 1000.0

_RATE_SUFFIXES = {
    "bps": 1.0,
    "kbps": _DECIMAL,
    "mbps": _DECIMAL**2,
    "gbps": _DECIMAL**3,
    "tbps": _DECIMAL**4,
}

_SIZE_SUFFIXES = {
    "b": 1,
    "kb": 10**3,
    "mb": 10**6,
    "gb": 10**9,
    "tb": 10**12,
    "kib": 2**10,
    "mib": 2**20,
    "gib": 2**30,
    "tib": 2**40,
}

_NUMBER_WITH_UNIT = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z/]+)\s*$")


def kbps(value: float) -> float:
    """Return *value* kilobits/s expressed in bits/s."""
    return float(value) * _DECIMAL


def mbps(value: float) -> float:
    """Return *value* megabits/s expressed in bits/s."""
    return float(value) * _DECIMAL**2


def gbps(value: float) -> float:
    """Return *value* gigabits/s expressed in bits/s."""
    return float(value) * _DECIMAL**3


def kilobytes(value: float) -> int:
    """Return *value* kB (decimal) expressed in bytes."""
    return int(round(float(value) * 10**3))


def megabytes(value: float) -> int:
    """Return *value* MB (decimal) expressed in bytes."""
    return int(round(float(value) * 10**6))


def gigabytes(value: float) -> int:
    """Return *value* GB (decimal) expressed in bytes."""
    return int(round(float(value) * 10**9))


def parse_rate(text: str) -> float:
    """Parse a human-readable rate such as ``"40Gbps"`` into bits/s.

    Accepted suffixes are ``bps``, ``kbps``, ``Mbps``, ``Gbps`` and
    ``Tbps`` (case-insensitive, ``b/s`` style separators allowed).

    >>> parse_rate("10Mbps")
    10000000.0
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _NUMBER_WITH_UNIT.match(text)
    if match is None:
        raise ConfigurationError(f"cannot parse rate: {text!r}")
    value, unit = match.groups()
    unit = unit.lower().replace("/s", "ps").replace("bit", "b")
    multiplier = _RATE_SUFFIXES.get(unit)
    if multiplier is None:
        raise ConfigurationError(f"unknown rate unit in {text!r}")
    return float(value) * multiplier


def parse_size(text: str) -> int:
    """Parse a human-readable size such as ``"10GB"`` into bytes.

    Decimal (``kB``/``MB``/``GB``/``TB``) and binary (``KiB``/``MiB``/
    ``GiB``/``TiB``) suffixes are accepted, case-insensitively.

    >>> parse_size("10GB")
    10000000000
    """
    if isinstance(text, int):
        return text
    match = _NUMBER_WITH_UNIT.match(str(text))
    if match is None:
        raise ConfigurationError(f"cannot parse size: {text!r}")
    value, unit = match.groups()
    multiplier = _SIZE_SUFFIXES.get(unit.lower())
    if multiplier is None:
        raise ConfigurationError(f"unknown size unit in {text!r}")
    return int(round(float(value) * multiplier))


def format_rate(bits_per_second: float) -> str:
    """Format a bits/s value with the most natural suffix.

    >>> format_rate(2_000_000.0)
    '2.00Mbps'
    """
    value = float(bits_per_second)
    for suffix, multiplier in (
        ("Tbps", _DECIMAL**4),
        ("Gbps", _DECIMAL**3),
        ("Mbps", _DECIMAL**2),
        ("kbps", _DECIMAL),
    ):
        if abs(value) >= multiplier:
            return f"{value / multiplier:.2f}{suffix}"
    return f"{value:.0f}bps"


def format_size(num_bytes: int) -> str:
    """Format a byte count with the most natural decimal suffix."""
    value = float(num_bytes)
    for suffix, multiplier in (("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("kB", 1e3)):
        if abs(value) >= multiplier:
            return f"{value / multiplier:.2f}{suffix}"
    return f"{int(value)}B"


def transmission_time(size_bytes: int, rate_bps: float) -> float:
    """Serialization delay in seconds of *size_bytes* over *rate_bps*.

    >>> transmission_time(1250, 10_000.0)  # 10 kbit over 10 kbps
    1.0
    """
    if rate_bps <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate_bps!r}")
    if size_bytes < 0:
        raise ConfigurationError(f"size must be non-negative, got {size_bytes!r}")
    return (size_bytes * BITS_PER_BYTE) / rate_bps
