"""repro — reproduction of "Revisiting Resource Pooling: The Case for
In-Network Resource Sharing" (Psaras, Saino, Pavlou; ACM HotNets 2014).

The package implements the In-Network Resource Pooling Principle
(INRPP) and everything it is evaluated against:

- a topology substrate with calibrated synthetic ISP maps
  (:mod:`repro.topology`);
- routing with detour discovery (:mod:`repro.routing`);
- fluid flow-level simulation with SP / ECMP / INRP strategies
  (:mod:`repro.flowsim`);
- a chunk-level discrete-event simulation of the full protocol —
  push-data, detour, back-pressure, custody caching — plus an AIMD
  baseline (:mod:`repro.chunksim`);
- drivers reproducing every table and figure of the paper
  (:mod:`repro.analysis`).

Quickstart::

    from repro import fig3_topology, make_strategy, jain_index
    from repro.units import mbps

    topo = fig3_topology()
    inrp = make_strategy("inrp", topo)
    flows = {1: (inrp.route(1, 1, 4), mbps(10)),
             2: (inrp.route(2, 1, 5), mbps(10))}
    rates = inrp.allocate(flows).rates          # {1: 5e6, 2: 5e6}
    print(jain_index(list(rates.values())))     # 1.0
"""

from repro.errors import (
    AnalysisError,
    CacheError,
    ConfigurationError,
    NoPathError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
    WorkloadError,
)
from repro.topology import (
    ISP_NAMES,
    Topology,
    build_isp_topology,
    dumbbell_topology,
    fig3_topology,
    isp_profile,
    line_topology,
    mesh_topology,
    solve_link_counts,
    star_topology,
)
from repro.routing import (
    DetourClass,
    DetourTable,
    classify_link_detour,
    detour_breakdown,
    k_shortest_paths,
    shortest_path,
)
from repro.metrics import Cdf, jain_index, summarize
from repro.cache import CustodyStore, LruCache, custody_duration
from repro.workloads import (
    FlowSpec,
    FlowWorkload,
    PoissonArrivals,
    gravity_pairs,
    local_pairs,
    uniform_pairs,
)
from repro.flowsim import (
    FlowLevelSimulator,
    IncrementalMaxMin,
    inrp_allocation,
    make_strategy,
    max_min_allocation,
    snapshot_experiment,
)
from repro.chunksim import ChunkNetwork, ChunkSimConfig
from repro.analysis import run_fig3_simulation, run_fig4, run_table1
from repro.campaign import (
    CampaignRunner,
    ResultStore,
    iter_scenarios,
    plan_runs,
    register_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "RoutingError",
    "NoPathError",
    "SimulationError",
    "WorkloadError",
    "CacheError",
    "AnalysisError",
    # topology
    "Topology",
    "fig3_topology",
    "line_topology",
    "star_topology",
    "dumbbell_topology",
    "mesh_topology",
    "build_isp_topology",
    "isp_profile",
    "solve_link_counts",
    "ISP_NAMES",
    # routing
    "shortest_path",
    "k_shortest_paths",
    "DetourClass",
    "DetourTable",
    "classify_link_detour",
    "detour_breakdown",
    # metrics / cache
    "jain_index",
    "Cdf",
    "summarize",
    "LruCache",
    "CustodyStore",
    "custody_duration",
    # workloads
    "FlowSpec",
    "FlowWorkload",
    "PoissonArrivals",
    "uniform_pairs",
    "gravity_pairs",
    "local_pairs",
    # flowsim
    "max_min_allocation",
    "IncrementalMaxMin",
    "inrp_allocation",
    "make_strategy",
    "FlowLevelSimulator",
    "snapshot_experiment",
    # chunksim
    "ChunkNetwork",
    "ChunkSimConfig",
    # analysis
    "run_table1",
    "run_fig3_simulation",
    "run_fig4",
    # campaign
    "CampaignRunner",
    "ResultStore",
    "iter_scenarios",
    "plan_runs",
    "register_scenario",
]
