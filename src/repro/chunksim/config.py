"""Configuration of the chunk-level simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError


@dataclass
class ChunkSimConfig:
    """Tunables of the INRPP / AIMD chunk simulations.

    The defaults are sized for Mbps-scale topologies such as the
    paper's Fig. 3 example (10 Mbps links, 10 kB chunks -> 8 ms of
    serialisation per chunk on a 10 Mbps link).
    """

    #: Payload bytes per content chunk.
    chunk_bytes: int = 10_000
    #: Bytes per request packet.
    request_bytes: int = 100
    #: The measurement interval Ti of Eq. 1 (~ average RTT).
    ti: float = 0.1
    #: Anticipation horizon Ac: chunks the receiver announces ahead.
    anticipation: int = 16
    #: Requests a receiver issues at flow start (initial window).
    initial_window: int = 4
    #: Utilisation threshold that flips an interface out of push-data.
    rho: float = 0.95
    #: Queue depth (in chunks) above which an interface is congested.
    high_watermark_chunks: int = 4
    #: Queue depth at which custody starts draining back into the line.
    low_watermark_chunks: int = 2
    #: Custody store budget per router (None = unbounded).
    custody_bytes: Optional[int] = 50_000_000
    #: Detour depth: 1 = single intermediate node, 2 adds the
    #: "one extra hop on the detour path".
    detour_depth: int = 2
    #: Max detour re-routes a single chunk may take (loop guard).
    max_chunk_detours: int = 4
    #: Exchange one-hop interface state every Ti (Section 3.3 (i)).
    gossip: bool = True
    #: Seconds without back-pressure before a sender resumes pushing.
    resume_timeout: float = 0.4
    #: Custody occupancy fraction above which back-pressure is relayed
    #: further upstream (toward the sender).
    relay_threshold: float = 0.05
    # --- AIMD baseline parameters -------------------------------------
    #: Drop-tail buffer per interface (chunks) in AIMD mode.
    aimd_buffer_chunks: int = 16
    #: Retransmission timeout for request timers (seconds).
    aimd_rto: float = 0.5
    #: Initial AIMD window (outstanding requests).
    aimd_initial_window: float = 2.0

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise ConfigurationError("chunk_bytes must be positive")
        if self.request_bytes <= 0:
            raise ConfigurationError("request_bytes must be positive")
        if self.ti <= 0:
            raise ConfigurationError("ti must be positive")
        if self.anticipation < 0:
            raise ConfigurationError("anticipation must be >= 0")
        if self.initial_window < 1:
            raise ConfigurationError("initial_window must be >= 1")
        if not 0 < self.rho <= 1:
            raise ConfigurationError("rho must be in (0, 1]")
        if self.low_watermark_chunks > self.high_watermark_chunks:
            raise ConfigurationError("low watermark above high watermark")
        if self.detour_depth < 0:
            raise ConfigurationError("detour_depth must be >= 0")

    @property
    def high_watermark_bytes(self) -> int:
        return self.high_watermark_chunks * self.chunk_bytes

    @property
    def low_watermark_bytes(self) -> int:
        return self.low_watermark_chunks * self.chunk_bytes

    @property
    def aimd_buffer_bytes(self) -> int:
        return self.aimd_buffer_chunks * self.chunk_bytes
