"""Point-to-point simulated links.

A :class:`SimLink` is one *direction* of a topology link: it
serialises packets at the line rate, applies propagation delay, and
delivers to the receiving node.  Data packets occupy the queue;
control packets (requests, back-pressure, gossip) ride a fast path —
they are delayed but not queued, a standard simplification that keeps
the reverse control channel from interfering with the data-plane
experiment.

Drop behaviour is owned by the caller: the INRPP router never lets a
queue exceed its watermarks (custody instead), while the AIMD baseline
passes a finite ``buffer_bytes`` and loses packets drop-tail.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.chunksim.engine import Simulator
from repro.errors import ConfigurationError
from repro.units import BITS_PER_BYTE


class LinkStats:
    __slots__ = (
        "data_packets",
        "data_bytes",
        "control_packets",
        "drops",
        "busy_time",
        "peak_queue_bytes",
    )

    def __init__(self):
        self.data_packets = 0
        self.data_bytes = 0
        self.control_packets = 0
        self.drops = 0
        self.busy_time = 0.0
        self.peak_queue_bytes = 0


class SimLink:
    """One direction of a link: ``src -> dst``."""

    def __init__(
        self,
        sim: Simulator,
        src,
        dst,
        rate_bps: float,
        delay_s: float,
        buffer_bytes: Optional[int] = None,
        deliver: Optional[Callable] = None,
        deliver_data: Optional[Callable] = None,
    ):
        if rate_bps <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate_bps}")
        if delay_s < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay_s}")
        self.sim = sim
        self._call_after = sim.call_after
        self.src = src
        self.dst = dst
        self.rate_bps = float(rate_bps)
        # Serialisation seconds per byte; tx_time is called per packet.
        self._tx_per_byte = BITS_PER_BYTE / self.rate_bps
        self.delay_s = float(delay_s)
        self.buffer_bytes = buffer_bytes
        self._deliver = deliver
        # Packets from the data queue are always data chunks, so their
        # delivery can bind the receiver's data handler directly and
        # skip the per-packet type dispatch (control packets vary in
        # type and keep going through *deliver*).
        self._deliver_data = deliver_data if deliver_data is not None else deliver
        #: Optional class -> handler map of the receiving node.  When
        #: set, control packets are dispatched at send time (the class
        #: is known here) instead of through *deliver* on arrival.
        self.control_handlers: Optional[dict] = None
        self._queue: Deque = deque()
        #: Bytes waiting (not counting the packet on the wire).  A
        #: plain attribute: read on every enqueue/phase decision.
        self.queue_bytes = 0
        self._busy = False
        self.stats = LinkStats()
        #: Called with no arguments whenever a transmission finishes
        #: and the queue has drained below any level (router drain hook).
        self.on_tx_complete: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._busy

    def tx_time(self, size_bytes: int) -> float:
        return size_bytes * self._tx_per_byte

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the link was sending."""
        if self.sim.now <= 0:
            return 0.0
        return min(self.stats.busy_time / self.sim.now, 1.0)

    # ------------------------------------------------------------------
    def send(self, packet) -> bool:
        """Queue *packet* for transmission; False when dropped."""
        if (
            self.buffer_bytes is not None
            and self.queue_bytes + packet.size_bytes > self.buffer_bytes
        ):
            self.stats.drops += 1
            return False
        self._queue.append(packet)
        self.queue_bytes += packet.size_bytes
        if self.queue_bytes > self.stats.peak_queue_bytes:
            self.stats.peak_queue_bytes = self.queue_bytes
        if not self._busy:
            self._start_next()
        return True

    def send_control(self, packet) -> None:
        """Deliver a control packet after the propagation delay only."""
        self.stats.control_packets += 1
        handlers = self.control_handlers
        if handlers is not None:
            fn = handlers.get(packet.__class__)
            if fn is not None:
                self._call_after(self.delay_s, fn, packet, self)
                return
        self._call_after(self.delay_s, self._deliver, packet, self)

    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        packet = self._queue.popleft()
        self.queue_bytes -= packet.size_bytes
        self._busy = True
        tx = packet.size_bytes * self._tx_per_byte
        self.stats.busy_time += tx
        self.stats.data_packets += 1
        self.stats.data_bytes += packet.size_bytes
        self._call_after(tx, self._finish, packet)

    def _finish(self, packet) -> None:
        self._call_after(self.delay_s, self._deliver_data, packet, self)
        self._start_next()
        if self.on_tx_complete is not None:
            self.on_tx_complete()

    def __repr__(self) -> str:
        return f"SimLink({self.src!r}->{self.dst!r}, {self.rate_bps:.0f}bps)"
