"""The INRPP router (and the drop-tail baseline router).

Forwarding pipeline for a data chunk (Section 3.3 of the paper):

1. route: pop the next forced hop of a detour tunnel, else FIB lookup
   toward the chunk's receiver;
2. **push-data**: if the outgoing interface has room, enqueue;
3. **detour**: otherwise re-route the chunk through an alternative
   sub-path around the congested link (spoofing the next hops via a
   tunnel), preferring detours whose first hop is uncongested locally
   and whose onward links look clear in the gossiped neighbour state;
4. **back-pressure**: with no detour available, take the chunk into
   the interface's custody store and notify the one-hop upstream
   neighbour (which relays toward the sender) with the fair-share rate
   the congested interface can sustain.

In ``aimd`` mode the router is a plain FIFO drop-tail forwarder, which
is what the e2e baseline of Fig. 3 runs over.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.chunksim.config import ChunkSimConfig
from repro.chunksim.engine import Simulator
from repro.chunksim.interface import Phase, RouterInterface
from repro.chunksim.link import SimLink
from repro.chunksim.messages import Backpressure, DataChunk, Gossip, Request
from repro.chunksim.tracing import Trace
from repro.errors import SimulationError
from repro.routing.paths import Path
from repro.topology.graph import Node
from repro.units import BITS_PER_BYTE


class Router:
    """One network node: forwarding, custody, and local apps."""

    def __init__(
        self,
        sim: Simulator,
        node_id: Node,
        config: ChunkSimConfig,
        trace: Trace,
        mode: str = "inrpp",
    ):
        if mode not in ("inrpp", "aimd"):
            raise SimulationError(f"unknown router mode {mode!r}")
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.trace = trace
        self.mode = mode
        self.ifaces: Dict[Node, RouterInterface] = {}
        self.fib: Dict[Node, Node] = {}
        #: Detour options per congested next hop: list of full paths
        #: ``(self, w1, [w2], next_hop)``.
        self.detour_options: Dict[Node, List[Path]] = {}
        #: Gossiped backlog of neighbour interfaces:
        #: (neighbour, its next hop) -> queued bytes.
        self.neighbor_backlog: Dict[Tuple[Node, Node], int] = {}
        # Local applications (set by the network builder).
        self.sender_app = None
        self.receiver_app = None
        self.drops = 0

    # ------------------------------------------------------------------
    # Wiring (done by ChunkNetwork)
    # ------------------------------------------------------------------
    def attach_link(self, link: SimLink) -> RouterInterface:
        iface = RouterInterface(self.sim, link, self.config)
        self.ifaces[link.dst] = iface
        link.on_tx_complete = lambda: self._on_iface_drain(iface)
        return iface

    def iface_toward(self, destination: Node) -> RouterInterface:
        next_hop = self.fib.get(destination)
        if next_hop is None:
            raise SimulationError(
                f"{self.node_id!r} has no route toward {destination!r}"
            )
        return self.ifaces[next_hop]

    # ------------------------------------------------------------------
    # Receive dispatch (links deliver here)
    # ------------------------------------------------------------------
    def receive(self, packet, via_link: SimLink) -> None:
        if isinstance(packet, DataChunk):
            self._on_data(packet, upstream=via_link.src)
        elif isinstance(packet, Request):
            self._on_request(packet)
        elif isinstance(packet, Backpressure):
            self._on_backpressure(packet)
        elif isinstance(packet, Gossip):
            self._on_gossip(packet)
        else:
            raise SimulationError(f"unknown packet type: {packet!r}")

    # ------------------------------------------------------------------
    # Requests (travel receiver -> sender on the control fast path)
    # ------------------------------------------------------------------
    def receive_local_request(self, request: Request) -> None:
        """Entry point for requests issued by a local receiver app."""
        self._on_request(request)

    def _on_request(self, request: Request) -> None:
        if self.sender_app is not None and self.sender_app.owns(request.flow_id):
            self.sender_app.on_request(request)
            return
        next_hop = self.fib.get(request.sender)
        if next_hop is None:
            self.trace.record(self.sim.now, self.node_id, "request-unroutable")
            return
        # Eq. 1: the data answering this request will leave through the
        # interface toward the receiver — record the anticipated load.
        data_iface = self.ifaces.get(self.fib.get(request.receiver))
        if data_iface is not None:
            data_iface.anticipate(self.config.chunk_bytes * BITS_PER_BYTE)
            data_iface.note_flow(request.flow_id)
        self.ifaces[next_hop].link.send_control(request)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _on_data(self, chunk: DataChunk, upstream: Node) -> None:
        chunk.hops += 1
        if self.receiver_app is not None and self.receiver_app.owns(chunk.flow_id):
            self.receiver_app.on_data(chunk)
            return
        if chunk.tunnel:
            next_hop, chunk.tunnel = chunk.tunnel[0], chunk.tunnel[1:]
        else:
            next_hop = self.fib.get(chunk.receiver)
        if next_hop is None or next_hop not in self.ifaces:
            self.drops += 1
            self.trace.record(self.sim.now, self.node_id, "data-unroutable")
            return
        self.forward(chunk, next_hop, upstream)

    def forward(self, chunk: DataChunk, next_hop: Node, upstream: Node) -> None:
        """Apply the push / detour / back-pressure pipeline."""
        iface = self.ifaces[next_hop]
        chunk.prev_hop = self.node_id
        if self.mode == "aimd":
            if not iface.enqueue(chunk):
                self.drops += 1
                self.trace.record(self.sim.now, self.node_id, "drop-tail")
            return

        if iface.can_accept(chunk.size_bytes):
            iface.enqueue(chunk)
            return

        option = self._pick_detour(chunk, next_hop)
        if option is not None:
            # option = (self, w1, ..., next_hop): forward to w1 with the
            # rest as forced hops, prepended to any remaining tunnel.
            chunk.detours += 1
            chunk.tunnel = tuple(option[2:]) + tuple(chunk.tunnel)
            self.trace.record(
                self.sim.now, self.node_id, "detour", around=(self.node_id, next_hop)
            )
            self.forward(chunk, option[1], upstream)
            return

        self._enter_backpressure(chunk, iface, upstream)

    def _pick_detour(self, chunk: DataChunk, next_hop: Node) -> Optional[Path]:
        if self.config.detour_depth <= 0:
            return None
        if chunk.detours >= self.config.max_chunk_detours:
            return None
        best: Optional[Path] = None
        best_queue = None
        for option in self.detour_options.get(next_hop, ()):
            first_hop = option[1]
            iface = self.ifaces.get(first_hop)
            if iface is None or not iface.can_accept(chunk.size_bytes):
                continue
            if self.config.gossip and not self._gossip_clear(option):
                continue
            if best_queue is None or iface.link.queue_bytes < best_queue:
                best = option
                best_queue = iface.link.queue_bytes
        return best

    def _gossip_clear(self, option: Path) -> bool:
        """Check gossiped backlog of the option's onward links."""
        for hop_from, hop_to in zip(option[1:], option[2:]):
            backlog = self.neighbor_backlog.get((hop_from, hop_to))
            if backlog is not None and backlog >= self.config.high_watermark_bytes:
                return False
        return True

    def _enter_backpressure(
        self, chunk: DataChunk, iface: RouterInterface, upstream: Node
    ) -> None:
        if not iface.take_custody(chunk):
            self.drops += 1
            self.trace.record(self.sim.now, self.node_id, "drop-custody-full")
            return
        self.trace.record(self.sim.now, self.node_id, "custody")
        signal = Backpressure(
            flow_id=chunk.flow_id,
            congested_link=(self.node_id, iface.neighbor),
            allowed_bps=iface.fair_share_bps(),
            origin=self.node_id,
        )
        signal.sender = chunk.sender
        self._send_backpressure(signal, upstream)

    def _send_backpressure(self, signal: Backpressure, upstream: Node) -> None:
        if upstream == self.node_id or upstream is None:
            # Chunk originated here: deliver straight to the local app.
            if self.sender_app is not None:
                self.sender_app.on_backpressure(signal)
            return
        iface = self.ifaces.get(upstream)
        if iface is None:
            self.trace.record(self.sim.now, self.node_id, "bp-unroutable")
            return
        self.trace.record(self.sim.now, self.node_id, "bp-sent")
        iface.link.send_control(signal)

    def _on_backpressure(self, signal: Backpressure) -> None:
        if self.sender_app is not None and self.sender_app.owns(signal.flow_id):
            self.sender_app.on_backpressure(signal)
            return
        # Relay hop-by-hop toward the sender (reverse data path).
        sender = getattr(signal, "sender", None)
        next_hop = self.fib.get(sender) if sender is not None else None
        if next_hop is None:
            self.trace.record(self.sim.now, self.node_id, "bp-unroutable")
            return
        self.trace.record(self.sim.now, self.node_id, "bp-relayed")
        self.ifaces[next_hop].link.send_control(signal)

    # ------------------------------------------------------------------
    # Gossip (Section 3.3, option (i))
    # ------------------------------------------------------------------
    def start_gossip(self) -> None:
        if not self.config.gossip or self.mode != "inrpp":
            return

        def _tick() -> None:
            message = Gossip(
                origin=self.node_id,
                backlog_bytes={
                    neighbor: iface.link.queue_bytes
                    + iface.custody.used_bytes
                    for neighbor, iface in self.ifaces.items()
                },
            )
            for iface in self.ifaces.values():
                iface.link.send_control(message)
            self.sim.schedule(self.config.ti, _tick)

        self.sim.schedule(self.config.ti, _tick)

    def _on_gossip(self, message: Gossip) -> None:
        for next_hop, backlog in message.backlog_bytes.items():
            self.neighbor_backlog[(message.origin, next_hop)] = backlog

    # ------------------------------------------------------------------
    # Drain hook: custody -> line, then wake the local sender.
    # ------------------------------------------------------------------
    def _on_iface_drain(self, iface: RouterInterface) -> None:
        while iface.drain_custody() is not None:
            self.trace.record(self.sim.now, self.node_id, "custody-drain")
        if self.sender_app is not None:
            self.sender_app.pump(iface)

    # ------------------------------------------------------------------
    def custody_used_bytes(self) -> int:
        return sum(iface.custody.used_bytes for iface in self.ifaces.values())

    def custody_peak_bytes(self) -> int:
        return sum(iface.custody.stats.peak_bytes for iface in self.ifaces.values())

    def __repr__(self) -> str:
        return f"Router({self.node_id!r}, mode={self.mode})"
