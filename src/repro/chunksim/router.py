"""The INRPP router (and the drop-tail baseline router).

Forwarding pipeline for a data chunk (Section 3.3 of the paper):

1. route: pop the next forced hop of a detour tunnel, else FIB lookup
   toward the chunk's receiver;
2. **push-data**: if the outgoing interface has room, enqueue;
3. **detour**: otherwise re-route the chunk through an alternative
   sub-path around the congested link (spoofing the next hops via a
   tunnel), preferring detours whose first hop is uncongested locally
   and whose onward links look clear in the gossiped neighbour state;
4. **back-pressure**: with no detour available, take the chunk into
   the interface's custody store and notify the one-hop upstream
   neighbour (which relays toward the sender) with the fair-share rate
   the congested interface can sustain.

In ``aimd`` mode the router is a plain FIFO drop-tail forwarder, which
is what the e2e baseline of Fig. 3 runs over.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.chunksim.config import ChunkSimConfig
from repro.chunksim.engine import Simulator
from repro.chunksim.interface import Phase, RouterInterface
from repro.chunksim.link import SimLink
from repro.chunksim.messages import Backpressure, DataChunk, Gossip, Request
from repro.chunksim.tracing import Trace
from repro.errors import SimulationError
from repro.routing.paths import Path
from repro.topology.graph import Node
from repro.units import BITS_PER_BYTE


class Router:
    """One network node: forwarding, custody, and local apps."""

    def __init__(
        self,
        sim: Simulator,
        node_id: Node,
        config: ChunkSimConfig,
        trace: Trace,
        mode: str = "inrpp",
    ):
        if mode not in ("inrpp", "aimd"):
            raise SimulationError(f"unknown router mode {mode!r}")
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.trace = trace
        self.mode = mode
        self.ifaces: Dict[Node, RouterInterface] = {}
        self.fib: Dict[Node, Node] = {}
        #: Detour options per congested next hop: list of full paths
        #: ``(self, w1, [w2], next_hop)``.
        self.detour_options: Dict[Node, List[Path]] = {}
        #: Gossiped backlog of neighbour interfaces:
        #: (neighbour, its next hop) -> queued bytes.
        self.neighbor_backlog: Dict[Tuple[Node, Node], int] = {}
        # Local applications (set by the network builder).
        self.sender_app = None
        self.receiver_app = None
        self.drops = 0
        # Hot-path constants (config properties recompute per call).
        self._high_wm_bytes = config.high_watermark_bytes
        self._chunk_bits = config.chunk_bytes * BITS_PER_BYTE
        self._inrpp = mode == "inrpp"
        self._call_after = sim.call_after
        #: flow id -> (relay link, next-hop request handler, Eq. 1
        #: interface or None).  The FIB is static after build, so a
        #: flow's relay route never changes.
        self._request_route: Dict[int, Tuple] = {}
        # Exact-class receive dispatch (no isinstance chain per packet).
        self._handlers = {
            DataChunk: self._on_data,
            Request: self._on_request,
            Backpressure: self._on_backpressure,
            Gossip: self._on_gossip,
        }

    # ------------------------------------------------------------------
    # Wiring (done by ChunkNetwork)
    # ------------------------------------------------------------------
    def attach_link(self, link: SimLink) -> RouterInterface:
        iface = RouterInterface(self.sim, link, self.config)
        self.ifaces[link.dst] = iface
        link.on_tx_complete = partial(self._on_iface_drain, iface)
        return iface

    def iface_toward(self, destination: Node) -> RouterInterface:
        next_hop = self.fib.get(destination)
        if next_hop is None:
            raise SimulationError(
                f"{self.node_id!r} has no route toward {destination!r}"
            )
        return self.ifaces[next_hop]

    # ------------------------------------------------------------------
    # Receive dispatch (links deliver here)
    # ------------------------------------------------------------------
    def receive(self, packet, via_link: SimLink) -> None:
        handler = self._handlers.get(packet.__class__)
        if handler is None:
            raise SimulationError(f"unknown packet type: {packet!r}")
        handler(packet, via_link)

    # ------------------------------------------------------------------
    # Requests (travel receiver -> sender on the control fast path)
    # ------------------------------------------------------------------
    def receive_local_request(self, request: Request) -> None:
        """Entry point for requests issued by a local receiver app."""
        self._on_request(request)

    def _on_request(self, request: Request, via_link: Optional[SimLink] = None) -> None:
        app = self.sender_app
        if app is not None and request.flow_id in app.flows:
            app.on_request(request)
            return
        # The relay route is per-flow static (the FIB never changes
        # after build), so it is resolved once per flow id — including
        # the receiving neighbour's request handler, which lets the
        # relay schedule the delivery directly.
        route = self._request_route.get(request.flow_id)
        if route is None:
            route = self._resolve_request_route(request)
        relay_link, relay_handler, data_iface = route
        if relay_link is None:
            self.trace.record(self.sim.now, self.node_id, "request-unroutable")
            return
        if data_iface is not None:
            # Eq. 1: the data answering this request will leave through
            # the interface toward the receiver — record the load.
            data_iface.anticipate(self._chunk_bits)
            data_iface.note_flow(request.flow_id)
        relay_link.stats.control_packets += 1
        self._call_after(relay_link.delay_s, relay_handler, request, relay_link)

    def _resolve_request_route(self, request: Request):
        next_hop = self.fib.get(request.sender)
        relay_link = self.ifaces[next_hop].link if next_hop is not None else None
        relay_handler = None
        data_iface = None
        if relay_link is not None:
            handlers = relay_link.control_handlers
            relay_handler = handlers.get(Request) if handlers is not None else None
            if relay_handler is None:
                # Standalone links (unit tests) fall back to the
                # receiver's generic dispatch.
                relay_handler = relay_link._deliver
            if self._inrpp:
                # The AIMD forwarder never reads anticipated rates or
                # flow fair shares, so Eq. 1 bookkeeping is INRPP-only.
                data_iface = self.ifaces.get(self.fib.get(request.receiver))
        route = (relay_link, relay_handler, data_iface)
        self._request_route[request.flow_id] = route
        return route

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _on_data(self, chunk: DataChunk, via_link: SimLink) -> None:
        upstream = via_link.src
        chunk.hops += 1
        app = self.receiver_app
        if app is not None and chunk.flow_id in app.flows:
            app.on_data(chunk)
            return
        if chunk.tunnel:
            next_hop, chunk.tunnel = chunk.tunnel[0], chunk.tunnel[1:]
        else:
            next_hop = self.fib.get(chunk.receiver)
        if next_hop is None or next_hop not in self.ifaces:
            self.drops += 1
            self.trace.record(self.sim.now, self.node_id, "data-unroutable")
            return
        self.forward(chunk, next_hop, upstream)

    def forward(self, chunk: DataChunk, next_hop: Node, upstream: Node) -> None:
        """Apply the push / detour / back-pressure pipeline."""
        iface = self.ifaces[next_hop]
        chunk.prev_hop = self.node_id
        if not self._inrpp:
            # Drop-tail forwarding; flow accounting (note_flow) feeds
            # fair-share back-pressure rates, which the baseline never
            # emits, so the link is driven directly.
            if not iface.link.send(chunk):
                self.drops += 1
                self.trace.record(self.sim.now, self.node_id, "drop-tail")
            return

        if iface.can_accept(chunk.size_bytes):
            iface.enqueue(chunk)
            return

        option = self._pick_detour(chunk, next_hop)
        if option is not None:
            # option = (self, w1, ..., next_hop): forward to w1 with the
            # rest as forced hops, prepended to any remaining tunnel.
            chunk.detours += 1
            chunk.tunnel = tuple(option[2:]) + tuple(chunk.tunnel)
            self.trace.record(
                self.sim.now, self.node_id, "detour", around=(self.node_id, next_hop)
            )
            self.forward(chunk, option[1], upstream)
            return

        self._enter_backpressure(chunk, iface, upstream)

    def _pick_detour(self, chunk: DataChunk, next_hop: Node) -> Optional[Path]:
        if self.config.detour_depth <= 0:
            return None
        if chunk.detours >= self.config.max_chunk_detours:
            return None
        best: Optional[Path] = None
        best_queue = None
        for option in self.detour_options.get(next_hop, ()):
            first_hop = option[1]
            iface = self.ifaces.get(first_hop)
            if iface is None or not iface.can_accept(chunk.size_bytes):
                continue
            if self.config.gossip and not self._gossip_clear(option):
                continue
            if best_queue is None or iface.link.queue_bytes < best_queue:
                best = option
                best_queue = iface.link.queue_bytes
        return best

    def _gossip_clear(self, option: Path) -> bool:
        """Check gossiped backlog of the option's onward links."""
        for hop_from, hop_to in zip(option[1:], option[2:]):
            backlog = self.neighbor_backlog.get((hop_from, hop_to))
            if backlog is not None and backlog >= self._high_wm_bytes:
                return False
        return True

    def _enter_backpressure(
        self, chunk: DataChunk, iface: RouterInterface, upstream: Node
    ) -> None:
        if not iface.take_custody(chunk):
            self.drops += 1
            self.trace.record(self.sim.now, self.node_id, "drop-custody-full")
            return
        self.trace.record(self.sim.now, self.node_id, "custody")
        signal = Backpressure(
            flow_id=chunk.flow_id,
            congested_link=(self.node_id, iface.neighbor),
            allowed_bps=iface.fair_share_bps(),
            origin=self.node_id,
            sender=chunk.sender,
        )
        self._send_backpressure(signal, upstream)

    def _send_backpressure(self, signal: Backpressure, upstream: Node) -> None:
        if upstream == self.node_id or upstream is None:
            # Chunk originated here: deliver straight to the local app.
            if self.sender_app is not None:
                self.sender_app.on_backpressure(signal)
            return
        iface = self.ifaces.get(upstream)
        if iface is None:
            self.trace.record(self.sim.now, self.node_id, "bp-unroutable")
            return
        self.trace.record(self.sim.now, self.node_id, "bp-sent")
        iface.link.send_control(signal)

    def _on_backpressure(
        self, signal: Backpressure, via_link: Optional[SimLink] = None
    ) -> None:
        app = self.sender_app
        if app is not None and signal.flow_id in app.flows:
            app.on_backpressure(signal)
            return
        # Relay hop-by-hop toward the sender (reverse data path).
        sender = getattr(signal, "sender", None)
        next_hop = self.fib.get(sender) if sender is not None else None
        if next_hop is None:
            self.trace.record(self.sim.now, self.node_id, "bp-unroutable")
            return
        self.trace.record(self.sim.now, self.node_id, "bp-relayed")
        self.ifaces[next_hop].link.send_control(signal)

    # ------------------------------------------------------------------
    # Gossip (Section 3.3, option (i))
    # ------------------------------------------------------------------
    def start_gossip(self) -> None:
        if not self.config.gossip or self.mode != "inrpp":
            return
        self.sim.call_after(self.config.ti, self._gossip_tick)

    def _gossip_tick(self) -> None:
        message = Gossip(
            origin=self.node_id,
            backlog_bytes={
                neighbor: iface.link.queue_bytes + iface.custody.used_bytes
                for neighbor, iface in self.ifaces.items()
            },
        )
        for iface in self.ifaces.values():
            iface.link.send_control(message)
        self.sim.call_after(self.config.ti, self._gossip_tick)

    def _on_gossip(self, message: Gossip, via_link: Optional[SimLink] = None) -> None:
        for next_hop, backlog in message.backlog_bytes.items():
            self.neighbor_backlog[(message.origin, next_hop)] = backlog

    # ------------------------------------------------------------------
    # Drain hook: custody -> line, then wake the local sender.
    # ------------------------------------------------------------------
    def _on_iface_drain(self, iface: RouterInterface) -> None:
        if iface._custody_queue:
            while iface.drain_custody() is not None:
                self.trace.record(self.sim.now, self.node_id, "custody-drain")
        if self.sender_app is not None:
            self.sender_app.pump(iface)

    # ------------------------------------------------------------------
    def custody_used_bytes(self) -> int:
        return sum(iface.custody.used_bytes for iface in self.ifaces.values())

    def custody_peak_bytes(self) -> int:
        return sum(iface.custody.stats.peak_bytes for iface in self.ifaces.values())

    def __repr__(self) -> str:
        return f"Router({self.node_id!r}, mode={self.mode})"
