"""Lightweight tracing/counters for the chunk simulator."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class TraceRecord:
    time: float
    node: Any
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)


class Trace:
    """Counts protocol events; optionally keeps full records.

    Counting is always on (cheap, used by reports and tests); record
    keeping is opt-in via ``keep_records=True`` because long runs emit
    millions of events.
    """

    def __init__(self, keep_records: bool = False, max_records: int = 100_000):
        self.counters: Counter = Counter()
        self.keep_records = keep_records
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        #: First simulated time each event type was recorded (onset
        #: detection: e.g. when did back-pressure/custody first appear).
        self.first_seen: Dict[str, float] = {}

    def record(self, time: float, node: Any, event: str, **detail: Any) -> None:
        self.counters[event] += 1
        if event not in self.first_seen:
            self.first_seen[event] = time
        if self.keep_records and len(self.records) < self.max_records:
            self.records.append(TraceRecord(time, node, event, detail))

    def count(self, event: str) -> int:
        return self.counters.get(event, 0)

    def events_at(self, node: Any) -> List[TraceRecord]:
        return [record for record in self.records if record.node == node]
