"""AIMD baseline end-points (the e2e flow control of Fig. 3, left).

The receiver keeps a window ``W`` of outstanding requests, grows it by
``1/W`` per delivered chunk (additive increase of one request per
round) and halves it when a request times out — the textbook
receiver-driven AIMD interest control.  Routers run drop-tail FIFO
queues, so congestion manifests as data loss exactly like TCP over IP.

On the Fig. 3 topology two such flows converge to ≈(2, 8) Mbps: each
flow tracks the slowest link of *its own* path, which is the behaviour
the paper's INRPP replaces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.chunksim.config import ChunkSimConfig
from repro.chunksim.messages import Backpressure, DataChunk, Request
from repro.chunksim.router import Router
from repro.errors import SimulationError


@dataclass(slots=True)
class AimdFlow:
    flow_id: int
    sender: object
    total_chunks: int
    window: float = 2.0
    next_new: int = 0
    received: Set[int] = field(default_factory=set)
    #: chunk id -> engine timer entry (see ``Simulator.schedule_entry``).
    outstanding: Dict[int, object] = field(default_factory=dict)
    retransmit: Deque[int] = field(default_factory=deque)
    completion_time: Optional[float] = None
    arrivals: List[Tuple[float, int]] = field(default_factory=list)
    hops_total: int = 0
    detoured_chunks: int = 0
    duplicates: int = 0
    timeouts: int = 0
    next_needed: int = 0

    @property
    def complete(self) -> bool:
        return len(self.received) >= self.total_chunks


class AimdReceiverApp:
    """Window-based (AIMD) receiver: the e2e baseline."""

    def __init__(self, router: Router, config: ChunkSimConfig):
        self.router = router
        self.config = config
        self.sim = router.sim
        self.flows: Dict[int, AimdFlow] = {}
        # Per-request constants and bound methods (hot path: one
        # request per chunk plus every retransmission).
        self._schedule_entry = router.sim.schedule_entry
        self._cancel_entry = router.sim.cancel_entry
        self._rto = config.aimd_rto
        self._request_bytes = config.request_bytes

    def owns(self, flow_id: int) -> bool:
        return flow_id in self.flows

    def add_flow(self, flow_id: int, sender, total_chunks: int) -> AimdFlow:
        if flow_id in self.flows:
            raise SimulationError(f"duplicate AIMD flow {flow_id}")
        flow = AimdFlow(
            flow_id, sender, total_chunks, window=self.config.aimd_initial_window
        )
        self.flows[flow_id] = flow
        return flow

    def start(self, flow_id: int) -> None:
        self._fill_window(self.flows[flow_id])

    # ------------------------------------------------------------------
    def on_data(self, chunk: DataChunk) -> None:
        flow = self.flows[chunk.flow_id]
        timer = flow.outstanding.pop(chunk.chunk_id, None)
        if timer is not None:
            self._cancel_entry(timer)
        if chunk.chunk_id in flow.received:
            flow.duplicates += 1
        else:
            flow.received.add(chunk.chunk_id)
            flow.arrivals.append((self.sim.now, chunk.size_bytes))
            flow.hops_total += chunk.hops
            while flow.next_needed in flow.received:
                flow.next_needed += 1
            # Additive increase: one extra request per delivered window.
            flow.window += 1.0 / max(flow.window, 1.0)
            if flow.complete and flow.completion_time is None:
                flow.completion_time = self.sim.now
                return
        self._fill_window(flow)

    def _on_timeout(self, flow: AimdFlow, chunk_id: int) -> None:
        if flow.outstanding.pop(chunk_id, None) is None:
            return
        flow.timeouts += 1
        # Multiplicative decrease.
        flow.window = max(flow.window / 2.0, 1.0)
        flow.retransmit.append(chunk_id)
        self._fill_window(flow)

    def _fill_window(self, flow: AimdFlow) -> None:
        target = int(flow.window)
        while len(flow.outstanding) < target:
            chunk_id = self._next_chunk(flow)
            if chunk_id is None:
                return
            self._request(flow, chunk_id)

    def _next_chunk(self, flow: AimdFlow) -> Optional[int]:
        while flow.retransmit:
            chunk_id = flow.retransmit.popleft()
            if chunk_id not in flow.received and chunk_id not in flow.outstanding:
                return chunk_id
        if flow.next_new < flow.total_chunks:
            chunk_id = flow.next_new
            flow.next_new += 1
            return chunk_id
        return None

    def _request(self, flow: AimdFlow, chunk_id: int) -> None:
        # Positional construction; anticipate_to == chunk_id because
        # the baseline does not anticipate.
        request = Request(
            flow.flow_id,
            chunk_id,
            flow.next_needed - 1,
            chunk_id,
            self.router.node_id,
            flow.sender,
            self._request_bytes,
        )
        flow.outstanding[chunk_id] = self._schedule_entry(
            self._rto, self._on_timeout, flow, chunk_id
        )
        self.router._on_request(request)


class AimdSenderApp:
    """Stateless chunk server: one data chunk per incoming request."""

    def __init__(self, router: Router, config: ChunkSimConfig):
        self.router = router
        self.config = config
        #: flow -> (receiver, total chunks, iface toward receiver).
        self.flows: Dict[int, Tuple[object, int, object]] = {}
        self.chunks_sent = 0
        self._chunk_bytes = config.chunk_bytes

    def owns(self, flow_id: int) -> bool:
        return flow_id in self.flows

    def add_flow(self, flow_id: int, receiver, total_chunks: int) -> None:
        next_hop = self.router.fib.get(receiver)
        if next_hop is None:
            raise SimulationError(f"no route from AIMD sender to {receiver!r}")
        self.flows[flow_id] = (receiver, total_chunks, self.router.ifaces[next_hop])

    def on_request(self, request: Request) -> None:
        receiver, total, iface = self.flows[request.flow_id]
        chunk_id = request.next_chunk
        if not 0 <= chunk_id < total:
            return
        router = self.router
        chunk = DataChunk(
            request.flow_id, chunk_id, self._chunk_bytes, receiver, router.node_id
        )
        self.chunks_sent += 1
        # Inlined drop-tail forward (the baseline's only data path):
        # drive the link directly, mirroring Router.forward's AIMD arm.
        chunk.prev_hop = router.node_id
        if not iface.link.send(chunk):
            router.drops += 1
            router.trace.record(router.sim.now, router.node_id, "drop-tail")

    def on_backpressure(self, signal: Backpressure) -> None:
        """The baseline ignores in-network signals (there are none)."""

    def pump(self, iface) -> None:
        """No push machinery in the baseline; sending is per-request."""
