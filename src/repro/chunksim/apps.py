"""INRPP end-point applications (Section 3.2 of the paper).

**Receivers** request data at the application rate: an initial window
of requests at flow start, then one request per received chunk, so the
request rate continuously matches the incoming data rate.  Every
request carries ``⟨Nc, ACKc, Ac⟩`` with ``Ac = Nc + anticipation``.

**Senders** keep per-flow state and run in one of two modes:

- *push-data*: send as much as the outgoing link can carry, up to the
  anticipation horizon, multiplexing flows in processor-sharing
  (round-robin) fashion;
- *back-pressure*: closed loop — at most one chunk per received
  request (1:1 flow balance) — entered when a back-pressure signal
  arrives, left after ``resume_timeout`` seconds of silence.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.chunksim.config import ChunkSimConfig
from repro.chunksim.interface import RouterInterface
from repro.chunksim.messages import Backpressure, DataChunk, Request
from repro.chunksim.router import Router
from repro.errors import SimulationError

PUSH = "push"
BACKPRESSURE = "backpressure"


@dataclass(slots=True)
class SenderFlow:
    flow_id: int
    receiver: object
    total_chunks: int
    #: The outgoing interface toward the receiver (static FIB).
    iface: Optional[RouterInterface] = None
    next_push: int = 0
    highest_requested: int = -1
    anticipate_limit: int = -1
    credits: int = 0
    mode: str = PUSH
    allowed_bps: float = float("inf")
    last_bp_time: float = -1.0
    chunks_sent: int = 0
    anticipated_sent: int = 0

    def sendable(self) -> bool:
        if self.next_push >= self.total_chunks:
            return False
        if self.mode == BACKPRESSURE:
            # Closed loop: one chunk per received request (1:1 flow
            # balance).  Chunks already pushed ahead of the requests
            # stay in flight; the credit rule alone matches the send
            # rate to the request (= delivery) rate.
            return self.credits > 0
        return self.next_push <= self.anticipate_limit


class SenderApp:
    """All sending flows originating at one router."""

    def __init__(self, router: Router, config: ChunkSimConfig):
        self.router = router
        self.config = config
        self.sim = router.sim
        self.flows: Dict[int, SenderFlow] = {}
        #: Round-robin order per outgoing interface.
        self._rr: Dict[object, Deque[int]] = {}
        self.bp_signals = 0
        self._low_wm_bytes = config.low_watermark_bytes

    def owns(self, flow_id: int) -> bool:
        return flow_id in self.flows

    def add_flow(self, flow_id: int, receiver, total_chunks: int) -> SenderFlow:
        if flow_id in self.flows:
            raise SimulationError(f"duplicate sender flow {flow_id}")
        flow = SenderFlow(flow_id, receiver, total_chunks)
        self.flows[flow_id] = flow
        next_hop = self.router.fib.get(receiver)
        if next_hop is None:
            raise SimulationError(f"no route from sender to {receiver!r}")
        flow.iface = self.router.ifaces.get(next_hop)
        self._rr.setdefault(next_hop, deque()).append(flow_id)
        return flow

    # ------------------------------------------------------------------
    def on_request(self, request: Request) -> None:
        flow = self.flows[request.flow_id]
        if request.next_chunk > flow.highest_requested:
            flow.highest_requested = request.next_chunk
        if request.anticipate_to > flow.anticipate_limit:
            flow.anticipate_limit = request.anticipate_to
        flow.credits += 1
        self.pump(flow.iface)

    def on_backpressure(self, signal: Backpressure) -> None:
        flow = self.flows.get(signal.flow_id)
        if flow is None:
            return
        self.bp_signals += 1
        flow.mode = BACKPRESSURE
        flow.allowed_bps = signal.allowed_bps
        flow.last_bp_time = self.sim.now
        self.sim.call_after(self.config.resume_timeout, self._maybe_resume, flow)

    def _maybe_resume(self, flow: SenderFlow) -> None:
        if flow.mode != BACKPRESSURE:
            return
        if self.sim.now - flow.last_bp_time >= self.config.resume_timeout - 1e-9:
            flow.mode = PUSH
            self.pump(flow.iface)

    # ------------------------------------------------------------------
    def pump(self, iface: Optional[RouterInterface]) -> None:
        """Fill the interface queue round-robin across local flows.

        The sender keeps the line queue shallow (low watermark) so the
        round-robin granularity approximates processor sharing between
        flows and leaves room for transit traffic.
        """
        if iface is None:
            return
        order = self._rr.get(iface.neighbor)
        if not order:
            return
        while iface.link.queue_bytes < self._low_wm_bytes:
            flow = self._next_sendable(order)
            if flow is None:
                return
            self._send_chunk(flow, iface)

    def _next_sendable(self, order: Deque[int]) -> Optional[SenderFlow]:
        for _ in range(len(order)):
            flow_id = order.popleft()
            order.append(flow_id)
            flow = self.flows[flow_id]
            if flow.sendable():
                return flow
        return None

    def _send_chunk(self, flow: SenderFlow, iface: RouterInterface) -> None:
        anticipated = flow.next_push > flow.highest_requested
        chunk = DataChunk(
            flow_id=flow.flow_id,
            chunk_id=flow.next_push,
            size_bytes=self.config.chunk_bytes,
            receiver=flow.receiver,
            sender=self.router.node_id,
            anticipated=anticipated,
        )
        flow.next_push += 1
        flow.chunks_sent += 1
        if anticipated:
            flow.anticipated_sent += 1
        if flow.mode == BACKPRESSURE:
            flow.credits -= 1
        self.router.forward(chunk, iface.neighbor, upstream=self.router.node_id)


@dataclass(slots=True)
class ReceiverFlow:
    flow_id: int
    sender: object
    total_chunks: int
    received: Set[int] = field(default_factory=set)
    next_needed: int = 0
    max_requested: int = -1
    completion_time: Optional[float] = None
    #: (time, bytes) of every chunk arrival, for goodput windows.
    arrivals: List[Tuple[float, int]] = field(default_factory=list)
    hops_total: int = 0
    detoured_chunks: int = 0
    duplicates: int = 0

    @property
    def complete(self) -> bool:
        return len(self.received) >= self.total_chunks


class ReceiverApp:
    """All receiving flows terminating at one router."""

    def __init__(self, router: Router, config: ChunkSimConfig):
        self.router = router
        self.config = config
        self.sim = router.sim
        self.flows: Dict[int, ReceiverFlow] = {}

    def owns(self, flow_id: int) -> bool:
        return flow_id in self.flows

    def add_flow(self, flow_id: int, sender, total_chunks: int) -> ReceiverFlow:
        if flow_id in self.flows:
            raise SimulationError(f"duplicate receiver flow {flow_id}")
        flow = ReceiverFlow(flow_id, sender, total_chunks)
        self.flows[flow_id] = flow
        return flow

    def start(self, flow_id: int) -> None:
        """Issue the initial request window."""
        flow = self.flows[flow_id]
        window = min(self.config.initial_window, flow.total_chunks)
        for chunk_id in range(window):
            self._request(flow, chunk_id)

    def on_data(self, chunk: DataChunk) -> None:
        flow = self.flows[chunk.flow_id]
        if chunk.chunk_id in flow.received:
            flow.duplicates += 1
            return
        flow.received.add(chunk.chunk_id)
        flow.arrivals.append((self.sim.now, chunk.size_bytes))
        flow.hops_total += chunk.hops
        if chunk.detours > 0:
            flow.detoured_chunks += 1
        while flow.next_needed in flow.received:
            flow.next_needed += 1
        if flow.complete and flow.completion_time is None:
            flow.completion_time = self.sim.now
            return
        # Rate matching: one new request per received chunk.
        next_request = flow.max_requested + 1
        if next_request < flow.total_chunks:
            self._request(flow, next_request)

    def _request(self, flow: ReceiverFlow, chunk_id: int) -> None:
        request = Request(
            flow_id=flow.flow_id,
            next_chunk=chunk_id,
            ack=flow.next_needed - 1,
            anticipate_to=min(
                flow.total_chunks - 1, chunk_id + self.config.anticipation
            ),
            receiver=self.router.node_id,
            sender=flow.sender,
            size_bytes=self.config.request_bytes,
        )
        flow.max_requested = max(flow.max_requested, chunk_id)
        self.router.receive_local_request(request)
