"""Network assembly and experiment façade for the chunk simulator.

:class:`ChunkNetwork` turns a :class:`~repro.topology.graph.Topology`
into a running simulation: routers on every node, one
:class:`~repro.chunksim.link.SimLink` per link direction, shortest-path
FIBs, detour tables, and sender/receiver applications per flow.  Two
modes are supported:

- ``"inrpp"`` — the paper's protocol (push / detour / back-pressure
  with custody stores);
- ``"aimd"`` — the e2e baseline (drop-tail queues, window halving).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chunksim.aimd import AimdReceiverApp, AimdSenderApp
from repro.chunksim.apps import ReceiverApp, SenderApp
from repro.chunksim.config import ChunkSimConfig
from repro.chunksim.engine import make_engine
from repro.chunksim.link import SimLink
from repro.chunksim.router import Router
from repro.chunksim.tracing import Trace
from repro.errors import ConfigurationError, SimulationError
from repro.metrics.fairness import jain_index
from repro.routing.detour import DetourTable
from repro.routing.shortest import iter_sp_next_hops
from repro.topology.graph import Node, Topology


@dataclass
class FlowReport:
    """Per-flow outcome of a chunk-level run."""

    flow_id: int
    source: Node
    destination: Node
    total_chunks: int
    received_chunks: int
    completed: bool
    completion_time: Optional[float]
    #: Goodput measured over the post-warmup window (bits/s).
    goodput_bps: float
    mean_hops: float
    detoured_chunks: int
    duplicates: int
    start_time: float = 0.0

    @property
    def received_fraction(self) -> float:
        if self.total_chunks == 0:
            return 1.0
        return self.received_chunks / self.total_chunks

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time in seconds (None when unfinished)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.start_time


@dataclass
class NetworkReport:
    """Aggregate outcome of a chunk-level run."""

    mode: str
    duration: float
    warmup: float
    flows: List[FlowReport] = field(default_factory=list)
    drops: int = 0
    custody_events: int = 0
    custody_drains: int = 0
    custody_peak_bytes: int = 0
    backpressure_signals: int = 0
    detour_events: int = 0
    link_utilization: Dict = field(default_factory=dict)
    events_processed: int = 0

    def flow(self, flow_id: int) -> FlowReport:
        for report in self.flows:
            if report.flow_id == flow_id:
                return report
        raise KeyError(flow_id)

    def jain(self) -> float:
        """Jain's index over flow goodputs (the Fig. 3 metric)."""
        return jain_index([report.goodput_bps for report in self.flows])

    def total_goodput_bps(self) -> float:
        return sum(report.goodput_bps for report in self.flows)


class ChunkNetwork:
    """A topology instantiated as a chunk-level simulation."""

    def __init__(
        self,
        topology: Topology,
        mode: str = "inrpp",
        config: Optional[ChunkSimConfig] = None,
        trace: Optional[Trace] = None,
        engine: str = "modern",
    ):
        if mode not in ("inrpp", "aimd"):
            raise ConfigurationError(f"unknown mode {mode!r}")
        if not topology.is_connected():
            raise ConfigurationError("chunk simulation needs a connected topology")
        self.topology = topology
        self.mode = mode
        self.config = config or ChunkSimConfig()
        self.trace = trace or Trace()
        self.engine = engine
        self.sim = make_engine(engine)
        self.routers: Dict[Node, Router] = {}
        self.links: List[SimLink] = []
        self._flow_meta: Dict[int, Dict] = {}
        self._next_flow_id = 0
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        for node in self.topology.nodes():
            self.routers[node] = Router(
                self.sim, node, self.config, self.trace, mode=self.mode
            )
        buffer_bytes = (
            self.config.aimd_buffer_bytes if self.mode == "aimd" else None
        )
        for u, v in self.topology.links():
            delay = self.topology.delay(u, v)
            for a, b in ((u, v), (v, u)):
                link = SimLink(
                    self.sim,
                    a,
                    b,
                    rate_bps=self.topology.capacity(a, b),
                    delay_s=delay,
                    buffer_bytes=buffer_bytes,
                    deliver=self.routers[b].receive,
                    deliver_data=self.routers[b]._on_data,
                )
                link.control_handlers = self.routers[b]._handlers
                self.routers[a].attach_link(link)
                self.links.append(link)
        for destination in self.topology.nodes():
            for node, next_hop in iter_sp_next_hops(self.topology, destination):
                self.routers[node].fib[destination] = next_hop
        if self.mode == "inrpp" and self.config.detour_depth > 0:
            table = DetourTable(self.topology, self.config.detour_depth)
            for node, router in self.routers.items():
                for neighbor in self.topology.neighbors(node):
                    router.detour_options[neighbor] = table.options(node, neighbor)
        for router in self.routers.values():
            router.start_gossip()

    # ------------------------------------------------------------------
    def add_flow(
        self,
        source: Node,
        destination: Node,
        num_chunks: int,
        start_time: float = 0.0,
    ) -> int:
        """Register a transfer of *num_chunks* chunks source -> destination.

        *source* is the content origin (sender); *destination* is the
        requesting consumer (receiver).  Returns the flow id.
        """
        if source == destination:
            raise ConfigurationError("sender and receiver must differ")
        if num_chunks < 1:
            raise ConfigurationError(f"need >= 1 chunk, got {num_chunks}")
        for node in (source, destination):
            if not self.topology.has_node(node):
                raise ConfigurationError(f"unknown node {node!r}")
        flow_id = self._next_flow_id
        self._next_flow_id += 1

        sender_router = self.routers[source]
        receiver_router = self.routers[destination]
        if self.mode == "inrpp":
            if sender_router.sender_app is None:
                sender_router.sender_app = SenderApp(sender_router, self.config)
            if receiver_router.receiver_app is None:
                receiver_router.receiver_app = ReceiverApp(
                    receiver_router, self.config
                )
        else:
            if sender_router.sender_app is None:
                sender_router.sender_app = AimdSenderApp(sender_router, self.config)
            if receiver_router.receiver_app is None:
                receiver_router.receiver_app = AimdReceiverApp(
                    receiver_router, self.config
                )
        sender_router.sender_app.add_flow(flow_id, destination, num_chunks)
        receiver_router.receiver_app.add_flow(flow_id, source, num_chunks)
        self._flow_meta[flow_id] = {
            "source": source,
            "destination": destination,
            "total_chunks": num_chunks,
            "start_time": start_time,
        }
        receiver_app = receiver_router.receiver_app
        self.sim.call_at(start_time, receiver_app.start, flow_id)
        return flow_id

    # ------------------------------------------------------------------
    def run(
        self,
        duration: float,
        warmup: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> NetworkReport:
        """Run the simulation and build the report.

        *warmup* (default: 25 % of *duration*) is excluded from the
        goodput windows so start-up transients do not bias Fig. 3
        style steady-state comparisons.
        """
        if duration <= 0:
            raise SimulationError(f"duration must be positive, got {duration}")
        if warmup is None:
            warmup = 0.25 * duration
        if not 0 <= warmup < duration:
            raise SimulationError("warmup must lie within the run")
        self.sim.run(until=duration, max_events=max_events)
        return self._report(duration, warmup)

    def _report(self, duration: float, warmup: float) -> NetworkReport:
        report = NetworkReport(
            mode=self.mode,
            duration=duration,
            warmup=warmup,
            drops=sum(router.drops for router in self.routers.values()),
            custody_events=self.trace.count("custody"),
            custody_drains=self.trace.count("custody-drain"),
            custody_peak_bytes=max(
                (router.custody_peak_bytes() for router in self.routers.values()),
                default=0,
            ),
            backpressure_signals=self.trace.count("bp-sent")
            + self.trace.count("bp-relayed"),
            detour_events=self.trace.count("detour"),
            events_processed=self.sim.events_processed,
        )
        window = duration - warmup
        for flow_id, meta in sorted(self._flow_meta.items()):
            receiver_router = self.routers[meta["destination"]]
            state = receiver_router.receiver_app.flows[flow_id]
            window_bytes = sum(
                size for time, size in state.arrivals if time >= warmup
            )
            received = len(state.received)
            report.flows.append(
                FlowReport(
                    flow_id=flow_id,
                    source=meta["source"],
                    destination=meta["destination"],
                    total_chunks=meta["total_chunks"],
                    received_chunks=received,
                    completed=state.complete,
                    completion_time=state.completion_time,
                    goodput_bps=window_bytes * 8.0 / window,
                    mean_hops=(state.hops_total / received) if received else 0.0,
                    detoured_chunks=state.detoured_chunks,
                    duplicates=state.duplicates,
                    start_time=meta["start_time"],
                )
            )
        report.link_utilization = {
            (link.src, link.dst): link.utilization() for link in self.links
        }
        return report
