"""Discrete-event engine.

Two engines share one API (``schedule`` / ``call_after`` /
``schedule_at`` / ``call_at`` / ``run``) and process events in an
identical order — ``(time, schedule-sequence)`` with FIFO tie-breaking
— so every component of the chunk simulator runs unchanged on either:

- :class:`Simulator` — the modern core.  Heap entries are plain
  ``[time, seq, fn, args]`` lists, so heap sifts compare floats and
  ints at C speed instead of dispatching into a Python ``__lt__``;
  callbacks carry their arguments in the entry instead of a per-event
  closure; cancellation tombstones a live entry in place and is
  *accounted*: once dead entries exceed a slack fraction of the heap
  it is compacted in O(live), which bounds the heap under
  cancel-heavy load (AIMD retransmission timers).  All events due at
  one instant are processed as a batch without re-testing the run
  bound between them.
- :class:`ReferenceSimulator` — the seed implementation (object
  entries with a Python ``__lt__``, one bound-check per event, no
  compaction), kept as the semantic yardstick: the equivalence tests
  and ``benchmarks/bench_chunksim.py`` drive both engines through the
  same scenario and assert identical traces while timing the gap.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.errors import ConfigurationError, SimulationError

#: Negative delays within this tolerance of zero (relative to the
#: clock's magnitude) are float-rounding artefacts of computing an
#: absolute time from ``now``; they are clamped rather than rejected.
#: Kept within a few orders of magnitude of double-precision ulp so a
#: genuinely-past schedule time still fails loudly.
_SCHEDULE_CLAMP = 1e-12

# Heap-entry slots: [_TIME, _SEQ, _FN, _ARGS].  A tombstoned entry has
# _FN set to None (and _ARGS cleared so cancelled closures release
# their references immediately, not at pop time).
_TIME, _SEQ, _FN, _ARGS = 0, 1, 2, 3


class Event:
    """Cancellation handle for a scheduled callback.

    Returned by :meth:`Simulator.schedule`; hot paths that never
    cancel use :meth:`Simulator.call_after`, which skips the handle.
    """

    __slots__ = ("_sim", "_entry")

    def __init__(self, sim: "Simulator", entry: list):
        self._sim = sim
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        return self._entry[_FN] is None

    def cancel(self) -> None:
        entry = self._entry
        if entry[_FN] is not None:
            entry[_FN] = None
            entry[_ARGS] = ()
            self._sim._note_dead()


class Simulator:
    """Event loop with a monotonically advancing clock.

    ``compact_slack`` and ``min_compact_size`` bound the tombstone
    population: once more than ``compact_slack`` of at least
    ``min_compact_size`` heap entries are dead, the heap is rebuilt
    from the live entries (O(live), amortised O(1) per cancel).  The
    live heap size is therefore never exceeded by more than the slack
    fraction plus the compaction floor, no matter how cancel-heavy the
    workload.
    """

    def __init__(self, compact_slack: float = 0.5, min_compact_size: int = 512):
        if not 0.0 < compact_slack:
            raise ConfigurationError(
                f"compact_slack must be positive, got {compact_slack}"
            )
        if min_compact_size < 1:
            raise ConfigurationError(
                f"min_compact_size must be >= 1, got {min_compact_size}"
            )
        self.now = 0.0
        self._heap: List[list] = []
        self._seq = 0
        self._dead = 0
        self.compact_slack = compact_slack
        self.min_compact_size = min_compact_size
        self.events_processed = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args) -> Event:
        """Run ``fn(*args)`` after *delay* seconds; returns a handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        entry = [self.now + delay, self._seq, fn, args]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return Event(self, entry)

    def call_after(self, delay: float, fn: Callable, *args) -> None:
        """:meth:`schedule` without the cancellation handle (hot path)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        entry = [self.now + delay, self._seq, fn, args]
        self._seq += 1
        heapq.heappush(self._heap, entry)

    def schedule_entry(self, delay: float, fn: Callable, *args) -> list:
        """:meth:`schedule` returning the raw heap entry (hot path).

        The entry is opaque; pass it to :meth:`cancel_entry`.  Skips
        the :class:`Event` handle allocation for timer-dense callers
        (AIMD retransmission timers).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        entry = [self.now + delay, self._seq, fn, args]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return entry

    def cancel_entry(self, entry: list) -> None:
        """Cancel an entry from :meth:`schedule_entry`.

        Idempotent, and a no-op once the callback has fired (fired
        entries are marked consumed by the event loop).
        """
        if entry[_FN] is not None:
            entry[_FN] = None
            entry[_ARGS] = ()
            self._dead += 1
            if (
                self._dead >= self.min_compact_size
                and self._dead > self.compact_slack * len(self._heap)
            ):
                self._compact()

    def _clamped_delay(self, time: float) -> float:
        """Delay to absolute *time*, clamping float-rounding residue.

        A *time* a sub-epsilon hair before ``now`` — the typical result
        of re-deriving an absolute instant through float arithmetic —
        schedules immediately instead of raising.
        """
        delay = time - self.now
        if -_SCHEDULE_CLAMP * (1.0 + abs(self.now)) <= delay < 0.0:
            delay = 0.0
        return delay

    def schedule_at(self, time: float, fn: Callable, *args) -> Event:
        """Run ``fn(*args)`` at absolute simulated *time* (>= now)."""
        return self.schedule(self._clamped_delay(time), fn, *args)

    def call_at(self, time: float, fn: Callable, *args) -> None:
        """:meth:`schedule_at` without the cancellation handle."""
        self.call_after(self._clamped_delay(time), fn, *args)

    # ------------------------------------------------------------------
    # Tombstone accounting
    # ------------------------------------------------------------------
    def _note_dead(self) -> None:
        self._dead += 1
        if (
            self._dead >= self.min_compact_size
            and self._dead > self.compact_slack * len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstones and restore the heap invariant in O(live)."""
        self._heap = [entry for entry in self._heap if entry[_FN] is not None]
        heapq.heapify(self._heap)
        self._dead = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def run(self, until: float, max_events: Optional[int] = None) -> None:
        """Process events until the clock passes *until*.

        ``max_events`` is a safety valve for tests: it bounds the
        number of events processed; attempting one more raises
        :class:`SimulationError` (runaway event loops fail loudly).
        """
        if until < self.now:
            raise SimulationError(f"cannot run backwards to {until}")
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        try:
            # Batches: everything due at one instant runs back to back,
            # including same-instant events scheduled by the batch
            # itself (their sequence numbers are higher, so FIFO order
            # is preserved exactly as in a one-at-a-time loop).
            if max_events is None:
                while heap and heap[0][0] <= until:
                    batch_time = heap[0][0]
                    # The clock is batch-constant: advance it once,
                    # not per event.
                    self.now = batch_time
                    while heap and heap[0][0] == batch_time:
                        entry = pop(heap)
                        fn = entry[2]
                        if fn is None:
                            self._dead -= 1
                            continue
                        # Mark the entry consumed *before* the call: a
                        # late cancel (after the callback fired) must
                        # be a no-op, not a tombstone-accounting skew.
                        entry[2] = None
                        fn(*entry[3])
                        processed += 1
            else:
                while heap and heap[0][0] <= until:
                    batch_time = heap[0][0]
                    while heap and heap[0][0] == batch_time:
                        entry = pop(heap)
                        fn = entry[2]
                        if fn is None:
                            self._dead -= 1
                            continue
                        if processed >= max_events:
                            raise SimulationError(
                                f"exceeded {max_events} events"
                            )
                        self.now = batch_time
                        entry[2] = None
                        fn(*entry[3])
                        processed += 1
        finally:
            self.events_processed += processed
        self.now = until

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of events still queued (including tombstones)."""
        return len(self._heap)

    @property
    def dead(self) -> int:
        """Tombstoned entries currently in the heap."""
        return self._dead

    @property
    def live_pending(self) -> int:
        """Events still queued, excluding tombstones."""
        return len(self._heap) - self._dead


class _ReferenceEvent:
    """Seed-era heap entry: an object whose ``__lt__`` is Python code."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "_ReferenceEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class ReferenceSimulator:
    """The seed event loop, kept as the semantic/performance baseline.

    Same API and identical event ordering as :class:`Simulator`, but
    with the seed's cost profile: per-entry objects compared via a
    Python ``__lt__``, one run-bound test per event, and tombstones
    that stay in the heap until their scheduled time is popped.
    """

    def __init__(self):
        self.now = 0.0
        self._heap: List[_ReferenceEvent] = []
        self._seq = 0
        self.events_processed = 0
        self.compactions = 0

    def schedule(self, delay: float, fn: Callable, *args) -> _ReferenceEvent:
        """Run ``fn(*args)`` after *delay* seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        event = _ReferenceEvent(self.now + delay, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    call_after = schedule
    schedule_entry = schedule

    @staticmethod
    def cancel_entry(entry: _ReferenceEvent) -> None:
        entry.cancelled = True

    def schedule_at(self, time: float, fn: Callable, *args) -> _ReferenceEvent:
        """Run ``fn(*args)`` at absolute simulated *time* (>= now)."""
        delay = time - self.now
        if -_SCHEDULE_CLAMP * (1.0 + abs(self.now)) <= delay < 0.0:
            delay = 0.0
        return self.schedule(delay, fn, *args)

    call_at = schedule_at

    def run(self, until: float, max_events: Optional[int] = None) -> None:
        """Process events until the clock passes *until*."""
        if until < self.now:
            raise SimulationError(f"cannot run backwards to {until}")
        processed = 0
        while self._heap and self._heap[0].time <= until:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if max_events is not None and processed >= max_events:
                raise SimulationError(f"exceeded {max_events} events")
            self.now = event.time
            event.fn(*event.args)
            processed += 1
            self.events_processed += 1
        self.now = until

    @property
    def pending(self) -> int:
        """Number of events still queued (including tombstones)."""
        return len(self._heap)

    @property
    def dead(self) -> int:
        """Tombstoned entries currently in the heap (O(pending) scan)."""
        return sum(1 for event in self._heap if event.cancelled)

    @property
    def live_pending(self) -> int:
        return len(self._heap) - self.dead


#: Engine name -> class, used by :class:`repro.chunksim.ChunkNetwork`.
ENGINES = {"modern": Simulator, "reference": ReferenceSimulator}


def make_engine(name: str):
    """Instantiate an engine by name (``"modern"`` or ``"reference"``)."""
    cls = ENGINES.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown engine {name!r}; expected one of {', '.join(sorted(ENGINES))}"
        )
    return cls()
