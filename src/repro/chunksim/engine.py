"""Minimal discrete-event engine.

A binary-heap scheduler with FIFO tie-breaking for simultaneous
events.  Components schedule plain callbacks; cancellation is by
tombstone (the event object is flagged and skipped when popped).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.errors import SimulationError

#: Negative delays within this tolerance of zero (relative to the
#: clock's magnitude) are float-rounding artefacts of computing an
#: absolute time from ``now``; they are clamped rather than rejected.
#: Kept within a few orders of magnitude of double-precision ulp so a
#: genuinely-past schedule time still fails loudly.
_SCHEDULE_CLAMP = 1e-12


class Event:
    """A scheduled callback.  Create via :meth:`Simulator.schedule`."""

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Event loop with a monotonically advancing clock."""

    def __init__(self):
        self.now = 0.0
        self._heap: List[Event] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run *fn* after *delay* seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        event = Event(self.now + delay, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Run *fn* at absolute simulated *time* (>= now).

        A *time* a sub-epsilon hair before ``now`` — the typical result
        of re-deriving an absolute instant through float arithmetic —
        schedules immediately instead of raising.
        """
        delay = time - self.now
        if -_SCHEDULE_CLAMP * (1.0 + abs(self.now)) <= delay < 0.0:
            delay = 0.0
        return self.schedule(delay, fn)

    def run(self, until: float, max_events: Optional[int] = None) -> None:
        """Process events until the clock passes *until*.

        ``max_events`` is a safety valve for tests: it bounds the
        number of events processed; attempting one more raises
        :class:`SimulationError` (runaway event loops fail loudly).
        """
        if until < self.now:
            raise SimulationError(f"cannot run backwards to {until}")
        processed = 0
        while self._heap and self._heap[0].time <= until:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if max_events is not None and processed >= max_events:
                raise SimulationError(f"exceeded {max_events} events")
            self.now = event.time
            event.fn()
            processed += 1
            self.events_processed += 1
        self.now = until

    @property
    def pending(self) -> int:
        """Number of events still queued (including tombstones)."""
        return len(self._heap)
