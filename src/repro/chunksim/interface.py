"""Router interface: anticipated-rate estimation and the phase machine.

Each outgoing interface of an INRPP router tracks the *anticipated
rate* ``r_a`` — the data it expects to have to forward in the next
interval ``Ti``, inferred from the requests the router forwarded
upstream (Eq. 1 of the paper) — and exposes the three-phase state:

- **push-data** while ``r_a < ρ·r`` and the line queue is shallow;
- **detour** when demand is about to exceed supply;
- **back-pressure** once chunks sit in the interface's custody queue.

The custody queue is the in-network storage of the paper: chunks that
could be neither forwarded nor detoured wait here (FIFO) and drain
back into the line as soon as the queue falls below the low watermark.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional

from repro.cache.custody import CustodyStore
from repro.chunksim.config import ChunkSimConfig
from repro.chunksim.engine import Simulator
from repro.chunksim.link import SimLink
from repro.chunksim.messages import DataChunk
from repro.metrics.timeseries import RateEstimator
from repro.units import BITS_PER_BYTE


class Phase(enum.Enum):
    PUSH = "push-data"
    DETOUR = "detour"
    BACKPRESSURE = "back-pressure"


class RouterInterface:
    """One outgoing interface (toward a single neighbour)."""

    def __init__(self, sim: Simulator, link: SimLink, config: ChunkSimConfig):
        self.sim = sim
        self.link = link
        self.config = config
        self.anticipated = RateEstimator(window=config.ti)
        self.custody = CustodyStore(config.custody_bytes)
        self._custody_queue: Deque[DataChunk] = deque()
        #: Flow ids seen recently (flow -> last time), for fair-share
        #: estimates in back-pressure notifications.
        self._flows_seen = {}

    @property
    def neighbor(self):
        return self.link.dst

    # ------------------------------------------------------------------
    # Eq. 1 bookkeeping
    # ------------------------------------------------------------------
    def anticipate(self, data_bits: float) -> None:
        """Record that *data_bits* are expected through this interface.

        Called when the router forwards a request upstream whose data
        will come back out through this interface.
        """
        self.anticipated.record(self.sim.now, data_bits)

    def anticipated_bps(self) -> float:
        """The anticipated rate ``r_a`` for the next interval."""
        return self.anticipated.rate(self.sim.now)

    # ------------------------------------------------------------------
    # Phase machine
    # ------------------------------------------------------------------
    def phase(self) -> Phase:
        if len(self._custody_queue) > 0:
            return Phase.BACKPRESSURE
        if self.is_congested():
            return Phase.DETOUR
        return Phase.PUSH

    def is_congested(self) -> bool:
        """True when the interface should not take more line load."""
        if self.link.queue_bytes >= self.config.high_watermark_bytes:
            return True
        return self.anticipated_bps() > self.config.rho * self.link.rate_bps

    def can_accept(self, size_bytes: int) -> bool:
        """Room on the line without overtaking custody chunks."""
        if self._custody_queue:
            return False
        return (
            self.link.queue_bytes + size_bytes <= self.config.high_watermark_bytes
        )

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def enqueue(self, chunk: DataChunk) -> bool:
        self.note_flow(chunk.flow_id)
        return self.link.send(chunk)

    def take_custody(self, chunk: DataChunk) -> bool:
        """Store *chunk* until the line drains; False when full."""
        if not self.custody.accept(chunk, chunk.size_bytes):
            return False
        self._custody_queue.append(chunk)
        self.note_flow(chunk.flow_id)
        return True

    def drain_custody(self) -> Optional[DataChunk]:
        """Move one custody chunk to the line if there is room."""
        if not self._custody_queue:
            return None
        if self.link.queue_bytes > self.config.low_watermark_bytes:
            return None
        released = self.custody.release()
        if released is None:
            return None
        chunk = self._custody_queue.popleft()
        self.link.send(chunk)
        return chunk

    @property
    def custody_backlog(self) -> int:
        return len(self._custody_queue)

    # ------------------------------------------------------------------
    # Flow accounting for back-pressure fair shares
    # ------------------------------------------------------------------
    def note_flow(self, flow_id: int) -> None:
        self._flows_seen[flow_id] = self.sim.now

    def active_flow_count(self) -> int:
        horizon = self.sim.now - 2 * self.config.ti
        stale = [fid for fid, t in self._flows_seen.items() if t < horizon]
        for fid in stale:
            del self._flows_seen[fid]
        return max(len(self._flows_seen), 1)

    def fair_share_bps(self) -> float:
        """Per-flow share this interface can sustain (for BP signals)."""
        return self.link.rate_bps / self.active_flow_count()

    def expected_chunk_bits(self) -> float:
        return self.config.chunk_bytes * BITS_PER_BYTE
