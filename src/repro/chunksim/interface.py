"""Router interface: anticipated-rate estimation and the phase machine.

Each outgoing interface of an INRPP router tracks the *anticipated
rate* ``r_a`` — the data it expects to have to forward in the next
interval ``Ti``, inferred from the requests the router forwarded
upstream (Eq. 1 of the paper) — and exposes the three-phase state:

- **push-data** while ``r_a < ρ·r`` and the line queue is shallow;
- **detour** when demand is about to exceed supply;
- **back-pressure** once chunks sit in the interface's custody queue.

The custody queue is the in-network storage of the paper: chunks that
could be neither forwarded nor detoured wait here (FIFO) and drain
back into the line as soon as the queue falls below the low watermark.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional

from repro.cache.custody import CustodyStore
from repro.chunksim.config import ChunkSimConfig
from repro.chunksim.engine import Simulator
from repro.chunksim.link import SimLink
from repro.chunksim.messages import DataChunk
from repro.metrics.timeseries import RateEstimator
from repro.units import BITS_PER_BYTE


class Phase(enum.Enum):
    PUSH = "push-data"
    DETOUR = "detour"
    BACKPRESSURE = "back-pressure"


class RouterInterface:
    """One outgoing interface (toward a single neighbour)."""

    def __init__(self, sim: Simulator, link: SimLink, config: ChunkSimConfig):
        self.sim = sim
        self.link = link
        self.config = config
        self.anticipated = RateEstimator(window=config.ti)
        self.custody = CustodyStore(config.custody_bytes)
        #: The neighbour this interface points at (plain attribute:
        #: read in every forward/pump decision).
        self.neighbor = link.dst
        self._custody_queue: Deque[DataChunk] = deque()
        #: Flow ids seen recently (flow -> last time), for fair-share
        #: estimates in back-pressure notifications.
        self._flows_seen = {}
        # Hot-path constants: the config exposes these as computed
        # properties, which is too slow for per-chunk decisions.
        self._high_wm_bytes = config.high_watermark_bytes
        self._low_wm_bytes = config.low_watermark_bytes
        self._rho_rate = config.rho * link.rate_bps
        self._flow_horizon = 2 * config.ti
        # The anticipated rate and the stale-flow prune are pure
        # functions of the clock between records, so each is computed
        # at most once per simulated instant.
        self._rate_cache = 0.0
        self._rate_cache_at = -1.0
        self._pruned_at = -1.0

    # ------------------------------------------------------------------
    # Eq. 1 bookkeeping
    # ------------------------------------------------------------------
    def anticipate(self, data_bits: float) -> None:
        """Record that *data_bits* are expected through this interface.

        Called when the router forwards a request upstream whose data
        will come back out through this interface.
        """
        self.anticipated.record(self.sim.now, data_bits)
        self._rate_cache_at = -1.0

    def anticipated_bps(self) -> float:
        """The anticipated rate ``r_a`` for the next interval."""
        now = self.sim.now
        if now != self._rate_cache_at:
            self._rate_cache = self.anticipated.rate(now)
            self._rate_cache_at = now
        return self._rate_cache

    # ------------------------------------------------------------------
    # Phase machine
    # ------------------------------------------------------------------
    def phase(self) -> Phase:
        if len(self._custody_queue) > 0:
            return Phase.BACKPRESSURE
        if self.is_congested():
            return Phase.DETOUR
        return Phase.PUSH

    def is_congested(self) -> bool:
        """True when the interface should not take more line load."""
        if self.link.queue_bytes >= self._high_wm_bytes:
            return True
        return self.anticipated_bps() > self._rho_rate

    def can_accept(self, size_bytes: int) -> bool:
        """Room on the line without overtaking custody chunks."""
        if self._custody_queue:
            return False
        return self.link.queue_bytes + size_bytes <= self._high_wm_bytes

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def enqueue(self, chunk: DataChunk) -> bool:
        self.note_flow(chunk.flow_id)
        return self.link.send(chunk)

    def take_custody(self, chunk: DataChunk) -> bool:
        """Store *chunk* until the line drains; False when full."""
        if not self.custody.accept(chunk, chunk.size_bytes):
            return False
        self._custody_queue.append(chunk)
        self.note_flow(chunk.flow_id)
        return True

    def drain_custody(self) -> Optional[DataChunk]:
        """Move one custody chunk to the line if there is room."""
        if not self._custody_queue:
            return None
        if self.link.queue_bytes > self._low_wm_bytes:
            return None
        released = self.custody.release()
        if released is None:
            return None
        chunk = self._custody_queue.popleft()
        self.link.send(chunk)
        return chunk

    @property
    def custody_backlog(self) -> int:
        return len(self._custody_queue)

    # ------------------------------------------------------------------
    # Flow accounting for back-pressure fair shares
    # ------------------------------------------------------------------
    def note_flow(self, flow_id: int) -> None:
        self._flows_seen[flow_id] = self.sim.now

    def active_flow_count(self) -> int:
        # Prune once per instant: between same-instant calls entries
        # can only be added or refreshed at ``now`` (never made stale),
        # so skipping the re-scan returns exactly the same count.
        now = self.sim.now
        if now != self._pruned_at:
            horizon = now - self._flow_horizon
            flows = self._flows_seen
            stale = [fid for fid, t in flows.items() if t < horizon]
            for fid in stale:
                del flows[fid]
            self._pruned_at = now
        return max(len(self._flows_seen), 1)

    def fair_share_bps(self) -> float:
        """Per-flow share this interface can sustain (for BP signals)."""
        return self.link.rate_bps / self.active_flow_count()

    def expected_chunk_bits(self) -> float:
        return self.config.chunk_bytes * BITS_PER_BYTE
