"""Wire messages of the chunk-level simulator.

The request format follows the paper exactly: ``⟨Nc, ACKc, Ac⟩`` —
next chunk requested, cumulative acknowledgement, and the anticipation
horizon (the last chunk the application announces it will want soon).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.topology.graph import Node

_serial = itertools.count()


@dataclass(slots=True)
class Request:
    """Receiver-driven request packet ``⟨Nc, ACKc, Ac⟩``."""

    flow_id: int
    #: Nc — the next chunk the application requests.
    next_chunk: int
    #: ACKc — highest in-order chunk received so far (-1 before any).
    ack: int
    #: Ac — last anticipated chunk (sender may push up to this).
    anticipate_to: int
    #: Routing endpoints: requests travel receiver -> sender.
    receiver: Node = None
    sender: Node = None
    size_bytes: int = 100
    serial: int = field(default_factory=lambda: next(_serial))


@dataclass(slots=True)
class DataChunk:
    """One named content chunk travelling sender -> receiver."""

    flow_id: int
    chunk_id: int
    size_bytes: int
    receiver: Node = None
    sender: Node = None
    #: True when the chunk was pushed ahead of an explicit request.
    anticipated: bool = False
    #: Remaining forced hops of a detour tunnel (spoofed next hops).
    tunnel: Tuple[Node, ...] = ()
    #: The node that last forwarded this chunk (for back-pressure).
    prev_hop: Node = None
    #: Number of detour re-routes this chunk experienced.
    detours: int = 0
    hops: int = 0
    serial: int = field(default_factory=lambda: next(_serial))


@dataclass(slots=True)
class Backpressure:
    """Hop-by-hop back-pressure notification.

    Sent by a congested node to its one-hop upstream neighbour when a
    chunk had to be taken into custody; carries the rate the congested
    interface can sustain for the flow so the upstream (ultimately the
    sender) can enter the closed-loop mode.
    """

    flow_id: int
    #: The congested link, oriented (congested node, its next hop).
    congested_link: Tuple[Node, Node]
    #: Rate the sender should fall back to (bits/s).
    allowed_bps: float
    #: Originating (congested) node.
    origin: Node = None
    #: The flow's sender, for hop-by-hop relaying toward it.
    sender: Node = None
    size_bytes: int = 64
    serial: int = field(default_factory=lambda: next(_serial))


@dataclass(slots=True)
class Gossip:
    """Periodic one-hop neighbour state exchange (Section 3.3 (i)).

    A router advertises, for each of its outgoing interfaces, the
    current backlog so neighbours can make informed detour decisions.
    """

    origin: Node
    #: next-hop -> queued bytes on the interface toward it.
    backlog_bytes: dict = field(default_factory=dict)
    size_bytes: int = 64
    serial: int = field(default_factory=lambda: next(_serial))
