"""Chunk-level discrete-event simulation of the INRPP protocol.

This package implements the protocol machinery of Section 3 of the
paper at chunk granularity:

- receivers request named chunks with ``⟨Nc, ACKc, Ac⟩`` and adapt
  their request rate to the incoming data rate;
- senders *push* data open loop up to the anticipation horizon,
  processor-sharing their access link among flows, and fall back to a
  closed 1:1 request/data loop when back-pressured;
- routers estimate the anticipated rate of every outgoing interface
  from the requests they forward upstream (Eq. 1), and move each
  interface between the push-data, detour and back-pressure phases;
- congested interfaces first *detour* chunks through alternative
  sub-paths (tunnelled via spoofed next hops), then take chunks into
  *custody* and signal the one-hop upstream neighbour to slow down;
- an AIMD baseline (drop-tail queues, e2e window halving on loss)
  reproduces the e2e flow-control side of Fig. 3.
"""

from repro.chunksim.config import ChunkSimConfig
from repro.chunksim.engine import Simulator
from repro.chunksim.messages import Backpressure, DataChunk, Request
from repro.chunksim.link import SimLink
from repro.chunksim.network import ChunkNetwork, FlowReport, NetworkReport

__all__ = [
    "ChunkSimConfig",
    "Simulator",
    "Request",
    "DataChunk",
    "Backpressure",
    "SimLink",
    "ChunkNetwork",
    "FlowReport",
    "NetworkReport",
]
