"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors (``TypeError``, ``KeyError`` and friends are
still allowed to escape where they indicate caller bugs).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class TopologyError(ReproError):
    """A topology operation failed (unknown node, duplicate link, ...)."""


class RoutingError(ReproError):
    """A routing computation failed (no path, invalid path, ...)."""


class NoPathError(RoutingError):
    """No path exists between the requested endpoints."""

    def __init__(self, source, destination, detail: str = ""):
        self.source = source
        self.destination = destination
        message = f"no path from {source!r} to {destination!r}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class SimulationError(ReproError):
    """A simulator reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload generator was asked for something it cannot produce."""


class CacheError(ReproError):
    """A cache/custody-store operation failed."""


class AnalysisError(ReproError):
    """An experiment driver could not produce its result."""
