"""Event-driven flow-level simulator.

Implements the standard fluid flow-level simulation loop: the rate
vector is recomputed at every flow arrival and departure; between
events rates are constant, so deliveries and completion times are
exact integrals.

Two cores implement the loop:

- the default **incremental** core keeps the next departure of every
  flow in a lazy-invalidation heap (the tombstone pattern of
  :mod:`repro.chunksim.engine`: a stale entry is skipped when popped,
  never searched for), syncs each flow's delivered bits only when its
  rate actually changes, and — for strategies whose sharing model is
  e2e max-min — recomputes rates only for the connected component
  dirtied by the event, via
  :class:`repro.flowsim.allocation.IncrementalMaxMin`.  Same-instant
  arrivals and departures are batched into a single recompute.  The
  per-event cost is O(affected component · log flows) instead of
  O(all active flows), which is what makes 100k-flow load sweeps
  tractable.
- the **reference** core is the original O(active)-per-event loop,
  kept as the semantic baseline: equivalence tests assert both cores
  produce the same :class:`SimulationResult` (within float tolerance)
  and ``benchmarks/bench_flowsim.py`` measures the speedup against it.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.flowsim.flow import ActiveFlow, FlowRecord, stretch_of
from repro.flowsim.strategies import RoutingStrategy
from repro.metrics.timeseries import TimeWeightedMean
from repro.routing.paths import cached_path_links
from repro.topology.graph import Topology
from repro.workloads.traffic import FlowSpec

_EPS = 1e-9

_CORES = ("auto", "incremental", "vectorized", "reference")


@dataclass
class SimulationResult:
    """Aggregate outcome of one flow-level simulation run."""

    records: List[FlowRecord]
    #: Time-weighted mean of (aggregate delivered rate / offered demand).
    network_throughput: float
    #: Time-weighted aggregate delivered rate in bits/s.
    mean_delivered_bps: float
    #: Time-weighted aggregate offered demand in bits/s.
    mean_offered_bps: float
    duration: float
    allocations: int
    unfinished: int = 0
    total_switches: int = 0
    #: Recomputes the adaptive ``core="auto"`` ran as full refills.
    full_refills: int = 0
    #: Worst incremental-vs-scratch rate deviation observed when
    #: ``verify_allocator=True`` (None when verification did not run).
    max_verify_deviation: Optional[float] = None

    @property
    def completed_records(self) -> List[FlowRecord]:
        return [record for record in self.records if record.completed]

    def mean_fct(self) -> Optional[float]:
        """Mean flow completion time over completed flows."""
        fcts = [record.fct for record in self.records if record.completed]
        if not fcts:
            return None
        return sum(fcts) / len(fcts)

    def stretch_samples(self, include_unfinished: bool = False) -> List[float]:
        """Per-flow bit-weighted stretch values (completed flows).

        A flow truncated by the horizon has a stretch computed over a
        partial delivery, so unfinished flows are excluded from the
        Fig. 4b distribution by default; pass
        ``include_unfinished=True`` to also sample unfinished flows
        that delivered at least one bit.
        """
        return [
            record.stretch
            for record in self.records
            if record.completed
            or (include_unfinished and record.delivered_bits > 0)
        ]


class _FullRecompute:
    """Allocation adapter calling ``strategy.allocate`` on the whole
    population every recompute (works for any strategy, e.g. INRP whose
    detour decisions are global)."""

    incremental = False

    def __init__(self, strategy: RoutingStrategy):
        self._strategy = strategy
        self._flows: Dict[int, Tuple[tuple, float]] = {}

    def add(self, flow_id: int, path: tuple, demand: float) -> None:
        self._flows[flow_id] = (path, demand)

    def remove(self, flow_id: int) -> None:
        del self._flows[flow_id]

    def recompute(self, full: bool = False):
        outcome = self._strategy.allocate(self._flows)
        return outcome.rates, outcome.splits, outcome.switches


class _IncrementalRecompute:
    """Allocation adapter over an incremental allocator
    (:class:`IncrementalMaxMin` or :class:`IncrementalInrp`): only the
    dirty component is re-filled; untouched flows keep their rates (and
    their departure-heap entries stay valid).  Multipath allocators
    (``needs_paths``) additionally return per-path splits for the
    changed flows, which the event loop carries into ``_set_rate``."""

    incremental = True

    def __init__(self, allocator):
        self._allocator = allocator
        self._multipath = getattr(allocator, "needs_paths", False)

    def add(self, flow_id: int, path: tuple, demand: float) -> None:
        if self._multipath:
            self._allocator.add_flow(flow_id, tuple(path), demand)
        else:
            self._allocator.add_flow(
                flow_id, cached_path_links(tuple(path)), demand
            )

    def remove(self, flow_id: int) -> None:
        self._allocator.remove_flow(flow_id)

    def recompute(self, full: bool = False):
        if self._multipath:
            return self._allocator.recompute(full=full)
        return self._allocator.recompute(full=full), None, 0

    def component_size(self) -> int:
        """Dirty-component size by BFS alone — no re-fill."""
        return self._allocator.dirty_component_size()


class _AdaptiveCorePolicy:
    """Decides when ``core="auto"`` falls back to full refills.

    Dirty-component search pays off only while components are small
    relative to the active set.  In deep overload the population
    snowballs into one spanning component: every recompute touches
    everything and the component BFS plus subset copies are pure
    overhead (measured ~0.8x of the reference loop).  The policy
    watches the fraction of active flows each incremental recompute
    returned; after ``patience`` consecutive recomputes above
    ``threshold`` (with at least ``min_active`` flows active, so tiny
    populations never flap) it switches to full refills, then probes
    the dirty-component size by BFS alone (no fill, so probing costs a
    component search, not a wasted spanning re-fill) every
    ``probe_every``-th event to notice when components have shrunk
    again.
    """

    def __init__(
        self,
        threshold: float = 0.5,
        patience: int = 3,
        probe_every: int = 16,
        min_active: int = 64,
    ):
        self.threshold = threshold
        self.patience = patience
        self.probe_every = probe_every
        self.min_active = min_active
        self.full_refills = 0
        self._streak = 0
        self._full_mode = False
        self._since_probe = 0

    def decide(self, measure, active: int) -> bool:
        """Should the next recompute be a full refill?

        ``measure`` is a zero-argument callable returning the current
        dirty-component size (BFS only); it is consulted on full-mode
        probe events, so its cost is amortised over ``probe_every``
        refills.
        """
        if not self._full_mode:
            return False
        self._since_probe += 1
        if self._since_probe >= self.probe_every:
            self._since_probe = 0
            if active < self.min_active or measure() <= self.threshold * active:
                self._full_mode = False
                self._streak = 0
                return False
        return True

    def observe(self, changed: int, active: int, was_full: bool) -> None:
        """Feed back what the recompute actually touched."""
        if was_full:
            self.full_refills += 1
            return
        if active >= self.min_active and changed > self.threshold * active:
            self._streak += 1
            if self._streak >= self.patience:
                self._full_mode = True
                self._since_probe = 0
        else:
            self._streak = 0


class FlowLevelSimulator:
    """Run a schedule of :class:`FlowSpec` under a routing strategy.

    Parameters
    ----------
    horizon:
        Hard stop (seconds).  Flows completing exactly at the horizon
        instant count as completed; flows still active are reported as
        unfinished with their partial delivery.
    core:
        ``"incremental"`` (departure heap + dirty-component
        allocation), ``"vectorized"`` (the same machinery with the
        progressive-filling rounds run by the CSR kernel of
        :mod:`repro.flowsim.kernel`), ``"reference"`` (the original
        full-rescan loop) or ``"auto"`` (the default: the incremental
        machinery plus an adaptive fallback to full refills while the
        dirty component keeps spanning the active set — the
        deep-overload regime where pure dirty-component search is
        slower than refilling).  All cores produce the same
        :class:`SimulationResult` up to float tolerance.
    verify_allocator:
        When the strategy supports incremental allocation, re-check
        every incremental recompute against from-scratch
        :func:`~repro.flowsim.allocation.max_min_allocation` (slow;
        used by benchmarks and tests).
    adaptive_threshold, adaptive_patience, adaptive_probe_every,
    adaptive_min_active:
        Knobs of the ``core="auto"`` fallback policy
        (:class:`_AdaptiveCorePolicy`): switch to full refills after
        ``adaptive_patience`` consecutive recomputes touching more than
        ``adaptive_threshold`` of the active set (ignored below
        ``adaptive_min_active`` flows), and probe the component size
        every ``adaptive_probe_every``-th event while in full mode.
        Defaults match the previously hard-coded values; the bench
        harness sweeps them.
    """

    def __init__(
        self,
        topology: Topology,
        strategy: RoutingStrategy,
        specs: Sequence[FlowSpec],
        horizon: Optional[float] = None,
        core: str = "auto",
        verify_allocator: bool = False,
        adaptive_threshold: float = 0.5,
        adaptive_patience: int = 3,
        adaptive_probe_every: int = 16,
        adaptive_min_active: int = 64,
    ):
        if horizon is not None and horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        if core not in _CORES:
            raise ConfigurationError(
                f"unknown core {core!r}; expected one of {', '.join(_CORES)}"
            )
        if not 0.0 < adaptive_threshold <= 1.0:
            raise ConfigurationError(
                f"adaptive_threshold must be in (0, 1], got {adaptive_threshold}"
            )
        if adaptive_patience < 1 or adaptive_probe_every < 1:
            raise ConfigurationError(
                "adaptive_patience and adaptive_probe_every must be >= 1"
            )
        self.topology = topology
        self.strategy = strategy
        self.specs = sorted(specs, key=lambda spec: (spec.arrival_time, spec.flow_id))
        self.horizon = horizon
        self.core = core
        self.verify_allocator = verify_allocator
        self.adaptive_threshold = adaptive_threshold
        self.adaptive_patience = adaptive_patience
        self.adaptive_probe_every = adaptive_probe_every
        self.adaptive_min_active = adaptive_min_active

    def run(self) -> SimulationResult:
        if self.core == "reference":
            return self._run_reference()
        return self._run_incremental(adaptive=self.core == "auto")

    def _make_adapter(self):
        allocator = self.strategy.incremental_allocator(
            verify=self.verify_allocator,
            kernel="vectorized" if self.core == "vectorized" else "scalar",
        )
        if allocator is not None:
            return _IncrementalRecompute(allocator)
        return _FullRecompute(self.strategy)

    def _run_incremental(self, adaptive: bool = False) -> SimulationResult:
        active: Dict[int, ActiveFlow] = {}
        last_sync: Dict[int, float] = {}
        version: Dict[int, int] = {}
        heap: List[Tuple[float, int, int, int]] = []  # (time, seq, fid, version)
        records: List[FlowRecord] = []
        delivered_meter = TimeWeightedMean()
        offered_meter = TimeWeightedMean()
        pending = list(self.specs)
        pending.reverse()  # pop() yields earliest arrival
        adapter = self._make_adapter()
        policy = (
            _AdaptiveCorePolicy(
                threshold=self.adaptive_threshold,
                patience=self.adaptive_patience,
                probe_every=self.adaptive_probe_every,
                min_active=self.adaptive_min_active,
            )
            if adaptive and adapter.incremental
            else None
        )
        now = 0.0
        seq = 0
        allocations = 0
        total_switches = 0
        sum_rate = 0.0
        sum_demand = 0.0

        def _peek_departure() -> float:
            while heap:
                time, _, fid, ver = heap[0]
                if version.get(fid) != ver:
                    heapq.heappop(heap)  # tombstone: rate changed or flow gone
                    continue
                return time
            return math.inf

        def _sync(fid: int, flow: ActiveFlow) -> None:
            dt = now - last_sync[fid]
            if dt > 0:
                flow.record_delivery(dt)
            last_sync[fid] = now

        def _set_rate(
            fid: int, flow: ActiveFlow, rate: float, splits: List[Tuple[tuple, float]]
        ) -> None:
            nonlocal sum_rate, seq
            _sync(fid, flow)
            sum_rate += rate - flow.rate_bps
            flow.rate_bps = rate
            flow.splits = splits
            version[fid] += 1
            if rate > _EPS:
                departure = now + flow.remaining_bits / rate
                heapq.heappush(heap, (departure, seq, fid, version[fid]))
                seq += 1

        def _drop(fid: int, flow: ActiveFlow, completion: Optional[float]) -> None:
            nonlocal sum_rate, sum_demand
            active.pop(fid)
            version.pop(fid)  # invalidates any heap entries for fid
            last_sync.pop(fid)
            sum_rate -= flow.rate_bps
            sum_demand -= flow.spec.demand_bps
            adapter.remove(fid)
            records.append(self._finalize(flow, completion_time=completion))

        while pending or active:
            next_arrival = pending[-1].arrival_time if pending else math.inf
            next_departure = _peek_departure()
            next_time = min(next_arrival, next_departure)
            if self.horizon is not None:
                next_time = min(next_time, self.horizon)
            if math.isinf(next_time):
                # Active flows exist but none can make progress and no
                # arrivals remain: report them unfinished.
                break

            dt = next_time - now
            if dt < -_EPS:
                raise SimulationError("event time went backwards")
            if dt > 0:
                # The rate vector was constant over [now, next_time).
                delivered_meter.observe(next_time, sum_rate)
                offered_meter.observe(next_time, sum_demand)
            now = next_time

            # Departures due at this instant (batched; completions
            # strictly before new arrivals at the same instant).
            finished = False
            while heap:
                time, _, fid, ver = heap[0]
                if version.get(fid) != ver:
                    heapq.heappop(heap)
                    continue
                if time > now:
                    break
                heapq.heappop(heap)
                flow = active[fid]
                _sync(fid, flow)
                if flow.done:
                    _drop(fid, flow, completion=now)
                    finished = True
                    continue
                # Float residue left the flow a hair short of done:
                # re-arm its departure strictly in the future.
                version[fid] += 1
                departure = now + flow.remaining_bits / flow.rate_bps
                if departure <= now:
                    flow.remaining_bits = 0.0
                    _drop(fid, flow, completion=now)
                    finished = True
                else:
                    heapq.heappush(heap, (departure, seq, fid, version[fid]))
                    seq += 1

            if self.horizon is not None and now >= self.horizon:
                break

            arrived = False
            while pending and pending[-1].arrival_time <= now + _EPS:
                spec = pending.pop()
                path = self.strategy.route(spec.flow_id, spec.source, spec.destination)
                active[spec.flow_id] = ActiveFlow(
                    spec=spec, primary_path=path, remaining_bits=spec.size_bits
                )
                version[spec.flow_id] = 0
                last_sync[spec.flow_id] = now
                sum_demand += spec.demand_bps
                adapter.add(spec.flow_id, path, spec.demand_bps)
                arrived = True

            if (finished or arrived) and active:
                use_full = (
                    policy.decide(adapter.component_size, len(active))
                    if policy
                    else False
                )
                rates, splits_map, switches = adapter.recompute(full=use_full)
                if policy:
                    policy.observe(len(rates), len(active), use_full)
                allocations += 1
                total_switches += switches
                if adapter.incremental:
                    # Only the dirty component came back.  Multipath
                    # allocators return the new per-path splits for it;
                    # single-path strategies always carry everything on
                    # the primary.
                    for fid, rate in rates.items():
                        flow = active[fid]
                        if splits_map is None:
                            if rate != flow.rate_bps:
                                splits = (
                                    [(flow.primary_path, rate)] if rate > 0 else []
                                )
                                _set_rate(fid, flow, rate, splits)
                        else:
                            splits = [
                                (path, split_rate)
                                for path, split_rate in splits_map.get(fid, [])
                                if split_rate > 0
                            ]
                            if rate != flow.rate_bps or splits != flow.splits:
                                _set_rate(fid, flow, rate, splits)
                else:
                    for fid, flow in active.items():
                        rate = rates.get(fid, 0.0)
                        splits = [
                            (path, split_rate)
                            for path, split_rate in splits_map.get(fid, [])
                            if split_rate > 0
                        ]
                        if rate != flow.rate_bps or splits != flow.splits:
                            _set_rate(fid, flow, rate, splits)
            elif not active:
                sum_rate = 0.0  # exact reset: no accumulated float drift
                sum_demand = 0.0

        unfinished = len(active)
        for fid, flow in active.items():
            _sync(fid, flow)
            records.append(self._finalize(flow, completion_time=None))
        records.sort(key=lambda record: record.flow_id)
        max_deviation = None
        if self.verify_allocator and adapter.incremental:
            max_deviation = getattr(
                adapter._allocator, "max_verify_deviation", None
            )
        return self._result(
            records,
            delivered_meter,
            offered_meter,
            now,
            allocations,
            unfinished,
            total_switches,
            full_refills=policy.full_refills if policy else 0,
            max_verify_deviation=max_deviation,
        )

    def _run_reference(self) -> SimulationResult:
        active: Dict[int, ActiveFlow] = {}
        records: List[FlowRecord] = []
        delivered_meter = TimeWeightedMean()
        offered_meter = TimeWeightedMean()
        pending = list(self.specs)
        pending.reverse()  # pop() yields earliest arrival
        now = 0.0
        allocations = 0
        total_switches = 0

        def _recompute() -> None:
            nonlocal allocations, total_switches
            if not active:
                return
            flows = {
                fid: (flow.primary_path, flow.spec.demand_bps)
                for fid, flow in active.items()
            }
            outcome = self.strategy.allocate(flows)
            allocations += 1
            total_switches += outcome.switches
            for fid, flow in active.items():
                flow.rate_bps = outcome.rates.get(fid, 0.0)
                flow.splits = [
                    (path, rate) for path, rate in outcome.splits.get(fid, []) if rate > 0
                ]

        while pending or active:
            next_arrival = pending[-1].arrival_time if pending else math.inf
            next_departure = math.inf
            for flow in active.values():
                if flow.rate_bps > _EPS:
                    next_departure = min(
                        next_departure, now + flow.remaining_bits / flow.rate_bps
                    )
            next_time = min(next_arrival, next_departure)
            if self.horizon is not None:
                next_time = min(next_time, self.horizon)
            if math.isinf(next_time):
                # Active flows exist but none can make progress and no
                # arrivals remain: report them unfinished.
                break

            dt = next_time - now
            if dt < -_EPS:
                raise SimulationError("event time went backwards")
            if dt > 0:
                # The rate vector was constant over [now, next_time).
                delivered = sum(flow.rate_bps for flow in active.values())
                offered = sum(flow.spec.demand_bps for flow in active.values())
                delivered_meter.observe(next_time, delivered)
                offered_meter.observe(next_time, offered)
                for flow in active.values():
                    flow.record_delivery(dt)
            now = next_time

            # Completions strictly before new arrivals at the same
            # instant — including at the horizon instant itself, so a
            # flow finishing exactly at t == horizon counts completed.
            finished = [fid for fid, flow in active.items() if flow.done]
            for fid in finished:
                flow = active.pop(fid)
                records.append(self._finalize(flow, completion_time=now))

            if self.horizon is not None and now >= self.horizon:
                break

            arrived = False
            while pending and pending[-1].arrival_time <= now + _EPS:
                spec = pending.pop()
                path = self.strategy.route(spec.flow_id, spec.source, spec.destination)
                active[spec.flow_id] = ActiveFlow(
                    spec=spec, primary_path=path, remaining_bits=spec.size_bits
                )
                arrived = True

            if finished or arrived:
                _recompute()

        unfinished = len(active)
        for flow in active.values():
            records.append(self._finalize(flow, completion_time=None))
        records.sort(key=lambda record: record.flow_id)
        return self._result(
            records,
            delivered_meter,
            offered_meter,
            now,
            allocations,
            unfinished,
            total_switches,
        )

    @staticmethod
    def _result(
        records: List[FlowRecord],
        delivered_meter: TimeWeightedMean,
        offered_meter: TimeWeightedMean,
        now: float,
        allocations: int,
        unfinished: int,
        total_switches: int,
        full_refills: int = 0,
        max_verify_deviation: Optional[float] = None,
    ) -> SimulationResult:
        offered_mean = offered_meter.mean
        throughput = (
            delivered_meter.mean / offered_mean if offered_mean > 0 else 0.0
        )
        return SimulationResult(
            records=records,
            network_throughput=throughput,
            mean_delivered_bps=delivered_meter.mean,
            mean_offered_bps=offered_mean,
            duration=now,
            allocations=allocations,
            unfinished=unfinished,
            total_switches=total_switches,
            full_refills=full_refills,
            max_verify_deviation=max_verify_deviation,
        )

    @staticmethod
    def _finalize(flow: ActiveFlow, completion_time: Optional[float]) -> FlowRecord:
        delivered = flow.spec.size_bits - max(flow.remaining_bits, 0.0)
        return FlowRecord(
            flow_id=flow.spec.flow_id,
            source=flow.spec.source,
            destination=flow.spec.destination,
            size_bits=flow.spec.size_bits,
            arrival_time=flow.spec.arrival_time,
            completion_time=completion_time,
            delivered_bits=delivered,
            stretch=stretch_of(flow),
        )
