"""Event-driven flow-level simulator.

Implements the standard fluid flow-level simulation loop: the rate
vector is recomputed by the strategy's allocator at every flow arrival
and departure; between events rates are constant, so deliveries and
completion times are exact integrals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.flowsim.flow import ActiveFlow, FlowRecord, stretch_of
from repro.flowsim.strategies import RoutingStrategy
from repro.metrics.timeseries import TimeWeightedMean
from repro.topology.graph import Topology
from repro.workloads.traffic import FlowSpec

_EPS = 1e-9


@dataclass
class SimulationResult:
    """Aggregate outcome of one flow-level simulation run."""

    records: List[FlowRecord]
    #: Time-weighted mean of (aggregate delivered rate / offered demand).
    network_throughput: float
    #: Time-weighted aggregate delivered rate in bits/s.
    mean_delivered_bps: float
    #: Time-weighted aggregate offered demand in bits/s.
    mean_offered_bps: float
    duration: float
    allocations: int
    unfinished: int = 0
    total_switches: int = 0

    @property
    def completed_records(self) -> List[FlowRecord]:
        return [record for record in self.records if record.completed]

    def mean_fct(self) -> Optional[float]:
        """Mean flow completion time over completed flows."""
        fcts = [record.fct for record in self.records if record.completed]
        if not fcts:
            return None
        return sum(fcts) / len(fcts)

    def stretch_samples(self) -> List[float]:
        """Per-flow bit-weighted stretch values (completed flows)."""
        return [record.stretch for record in self.records if record.delivered_bits > 0]


class FlowLevelSimulator:
    """Run a schedule of :class:`FlowSpec` under a routing strategy.

    Parameters
    ----------
    horizon:
        Hard stop (seconds).  Flows still active then are reported as
        unfinished with their partial delivery.
    """

    def __init__(
        self,
        topology: Topology,
        strategy: RoutingStrategy,
        specs: Sequence[FlowSpec],
        horizon: Optional[float] = None,
    ):
        if horizon is not None and horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        self.topology = topology
        self.strategy = strategy
        self.specs = sorted(specs, key=lambda spec: (spec.arrival_time, spec.flow_id))
        self.horizon = horizon

    def run(self) -> SimulationResult:
        active: Dict[int, ActiveFlow] = {}
        records: List[FlowRecord] = []
        delivered_meter = TimeWeightedMean()
        offered_meter = TimeWeightedMean()
        pending = list(self.specs)
        pending.reverse()  # pop() yields earliest arrival
        now = 0.0
        allocations = 0
        total_switches = 0

        def _recompute() -> None:
            nonlocal allocations, total_switches
            if not active:
                return
            flows = {
                fid: (flow.primary_path, flow.spec.demand_bps)
                for fid, flow in active.items()
            }
            outcome = self.strategy.allocate(flows)
            allocations += 1
            total_switches += outcome.switches
            for fid, flow in active.items():
                flow.rate_bps = outcome.rates.get(fid, 0.0)
                flow.splits = [
                    (path, rate) for path, rate in outcome.splits.get(fid, []) if rate > 0
                ]

        while pending or active:
            next_arrival = pending[-1].arrival_time if pending else math.inf
            next_departure = math.inf
            for flow in active.values():
                if flow.rate_bps > _EPS:
                    next_departure = min(
                        next_departure, now + flow.remaining_bits / flow.rate_bps
                    )
            next_time = min(next_arrival, next_departure)
            if self.horizon is not None:
                next_time = min(next_time, self.horizon)
            if math.isinf(next_time):
                # Active flows exist but none can make progress and no
                # arrivals remain: report them unfinished.
                break

            dt = next_time - now
            if dt < -_EPS:
                raise SimulationError("event time went backwards")
            if dt > 0:
                # The rate vector was constant over [now, next_time).
                delivered = sum(flow.rate_bps for flow in active.values())
                offered = sum(flow.spec.demand_bps for flow in active.values())
                delivered_meter.observe(next_time, delivered)
                offered_meter.observe(next_time, offered)
                for flow in active.values():
                    flow.record_delivery(dt)
            now = next_time

            if self.horizon is not None and now >= self.horizon:
                break

            # Completions strictly before new arrivals at the same instant.
            finished = [fid for fid, flow in active.items() if flow.done]
            for fid in finished:
                flow = active.pop(fid)
                records.append(self._finalize(flow, completion_time=now))

            arrived = False
            while pending and pending[-1].arrival_time <= now + _EPS:
                spec = pending.pop()
                path = self.strategy.route(spec.flow_id, spec.source, spec.destination)
                active[spec.flow_id] = ActiveFlow(
                    spec=spec, primary_path=path, remaining_bits=spec.size_bits
                )
                arrived = True

            if finished or arrived:
                _recompute()

        unfinished = len(active)
        for flow in active.values():
            records.append(self._finalize(flow, completion_time=None))
        records.sort(key=lambda record: record.flow_id)

        offered_mean = offered_meter.mean
        throughput = (
            delivered_meter.mean / offered_mean if offered_mean > 0 else 0.0
        )
        return SimulationResult(
            records=records,
            network_throughput=throughput,
            mean_delivered_bps=delivered_meter.mean,
            mean_offered_bps=offered_mean,
            duration=now,
            allocations=allocations,
            unfinished=unfinished,
            total_switches=total_switches,
        )

    @staticmethod
    def _finalize(flow: ActiveFlow, completion_time: Optional[float]) -> FlowRecord:
        delivered = flow.spec.size_bits - max(flow.remaining_bits, 0.0)
        return FlowRecord(
            flow_id=flow.spec.flow_id,
            source=flow.spec.source,
            destination=flow.spec.destination,
            size_bits=flow.spec.size_bits,
            arrival_time=flow.spec.arrival_time,
            completion_time=completion_time,
            delivered_bits=delivered,
            stretch=stretch_of(flow),
        )
