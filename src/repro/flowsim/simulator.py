"""Event-driven flow-level simulator.

Implements the standard fluid flow-level simulation loop: the rate
vector is recomputed at every flow arrival and departure; between
events rates are constant, so deliveries and completion times are
exact integrals.

Two cores implement the loop:

- the default **incremental** core keeps the next departure of every
  flow in a lazy-invalidation heap (the tombstone pattern of
  :mod:`repro.chunksim.engine`: a stale entry is skipped when popped,
  never searched for), syncs each flow's delivered bits only when its
  rate actually changes, and — for strategies whose sharing model is
  e2e max-min — recomputes rates only for the connected component
  dirtied by the event, via
  :class:`repro.flowsim.allocation.IncrementalMaxMin`.  Same-instant
  arrivals and departures are batched into a single recompute.  The
  per-event cost is O(affected component · log flows) instead of
  O(all active flows), which is what makes 100k-flow load sweeps
  tractable.
- the **reference** core is the original O(active)-per-event loop,
  kept as the semantic baseline: equivalence tests assert both cores
  produce the same :class:`SimulationResult` (within float tolerance)
  and ``benchmarks/bench_flowsim.py`` measures the speedup against it.

Both cores follow the **streaming contract**: flow specs are pulled
one at a time from any arrival-ordered iterator (a materialized list
works too and is sorted defensively), and every finalized flow goes to
a pluggable :class:`~repro.flowsim.sinks.ResultSink` instead of an
append-only record list.  With
:class:`~repro.flowsim.sinks.StreamingSink` plus
:meth:`repro.workloads.traffic.FlowWorkload.iter_specs` the resident
state is just the active flows and O(1) aggregates — million-flow runs
complete in bounded memory.  The event core additionally supports
pausing into a picklable :class:`SimulatorCheckpoint` and resuming
later (``run(pause_at=...)`` / ``run(resume_from=...)``).
"""

from __future__ import annotations

import copy
import heapq
import math
import pickle
from collections.abc import Sequence as _SequenceABC
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ConfigurationError, SimulationError
from repro.flowsim.flow import ActiveFlow, FlowRecord, stretch_of
from repro.flowsim.sinks import (
    FlowAggregates,
    MaterializingSink,
    ResultSink,
    SimulationResult,
    StreamingSink,
    make_sink,
)
from repro.flowsim.strategies import RoutingStrategy
from repro.metrics.timeseries import TimeWeightedMean
from repro.routing.paths import cached_path_links
from repro.topology.graph import Topology
from repro.workloads.traffic import FlowSpec

__all__ = [
    "FlowLevelSimulator",
    "SimulationResult",
    "SimulatorCheckpoint",
]

_EPS = 1e-9

_CORES = ("auto", "incremental", "vectorized", "reference")


class _SpecSource:
    """Pull-based arrival stream with one-spec lookahead.

    Wraps any iterator of :class:`FlowSpec` in arrival order; the loop
    peeks :attr:`next_arrival` and :meth:`pop`\\ s specs as the clock
    reaches them, so only one unarrived spec is resident at a time.
    Ordering is validated as specs stream through (an out-of-order
    spec raises instead of silently corrupting the event clock), and
    :attr:`consumed` counts the pops — the checkpoint cursor a resumed
    run fast-forwards a fresh iterator by.
    """

    __slots__ = ("_iterator", "_head", "consumed")

    def __init__(self, specs: Iterable[FlowSpec], skip: int = 0):
        self._iterator = iter(specs)
        for _ in range(skip):
            if next(self._iterator, None) is None:
                raise SimulationError(
                    f"spec stream ended while fast-forwarding {skip} "
                    "checkpointed arrivals; resume needs the same workload"
                )
        self.consumed = skip
        self._head: Optional[FlowSpec] = next(self._iterator, None)

    @property
    def exhausted(self) -> bool:
        return self._head is None

    @property
    def next_arrival(self) -> float:
        if self._head is None:
            return math.inf
        return self._head.arrival_time

    def pop(self) -> FlowSpec:
        spec = self._head
        if spec is None:
            raise SimulationError("popped an exhausted spec stream")
        self.consumed += 1
        head = next(self._iterator, None)
        if head is not None and head.arrival_time < spec.arrival_time - _EPS:
            raise SimulationError(
                "flow specs must stream in arrival order: "
                f"flow {head.flow_id} at t={head.arrival_time} after "
                f"flow {spec.flow_id} at t={spec.arrival_time}"
            )
        self._head = head
        return spec


@dataclass
class SimulatorCheckpoint:
    """Paused state of an event-core run, resumable later.

    Captures everything the loop needs to continue except the spec
    stream itself: arrivals are deterministic given the workload seed,
    so the checkpoint stores only the cursor (``specs_consumed``) and
    a resumed run fast-forwards a fresh iterator by that many specs.
    Active flows carry their delivery state (remaining bits, per-hop
    bit accounting, current rate and splits); allocator state is *not*
    stored — fluid allocations are memoryless functions of the active
    set, so the resumed run re-registers the actives (in arrival
    order, preserving INRP's order-dependent detour semantics) and the
    first recompute reproduces the paused rates.

    The whole object is picklable (:meth:`save` / :meth:`load`), so a
    long horizon can pause, leave the process, and resume elsewhere.
    """

    time: float
    specs_consumed: int
    #: Still-active flows in arrival order, synced to :attr:`time`.
    active_flows: List[ActiveFlow]
    delivered_meter: TimeWeightedMean
    offered_meter: TimeWeightedMean
    #: The run's result sink, carried so a resumed run keeps folding
    #: into the same record list / aggregates.
    sink: ResultSink
    allocations: int
    total_switches: int
    full_refills: int
    core: str
    strategy_name: str

    def save(self, path) -> None:
        """Pickle the checkpoint to *path*."""
        with open(path, "wb") as handle:
            pickle.dump(self, handle)

    @staticmethod
    def load(path) -> "SimulatorCheckpoint":
        """Unpickle a checkpoint written by :meth:`save`."""
        with open(path, "rb") as handle:
            checkpoint = pickle.load(handle)
        if not isinstance(checkpoint, SimulatorCheckpoint):
            raise SimulationError(
                f"{path} does not contain a SimulatorCheckpoint"
            )
        return checkpoint


class _FullRecompute:
    """Allocation adapter calling ``strategy.allocate`` on the whole
    population every recompute (works for any strategy, e.g. INRP whose
    detour decisions are global)."""

    incremental = False

    def __init__(self, strategy: RoutingStrategy):
        self._strategy = strategy
        self._flows: Dict[int, Tuple[tuple, float]] = {}

    def add(self, flow_id: int, path: tuple, demand: float) -> None:
        self._flows[flow_id] = (path, demand)

    def remove(self, flow_id: int) -> None:
        del self._flows[flow_id]

    def recompute(self, full: bool = False):
        outcome = self._strategy.allocate(self._flows)
        return outcome.rates, outcome.splits, outcome.switches


class _IncrementalRecompute:
    """Allocation adapter over an incremental allocator
    (:class:`IncrementalMaxMin` or :class:`IncrementalInrp`): only the
    dirty component is re-filled; untouched flows keep their rates (and
    their departure-heap entries stay valid).  Multipath allocators
    (``needs_paths``) additionally return per-path splits for the
    changed flows, which the event loop carries into ``_set_rate``."""

    incremental = True

    def __init__(self, allocator):
        self._allocator = allocator
        self._multipath = getattr(allocator, "needs_paths", False)

    def add(self, flow_id: int, path: tuple, demand: float) -> None:
        if self._multipath:
            self._allocator.add_flow(flow_id, tuple(path), demand)
        else:
            self._allocator.add_flow(
                flow_id, cached_path_links(tuple(path)), demand
            )

    def remove(self, flow_id: int) -> None:
        self._allocator.remove_flow(flow_id)

    def recompute(self, full: bool = False):
        if self._multipath:
            return self._allocator.recompute(full=full)
        return self._allocator.recompute(full=full), None, 0

    def component_size(self) -> int:
        """Dirty-component size by BFS alone — no re-fill."""
        return self._allocator.dirty_component_size()


class _AdaptiveCorePolicy:
    """Decides when ``core="auto"`` falls back to full refills.

    ``core="auto"`` always runs the vectorized CSR kernel (it is the
    fastest core at every calibrated bench point — 5.95x over the
    scalar incremental core at the SP point and outright fastest at
    the INRP overload point); what remains adaptive is *how much* each
    recompute refills.  Dirty-component search pays off only while
    components are small relative to the active set.  In deep overload
    the population snowballs into one spanning component: every
    recompute touches everything and the component search plus subset
    copies are pure overhead.  The policy watches the fraction of
    active flows each incremental recompute returned; after
    ``patience`` consecutive recomputes above ``threshold`` (with at
    least ``min_active`` flows active, so tiny populations never flap)
    it switches to full refills, then probes the dirty-component size
    (no fill, so probing costs a component search, not a wasted
    spanning re-fill) every ``probe_every``-th event to notice when
    components have shrunk again.
    """

    def __init__(
        self,
        threshold: float = 0.5,
        patience: int = 3,
        probe_every: int = 16,
        min_active: int = 64,
    ):
        self.threshold = threshold
        self.patience = patience
        self.probe_every = probe_every
        self.min_active = min_active
        self.full_refills = 0
        self._streak = 0
        self._full_mode = False
        self._since_probe = 0

    def decide(self, measure, active: int) -> bool:
        """Should the next recompute be a full refill?

        ``measure`` is a zero-argument callable returning the current
        dirty-component size (BFS only); it is consulted on full-mode
        probe events, so its cost is amortised over ``probe_every``
        refills.
        """
        if not self._full_mode:
            return False
        self._since_probe += 1
        if self._since_probe >= self.probe_every:
            self._since_probe = 0
            if active < self.min_active or measure() <= self.threshold * active:
                self._full_mode = False
                self._streak = 0
                return False
        return True

    def observe(self, changed: int, active: int, was_full: bool) -> None:
        """Feed back what the recompute actually touched."""
        if was_full:
            self.full_refills += 1
            return
        if active >= self.min_active and changed > self.threshold * active:
            self._streak += 1
            if self._streak >= self.patience:
                self._full_mode = True
                self._since_probe = 0
        else:
            self._streak = 0


class FlowLevelSimulator:
    """Run a schedule of :class:`FlowSpec` under a routing strategy.

    Parameters
    ----------
    specs:
        Either a materialized sequence (sorted defensively by arrival
        time) or any iterator yielding specs in arrival order — e.g.
        :meth:`repro.workloads.traffic.FlowWorkload.iter_specs` — which
        is consumed lazily, one lookahead spec at a time.  An iterator
        is single-use: rerunning or resuming requires a fresh one.
    horizon:
        Hard stop (seconds).  Flows completing exactly at the horizon
        instant count as completed; flows still active are reported as
        unfinished with their partial delivery.
    core:
        ``"incremental"`` (departure heap + dirty-component
        allocation, scalar solvers), ``"vectorized"`` (the same
        machinery with the progressive-filling rounds run by the CSR
        kernel of :mod:`repro.flowsim.kernel`), ``"reference"`` (the
        original full-rescan loop) or ``"auto"`` (the default: the
        vectorized kernel — fastest at every calibrated bench point —
        plus an adaptive fallback to full refills while the dirty
        component keeps spanning the active set, the deep-overload
        regime where pure dirty-component search is slower than
        refilling).  All cores produce the same
        :class:`SimulationResult` up to float tolerance.
    sink:
        Where finalized flows go: ``"materialize"`` (default; the
        historical per-flow record list), ``"streaming"``
        (:class:`~repro.flowsim.sinks.StreamingSink` — O(1) online
        aggregates, ``result.records is None``) or a
        :class:`~repro.flowsim.sinks.ResultSink` instance (single-use).
    verify_allocator:
        When the strategy supports incremental allocation, re-check
        every incremental recompute against from-scratch
        :func:`~repro.flowsim.allocation.max_min_allocation` (slow;
        used by benchmarks and tests).
    adaptive_threshold, adaptive_patience, adaptive_probe_every,
    adaptive_min_active:
        Knobs of the ``core="auto"`` fallback policy
        (:class:`_AdaptiveCorePolicy`): switch to full refills after
        ``adaptive_patience`` consecutive recomputes touching more than
        ``adaptive_threshold`` of the active set (ignored below
        ``adaptive_min_active`` flows), and probe the component size
        every ``adaptive_probe_every``-th event while in full mode.
        Defaults match the previously hard-coded values; the bench
        harness sweeps them.

    Checkpointing
    -------------
    ``run(pause_at=t)`` stops the event cores at instant ``t`` (events
    at exactly ``t`` are left for the resumed run) and returns a
    picklable :class:`SimulatorCheckpoint` instead of a result;
    ``run(resume_from=checkpoint)`` continues — on the same simulator
    (which still holds the partially-consumed stream) or on a freshly
    constructed one, whose spec iterator is fast-forwarded by the
    checkpoint cursor.  The reference core does not checkpoint.
    """

    def __init__(
        self,
        topology: Topology,
        strategy: RoutingStrategy,
        specs: Union[Iterable[FlowSpec], "Sequence[FlowSpec]"],
        horizon: Optional[float] = None,
        core: str = "auto",
        sink: Union[str, ResultSink, None] = None,
        verify_allocator: bool = False,
        adaptive_threshold: float = 0.5,
        adaptive_patience: int = 3,
        adaptive_probe_every: int = 16,
        adaptive_min_active: int = 64,
    ):
        if horizon is not None and horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        if core not in _CORES:
            raise ConfigurationError(
                f"unknown core {core!r}; expected one of {', '.join(_CORES)}"
            )
        if not 0.0 < adaptive_threshold <= 1.0:
            raise ConfigurationError(
                f"adaptive_threshold must be in (0, 1], got {adaptive_threshold}"
            )
        if adaptive_patience < 1 or adaptive_probe_every < 1:
            raise ConfigurationError(
                "adaptive_patience and adaptive_probe_every must be >= 1"
            )
        self.topology = topology
        self.strategy = strategy
        if isinstance(specs, _SequenceABC):
            #: Materialized schedule (None when streaming from an iterator).
            self.specs: Optional[List[FlowSpec]] = sorted(
                specs, key=lambda spec: (spec.arrival_time, spec.flow_id)
            )
            self._spec_input: Optional[Iterable[FlowSpec]] = None
        else:
            self.specs = None
            self._spec_input = specs
        self._stream_started = False
        self._paused_source: Optional[_SpecSource] = None
        self.horizon = horizon
        self.core = core
        self.sink = sink
        self.verify_allocator = verify_allocator
        self.adaptive_threshold = adaptive_threshold
        self.adaptive_patience = adaptive_patience
        self.adaptive_probe_every = adaptive_probe_every
        self.adaptive_min_active = adaptive_min_active
        #: Allocation kernel selected by the last ``run``/adapter build
        #: ("scalar"/"vectorized"; None for full-recompute strategies).
        self.kernel_used: Optional[str] = None

    def run(
        self,
        pause_at: Optional[float] = None,
        resume_from: Optional[SimulatorCheckpoint] = None,
    ) -> Union[SimulationResult, SimulatorCheckpoint]:
        """Run to completion (a :class:`SimulationResult`) or pause.

        With ``pause_at`` the event cores stop at that instant and
        return a :class:`SimulatorCheckpoint` — unless the run ends
        naturally first, in which case the result is returned.  With
        ``resume_from`` the run continues from a checkpoint (the
        checkpoint's sink wins over the constructor's ``sink``).
        """
        if pause_at is not None or resume_from is not None:
            if self.core == "reference":
                raise ConfigurationError(
                    "checkpointing requires an event core "
                    "('auto', 'incremental' or 'vectorized')"
                )
        if pause_at is not None and pause_at <= 0:
            raise SimulationError(
                f"pause_at must be positive, got {pause_at}"
            )
        if resume_from is not None:
            if pause_at is not None and pause_at <= resume_from.time:
                raise SimulationError(
                    f"pause_at {pause_at} is not after the checkpoint "
                    f"time {resume_from.time}"
                )
        if self.core == "reference":
            return self._run_reference()
        return self._run_incremental(
            adaptive=self.core == "auto",
            pause_at=pause_at,
            resume_from=resume_from,
        )

    def _make_adapter(self):
        # ``auto`` rides the vectorized kernel: per the committed bench
        # trajectory it is at least as fast as the scalar solvers at
        # every calibrated point (5.95x at sp-calibrated, fastest at
        # inrp-overload), so adaptivity is only about full vs component
        # refills, not about which kernel fills.
        kernel = "vectorized" if self.core in ("auto", "vectorized") else "scalar"
        allocator = self.strategy.incremental_allocator(
            verify=self.verify_allocator, kernel=kernel
        )
        if allocator is not None:
            self.kernel_used = kernel
            return _IncrementalRecompute(allocator)
        self.kernel_used = None
        return _FullRecompute(self.strategy)

    def _spec_source(self, skip: int = 0) -> _SpecSource:
        if self.specs is not None:
            return _SpecSource(self.specs, skip=skip)
        if (
            self._paused_source is not None
            and self._paused_source.consumed == skip
        ):
            source, self._paused_source = self._paused_source, None
            return source
        if self._stream_started:
            raise SimulationError(
                "streaming flow specs were already consumed; construct a "
                "new simulator (or pass a materialized list) to rerun or "
                "resume"
            )
        self._stream_started = True
        return _SpecSource(self._spec_input, skip=skip)

    def _run_incremental(
        self,
        adaptive: bool = False,
        pause_at: Optional[float] = None,
        resume_from: Optional[SimulatorCheckpoint] = None,
    ) -> Union[SimulationResult, SimulatorCheckpoint]:
        active: Dict[int, ActiveFlow] = {}
        last_sync: Dict[int, float] = {}
        version: Dict[int, int] = {}
        heap: List[Tuple[float, int, int, int]] = []  # (time, seq, fid, version)
        now = 0.0
        seq = 0
        allocations = 0
        total_switches = 0
        restored_refills = 0
        sum_rate = 0.0
        sum_demand = 0.0
        if resume_from is not None:
            # Deep-copied so one checkpoint can seed several resumes
            # (and outlive this run) without aliasing mutable state.
            checkpoint = copy.deepcopy(resume_from)
            now = checkpoint.time
            sink = checkpoint.sink
            delivered_meter = checkpoint.delivered_meter
            offered_meter = checkpoint.offered_meter
            allocations = checkpoint.allocations
            total_switches = checkpoint.total_switches
            restored_refills = checkpoint.full_refills
            source = self._spec_source(skip=checkpoint.specs_consumed)
        else:
            checkpoint = None
            sink = make_sink(self.sink)
            delivered_meter = TimeWeightedMean()
            offered_meter = TimeWeightedMean()
            source = self._spec_source()
        adapter = self._make_adapter()
        policy = (
            _AdaptiveCorePolicy(
                threshold=self.adaptive_threshold,
                patience=self.adaptive_patience,
                probe_every=self.adaptive_probe_every,
                min_active=self.adaptive_min_active,
            )
            if adaptive and adapter.incremental
            else None
        )
        if policy is not None:
            policy.full_refills = restored_refills
        if checkpoint is not None:
            # Re-register the surviving flows in arrival order (INRP's
            # fill visits flows in arrival order, so registration order
            # is semantic).  Rates and splits are restored as
            # checkpointed; the allocator starts all-dirty, so the
            # first recompute re-derives the same fixed point and
            # leaves matching rates untouched.
            for flow in checkpoint.active_flows:
                fid = flow.spec.flow_id
                active[fid] = flow
                version[fid] = 0
                last_sync[fid] = now
                sum_rate += flow.rate_bps
                sum_demand += flow.spec.demand_bps
                adapter.add(fid, flow.primary_path, flow.spec.demand_bps)
                if flow.rate_bps > _EPS:
                    departure = now + flow.remaining_bits / flow.rate_bps
                    heapq.heappush(heap, (departure, seq, fid, 0))
                    seq += 1

        def _peek_departure() -> float:
            while heap:
                time, _, fid, ver = heap[0]
                if version.get(fid) != ver:
                    heapq.heappop(heap)  # tombstone: rate changed or flow gone
                    continue
                return time
            return math.inf

        def _compact_heap() -> None:
            # Lazy invalidation leaves tombstones buried in the heap
            # until they surface; at most one entry per flow is live
            # (its current version), so when tombstones dominate the
            # heap is rebuilt from the live entries.  The trigger keeps
            # the heap O(active), which is what bounds the memory of
            # million-flow streaming runs; the rebuild is O(heap) but
            # amortised by the growth needed to re-trigger it.
            nonlocal heap
            live = [entry for entry in heap if version.get(entry[2]) == entry[3]]
            heapq.heapify(live)
            heap = live

        def _sync(fid: int, flow: ActiveFlow) -> None:
            dt = now - last_sync[fid]
            if dt > 0:
                flow.record_delivery(dt)
            last_sync[fid] = now

        def _set_rate(
            fid: int, flow: ActiveFlow, rate: float, splits: List[Tuple[tuple, float]]
        ) -> None:
            nonlocal sum_rate, seq
            _sync(fid, flow)
            sum_rate += rate - flow.rate_bps
            flow.rate_bps = rate
            flow.splits = splits
            version[fid] += 1
            if rate > _EPS:
                departure = now + flow.remaining_bits / rate
                heapq.heappush(heap, (departure, seq, fid, version[fid]))
                seq += 1

        def _drop(fid: int, flow: ActiveFlow, completion: Optional[float]) -> None:
            nonlocal sum_rate, sum_demand
            active.pop(fid)
            version.pop(fid)  # invalidates any heap entries for fid
            last_sync.pop(fid)
            sum_rate -= flow.rate_bps
            sum_demand -= flow.spec.demand_bps
            adapter.remove(fid)
            sink.consume(self._finalize(flow, completion_time=completion))

        def _pause() -> SimulatorCheckpoint:
            nonlocal now
            # Integrate the tail interval and sync every flow to the
            # pause instant; events due exactly at ``pause_at`` stay
            # queued for the resumed run, which re-arms departures from
            # the restored rates.
            if pause_at > now:
                delivered_meter.observe(pause_at, sum_rate)
                offered_meter.observe(pause_at, sum_demand)
            now = pause_at
            for fid, flow in active.items():
                _sync(fid, flow)
            ordered = sorted(
                active.values(),
                key=lambda flow: (flow.spec.arrival_time, flow.spec.flow_id),
            )
            if self.specs is None:
                self._paused_source = source
            return SimulatorCheckpoint(
                time=now,
                specs_consumed=source.consumed,
                active_flows=ordered,
                delivered_meter=delivered_meter,
                offered_meter=offered_meter,
                sink=sink,
                allocations=allocations,
                total_switches=total_switches,
                full_refills=policy.full_refills if policy else restored_refills,
                core=self.core,
                strategy_name=getattr(self.strategy, "name", "unknown"),
            )

        while not source.exhausted or active:
            next_arrival = source.next_arrival
            next_departure = _peek_departure()
            next_time = min(next_arrival, next_departure)
            if self.horizon is not None:
                next_time = min(next_time, self.horizon)
            if pause_at is not None and next_time >= pause_at:
                return _pause()
            if math.isinf(next_time):
                # Active flows exist but none can make progress and no
                # arrivals remain: report them unfinished.
                break

            dt = next_time - now
            if dt < -_EPS:
                raise SimulationError("event time went backwards")
            if dt > 0:
                # The rate vector was constant over [now, next_time).
                delivered_meter.observe(next_time, sum_rate)
                offered_meter.observe(next_time, sum_demand)
            now = next_time

            # Departures due at this instant (batched; completions
            # strictly before new arrivals at the same instant).
            finished = False
            while heap:
                time, _, fid, ver = heap[0]
                if version.get(fid) != ver:
                    heapq.heappop(heap)
                    continue
                if time > now:
                    break
                heapq.heappop(heap)
                flow = active[fid]
                _sync(fid, flow)
                if flow.done:
                    _drop(fid, flow, completion=now)
                    finished = True
                    continue
                # Float residue left the flow a hair short of done:
                # re-arm its departure strictly in the future.
                version[fid] += 1
                departure = now + flow.remaining_bits / flow.rate_bps
                if departure <= now:
                    flow.remaining_bits = 0.0
                    _drop(fid, flow, completion=now)
                    finished = True
                else:
                    heapq.heappush(heap, (departure, seq, fid, version[fid]))
                    seq += 1

            if self.horizon is not None and now >= self.horizon:
                break

            arrived = False
            while not source.exhausted and source.next_arrival <= now + _EPS:
                spec = source.pop()
                path = self.strategy.route(spec.flow_id, spec.source, spec.destination)
                active[spec.flow_id] = ActiveFlow(
                    spec=spec, primary_path=path, remaining_bits=spec.size_bits
                )
                version[spec.flow_id] = 0
                last_sync[spec.flow_id] = now
                sum_demand += spec.demand_bps
                adapter.add(spec.flow_id, path, spec.demand_bps)
                arrived = True

            if (finished or arrived) and active:
                use_full = (
                    policy.decide(adapter.component_size, len(active))
                    if policy
                    else False
                )
                rates, splits_map, switches = adapter.recompute(full=use_full)
                if policy:
                    policy.observe(len(rates), len(active), use_full)
                allocations += 1
                total_switches += switches
                if adapter.incremental:
                    # Only the dirty component came back.  Multipath
                    # allocators return the new per-path splits for it;
                    # single-path strategies always carry everything on
                    # the primary.
                    for fid, rate in rates.items():
                        flow = active[fid]
                        if splits_map is None:
                            if rate != flow.rate_bps:
                                splits = (
                                    [(flow.primary_path, rate)] if rate > 0 else []
                                )
                                _set_rate(fid, flow, rate, splits)
                        else:
                            splits = [
                                (path, split_rate)
                                for path, split_rate in splits_map.get(fid, [])
                                if split_rate > 0
                            ]
                            if rate != flow.rate_bps or splits != flow.splits:
                                _set_rate(fid, flow, rate, splits)
                else:
                    for fid, flow in active.items():
                        rate = rates.get(fid, 0.0)
                        splits = [
                            (path, split_rate)
                            for path, split_rate in splits_map.get(fid, [])
                            if split_rate > 0
                        ]
                        if rate != flow.rate_bps or splits != flow.splits:
                            _set_rate(fid, flow, rate, splits)
            elif not active:
                sum_rate = 0.0  # exact reset: no accumulated float drift
                sum_demand = 0.0

            if len(heap) > 1024 and len(heap) > 8 * len(active):
                _compact_heap()

        for fid, flow in active.items():
            _sync(fid, flow)
        max_deviation = None
        if self.verify_allocator and adapter.incremental:
            max_deviation = getattr(
                adapter._allocator, "max_verify_deviation", None
            )
        return self._finish_run(
            sink,
            active,
            delivered_meter,
            offered_meter,
            now,
            allocations,
            total_switches,
            full_refills=policy.full_refills if policy else restored_refills,
            max_verify_deviation=max_deviation,
            kernel=self.kernel_used,
        )

    def _run_reference(self) -> SimulationResult:
        active: Dict[int, ActiveFlow] = {}
        sink = make_sink(self.sink)
        delivered_meter = TimeWeightedMean()
        offered_meter = TimeWeightedMean()
        source = self._spec_source()
        now = 0.0
        allocations = 0
        total_switches = 0

        def _recompute() -> None:
            nonlocal allocations, total_switches
            if not active:
                return
            flows = {
                fid: (flow.primary_path, flow.spec.demand_bps)
                for fid, flow in active.items()
            }
            outcome = self.strategy.allocate(flows)
            allocations += 1
            total_switches += outcome.switches
            for fid, flow in active.items():
                flow.rate_bps = outcome.rates.get(fid, 0.0)
                flow.splits = [
                    (path, rate) for path, rate in outcome.splits.get(fid, []) if rate > 0
                ]

        while not source.exhausted or active:
            next_arrival = source.next_arrival
            next_departure = math.inf
            for flow in active.values():
                if flow.rate_bps > _EPS:
                    next_departure = min(
                        next_departure, now + flow.remaining_bits / flow.rate_bps
                    )
            next_time = min(next_arrival, next_departure)
            if self.horizon is not None:
                next_time = min(next_time, self.horizon)
            if math.isinf(next_time):
                # Active flows exist but none can make progress and no
                # arrivals remain: report them unfinished.
                break

            dt = next_time - now
            if dt < -_EPS:
                raise SimulationError("event time went backwards")
            if dt > 0:
                # The rate vector was constant over [now, next_time).
                delivered = sum(flow.rate_bps for flow in active.values())
                offered = sum(flow.spec.demand_bps for flow in active.values())
                delivered_meter.observe(next_time, delivered)
                offered_meter.observe(next_time, offered)
                for flow in active.values():
                    flow.record_delivery(dt)
            now = next_time

            # Completions strictly before new arrivals at the same
            # instant — including at the horizon instant itself, so a
            # flow finishing exactly at t == horizon counts completed.
            finished = [fid for fid, flow in active.items() if flow.done]
            for fid in finished:
                flow = active.pop(fid)
                sink.consume(self._finalize(flow, completion_time=now))

            if self.horizon is not None and now >= self.horizon:
                break

            arrived = False
            while not source.exhausted and source.next_arrival <= now + _EPS:
                spec = source.pop()
                path = self.strategy.route(spec.flow_id, spec.source, spec.destination)
                active[spec.flow_id] = ActiveFlow(
                    spec=spec, primary_path=path, remaining_bits=spec.size_bits
                )
                arrived = True

            if finished or arrived:
                _recompute()

        return self._finish_run(
            sink,
            active,
            delivered_meter,
            offered_meter,
            now,
            allocations,
            total_switches,
        )

    @staticmethod
    def _finish_run(
        sink: ResultSink,
        active: Dict[int, ActiveFlow],
        delivered_meter: TimeWeightedMean,
        offered_meter: TimeWeightedMean,
        now: float,
        allocations: int,
        total_switches: int,
        full_refills: int = 0,
        max_verify_deviation: Optional[float] = None,
        kernel: Optional[str] = None,
    ) -> SimulationResult:
        """Shared tail of both run loops: flows still active are
        reported unfinished (the caller has synced their deliveries),
        then the sink assembles the result."""
        for flow in active.values():
            sink.consume(
                FlowLevelSimulator._finalize(flow, completion_time=None)
            )
        offered_mean = offered_meter.mean
        throughput = (
            delivered_meter.mean / offered_mean if offered_mean > 0 else 0.0
        )
        return sink.build(
            network_throughput=throughput,
            mean_delivered_bps=delivered_meter.mean,
            mean_offered_bps=offered_mean,
            duration=now,
            allocations=allocations,
            unfinished=len(active),
            total_switches=total_switches,
            full_refills=full_refills,
            max_verify_deviation=max_verify_deviation,
            kernel=kernel,
        )

    @staticmethod
    def _finalize(flow: ActiveFlow, completion_time: Optional[float]) -> FlowRecord:
        delivered = flow.spec.size_bits - max(flow.remaining_bits, 0.0)
        return FlowRecord(
            flow_id=flow.spec.flow_id,
            source=flow.spec.source,
            destination=flow.spec.destination,
            size_bits=flow.spec.size_bits,
            arrival_time=flow.spec.arrival_time,
            completion_time=completion_time,
            delivered_bits=delivered,
            stretch=stretch_of(flow),
        )
