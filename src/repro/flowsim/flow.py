"""Flow state for the flow-level simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.routing.paths import Path
from repro.workloads.traffic import FlowSpec


@dataclass
class ActiveFlow:
    """A flow currently in the network."""

    spec: FlowSpec
    primary_path: Path
    remaining_bits: float
    rate_bps: float = 0.0
    #: Current (path, rate) split as decided by the strategy.
    splits: List[Tuple[Path, float]] = field(default_factory=list)
    #: Bits delivered so far, keyed by the hop count of the sub-path
    #: that carried them (feeds the stretch metric).
    bits_by_hops: Dict[int, float] = field(default_factory=dict)

    def record_delivery(self, dt: float) -> float:
        """Account *dt* seconds of delivery at the current split.

        Returns the bits delivered (capped at the remaining size).
        """
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        delivered = min(self.rate_bps * dt, self.remaining_bits)
        if delivered <= 0:
            return 0.0
        if len(self.splits) == 1:
            # Single-path flows (the vast majority) skip the share
            # arithmetic: everything rides one sub-path.
            path, rate = self.splits[0]
            if rate > 0:
                hops = len(path) - 1
                self.bits_by_hops[hops] = (
                    self.bits_by_hops.get(hops, 0.0) + delivered
                )
            self.remaining_bits -= delivered
            return delivered
        total_rate = sum(rate for _, rate in self.splits) or self.rate_bps
        for path, rate in self.splits:
            if rate <= 0:
                continue
            share = delivered * rate / total_rate
            hops = len(path) - 1
            self.bits_by_hops[hops] = self.bits_by_hops.get(hops, 0.0) + share
        self.remaining_bits -= delivered
        return delivered

    @property
    def done(self) -> bool:
        return self.remaining_bits <= 1e-6


@dataclass(frozen=True)
class FlowRecord:
    """Immutable record of a finished (or abandoned) flow."""

    flow_id: int
    source: object
    destination: object
    size_bits: float
    arrival_time: float
    completion_time: Optional[float]
    delivered_bits: float
    #: Bit-weighted path stretch (1.0 when everything used the primary).
    stretch: float

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time in seconds (None when unfinished)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time


def stretch_of(flow: ActiveFlow) -> float:
    """Bit-weighted stretch of *flow* against its primary path."""
    primary_hops = max(len(flow.primary_path) - 1, 1)
    total = sum(flow.bits_by_hops.values())
    if total <= 0:
        return 1.0
    weighted = sum(hops * bits for hops, bits in flow.bits_by_hops.items())
    return weighted / (total * primary_hops)
