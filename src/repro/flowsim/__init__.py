"""Flow-level simulation substrate (the paper's Fig. 4 evaluation).

The paper evaluates the push-data and detour phases of INRPP "in a
simple flow-level simulator, where flows arrive Poisson distributed",
against single shortest-path routing (SP) and ECMP.  This package
provides:

- :mod:`~repro.flowsim.allocation` — exact max-min (progressive
  filling) bandwidth allocation for single-path flows;
- :mod:`~repro.flowsim.multipath` — the INRP allocator: progressive
  filling where a flow blocked at a saturated link *detours* its
  further growth through alternative sub-paths (1-hop detours, with
  one extra hop allowed on the detour path, as in the paper);
- :mod:`~repro.flowsim.kernel` — the vectorized CSR filling kernel
  shared by both incremental allocators (``kernel="vectorized"`` /
  the simulator's ``core="vectorized"``);
- :mod:`~repro.flowsim.strategies` — SP / ECMP / INRP strategy objects;
- :mod:`~repro.flowsim.simulator` — an event-driven simulator with
  per-event rate recomputation (arrivals, departures, completion),
  streaming spec intake and pause/resume checkpointing;
- :mod:`~repro.flowsim.sinks` — the pluggable result layer: the
  materializing sink (full per-flow records) and the streaming sink
  (O(1) online aggregates + quantile sketches) both assemble the same
  :class:`~repro.flowsim.sinks.SimulationResult`;
- :mod:`~repro.flowsim.snapshots` — steady-state snapshot evaluation
  used by the Fig. 4 benches.
"""

from repro.flowsim.allocation import (
    IncrementalInrp,
    IncrementalMaxMin,
    detour_closure,
    max_min_allocation,
)
from repro.flowsim.multipath import MultipathAllocation, inrp_allocation
from repro.flowsim.kernel import (
    IncidenceStore,
    LinkSpace,
    inrp_fill,
    maxmin_fill,
)
from repro.flowsim.flow import ActiveFlow, FlowRecord
from repro.flowsim.strategies import (
    EcmpStrategy,
    InrpStrategy,
    RoutingStrategy,
    ShortestPathStrategy,
    make_strategy,
)
from repro.flowsim.sinks import (
    FlowAggregates,
    MaterializingSink,
    ResultSink,
    SimulationResult,
    StreamingSink,
)
from repro.flowsim.simulator import FlowLevelSimulator, SimulatorCheckpoint
from repro.flowsim.snapshots import SnapshotResult, snapshot_experiment

__all__ = [
    "max_min_allocation",
    "IncrementalMaxMin",
    "IncrementalInrp",
    "detour_closure",
    "inrp_allocation",
    "MultipathAllocation",
    "LinkSpace",
    "IncidenceStore",
    "maxmin_fill",
    "inrp_fill",
    "ActiveFlow",
    "FlowRecord",
    "RoutingStrategy",
    "ShortestPathStrategy",
    "EcmpStrategy",
    "InrpStrategy",
    "make_strategy",
    "FlowLevelSimulator",
    "SimulationResult",
    "SimulatorCheckpoint",
    "ResultSink",
    "MaterializingSink",
    "StreamingSink",
    "FlowAggregates",
    "snapshot_experiment",
    "SnapshotResult",
]
