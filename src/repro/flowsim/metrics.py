"""Aggregation helpers over flow-level simulation records."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import AnalysisError
from repro.flowsim.flow import FlowRecord
from repro.metrics.stats import Cdf


def completion_ratio(records: Sequence[FlowRecord]) -> float:
    """Fraction of flows that finished their transfer."""
    if not records:
        raise AnalysisError("no records")
    return sum(1 for record in records if record.completed) / len(records)


def mean_fct(records: Sequence[FlowRecord]) -> Optional[float]:
    """Mean flow completion time over completed flows (None if none)."""
    fcts = [record.fct for record in records if record.completed]
    if not fcts:
        return None
    return sum(fcts) / len(fcts)


def stretch_cdf(records: Sequence[FlowRecord]) -> Cdf:
    """Traffic-weighted stretch CDF over flows with any delivery."""
    values: List[float] = []
    weights: List[float] = []
    for record in records:
        if record.delivered_bits > 0:
            values.append(record.stretch)
            weights.append(record.delivered_bits)
    if not values:
        raise AnalysisError("no delivered traffic to build a stretch CDF")
    return Cdf(values, weights)


def goodput_bps(records: Sequence[FlowRecord], duration: float) -> float:
    """Aggregate delivered bits over *duration* seconds."""
    if duration <= 0:
        raise AnalysisError(f"duration must be positive, got {duration}")
    return sum(record.delivered_bits for record in records) / duration
