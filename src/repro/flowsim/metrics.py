"""Aggregation helpers over flow-level simulation records."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import AnalysisError
from repro.flowsim.flow import FlowRecord
from repro.metrics.stats import Cdf


def completion_ratio(records: Sequence[FlowRecord]) -> float:
    """Fraction of flows that finished their transfer.

    An empty shard (a zero-flow slice of a sharded campaign) completes
    vacuously nothing: the ratio is 0.0, not an error, so aggregation
    over shards never trips on a quiet one.
    """
    if not records:
        return 0.0
    return sum(1 for record in records if record.completed) / len(records)


def mean_fct(records: Sequence[FlowRecord]) -> Optional[float]:
    """Mean flow completion time over completed flows (None if none)."""
    fcts = [record.fct for record in records if record.completed]
    if not fcts:
        return None
    return sum(fcts) / len(fcts)


def stretch_cdf(records: Sequence[FlowRecord]) -> Cdf:
    """Traffic-weighted stretch CDF over flows with any delivery."""
    values: List[float] = []
    weights: List[float] = []
    for record in records:
        if record.delivered_bits > 0:
            values.append(record.stretch)
            weights.append(record.delivered_bits)
    if not values:
        raise AnalysisError("no delivered traffic to build a stretch CDF")
    return Cdf(values, weights)


def goodput_bps(records: Sequence[FlowRecord], duration: float) -> float:
    """Aggregate delivered bits over *duration* seconds.

    A zero-duration run delivered nothing in no time; report 0.0
    goodput rather than raising, matching :func:`completion_ratio`'s
    graceful handling of degenerate shards.  Negative durations are
    still a caller bug and raise.
    """
    if duration < 0:
        raise AnalysisError(f"duration must be non-negative, got {duration}")
    if duration == 0:
        return 0.0
    return sum(record.delivered_bits for record in records) / duration
