"""Routing/allocation strategies: SP, ECMP and INRP.

These are the three systems compared in the paper's Fig. 4a ("SP",
"ECMP", "URP" — the INRP abstraction).  A strategy decides (a) the
primary path of each flow and (b) how bandwidth is shared among the
active flows:

- **SP** — single deterministic shortest path, e2e max-min sharing;
- **ECMP** — per-flow hash over the equal-cost shortest paths, e2e
  max-min sharing;
- **INRP** — shortest primary path, INRP fluid allocation
  (:func:`repro.flowsim.multipath.inrp_allocation`): growth blocked at
  a saturated link detours around it instead of freezing.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from array import array
from collections import OrderedDict
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError, NoPathError, RoutingError
from repro.flowsim.allocation import (
    IncrementalInrp,
    IncrementalMaxMin,
    max_min_allocation,
)
from repro.flowsim.multipath import inrp_allocation
from repro.routing.detour import DetourTable
from repro.routing.ecmp import all_shortest_paths, ecmp_hash
from repro.routing.paths import Path, cached_path_links
from repro.routing.shortest import dijkstra
from repro.topology.graph import Node, Topology

FlowId = Hashable


@dataclass
class AllocationOutcome:
    """Rates and per-path splits decided by a strategy."""

    rates: Dict[FlowId, float]
    splits: Dict[FlowId, List[Tuple[Path, float]]]
    #: Number of detour switches (0 for single-path strategies).
    switches: int = 0
    #: Flows that stopped growing without a detour (INRP only).
    backpressured: List[FlowId] = field(default_factory=list)


class RoutingStrategy(abc.ABC):
    """Base class caching topology-derived routing state."""

    name: str = "abstract"

    #: Byte budget for cached Dijkstra trees, packed as one int32
    #: predecessor-index array per source (~4 bytes/node instead of the
    #: ~60 bytes/node of the raw ``(distances, predecessors)`` dict
    #: pair).  Unbounded dict trees used to saturate at >100 MB on ISP
    #: maps once a workload had sampled most sources; packed and under
    #: this budget, every source of the shipped ISP maps fits in a few
    #: MB, and on maps too large for that the LRU evicts — an eviction
    #: only costs a recompute, never changes a path.
    _TREE_CACHE_BUDGET_BYTES = 16 << 20
    #: Per-pair caches (paths, ECMP path sets) are LRU-bounded too:
    #: a uniform-pair million-flow stream touches ~every pair once, and
    #: streaming runs must not grow resident state with the flow count.
    _PATH_CACHE_SIZE = 65536

    def __init__(self, topology: Topology):
        self.topology = topology
        #: Directed (u, v) -> capacity map: forward and reverse traffic
        #: over one physical link draw from separate budgets.
        self.capacities = topology.directed_capacities()
        self._nodes = topology.nodes()
        self._node_index = {node: i for i, node in enumerate(self._nodes)}
        self._path_cache: "OrderedDict[Tuple[Node, Node], Path]" = OrderedDict()
        self._sp_trees: "OrderedDict[Node, array]" = OrderedDict()
        self._tree_cache_size = max(
            64, self._TREE_CACHE_BUDGET_BYTES // (4 * max(len(self._nodes), 1))
        )

    def _packed_tree(self, source: Node) -> array:
        """Predecessor indices of the full Dijkstra tree from *source*
        (-1 marks unreachable), cached per source."""
        packed = self._sp_trees.get(source)
        if packed is None:
            _, predecessors = dijkstra(self.topology, source)
            index = self._node_index
            packed = array("i", [-1]) * len(self._nodes)
            for node, pred in predecessors.items():
                packed[index[node]] = index[pred]
            self._sp_trees[source] = packed
            if len(self._sp_trees) > self._tree_cache_size:
                self._sp_trees.popitem(last=False)
        else:
            self._sp_trees.move_to_end(source)
        return packed

    def route(self, flow_id: FlowId, source: Node, destination: Node) -> Path:
        """Primary path for a flow (deterministic, cached).

        One full Dijkstra tree is cached per source and amortised over
        every destination routed from it; per the tie-break argument in
        :func:`repro.routing.shortest.dijkstra` the paths are identical
        to per-pair :func:`~repro.routing.shortest.shortest_path` calls.
        """
        key = (source, destination)
        path = self._path_cache.get(key)
        if path is None:
            if destination not in self._node_index:
                raise RoutingError(f"unknown node: {destination!r}")
            packed = self._packed_tree(source)
            nodes = self._nodes
            cursor = self._node_index[destination]
            origin = self._node_index[source]
            if cursor != origin and packed[cursor] < 0:
                raise NoPathError(source, destination)
            reverse = [destination]
            while cursor != origin:
                cursor = packed[cursor]
                reverse.append(nodes[cursor])
            reverse.reverse()
            path = tuple(reverse)
            self._path_cache[key] = path
            if len(self._path_cache) > self._PATH_CACHE_SIZE:
                self._path_cache.popitem(last=False)
        else:
            self._path_cache.move_to_end(key)
        return path

    @abc.abstractmethod
    def allocate(
        self, flows: Mapping[FlowId, Tuple[Path, float]]
    ) -> AllocationOutcome:
        """Allocate bandwidth to flows given ``{id: (path, demand)}``."""

    def incremental_allocator(
        self, verify: bool = False, kernel: str = "scalar"
    ):
        """Fresh incremental allocator, when the sharing model admits one.

        Strategies whose allocation is plain e2e max-min over a single
        path per flow (SP, ECMP) return an
        :class:`~repro.flowsim.allocation.IncrementalMaxMin`; INRP
        returns an :class:`~repro.flowsim.allocation.IncrementalInrp`
        over its detour-closure components.  The simulator then
        recomputes only the component dirtied by each
        arrival/departure.  ``kernel="vectorized"`` selects the CSR
        filling kernel (:mod:`repro.flowsim.kernel`) inside those
        allocators.  Strategies whose coupling really is global return
        ``None`` and are recomputed in full.
        """
        return None


class ShortestPathStrategy(RoutingStrategy):
    """Single shortest path with e2e max-min fair sharing."""

    name = "SP"

    def allocate(
        self, flows: Mapping[FlowId, Tuple[Path, float]]
    ) -> AllocationOutcome:
        flow_links = {
            fid: cached_path_links(tuple(path)) for fid, (path, _) in flows.items()
        }
        demands = {fid: demand for fid, (_, demand) in flows.items()}
        rates = max_min_allocation(self.capacities, flow_links, demands)
        splits = {
            fid: [(flows[fid][0], rates[fid])] if rates[fid] > 0 else [(flows[fid][0], 0.0)]
            for fid in flows
        }
        return AllocationOutcome(rates=rates, splits=splits)

    def incremental_allocator(
        self, verify: bool = False, kernel: str = "scalar"
    ) -> Optional[IncrementalMaxMin]:
        return IncrementalMaxMin(self.capacities, verify=verify, kernel=kernel)


class EcmpStrategy(ShortestPathStrategy):
    """Per-flow ECMP over equal-cost shortest paths, then max-min."""

    name = "ECMP"

    def __init__(self, topology: Topology):
        super().__init__(topology)
        self._ecmp_cache: "OrderedDict[Tuple[Node, Node], List[Path]]" = (
            OrderedDict()
        )

    def route(self, flow_id: FlowId, source: Node, destination: Node) -> Path:
        key = (source, destination)
        paths = self._ecmp_cache.get(key)
        if paths is None:
            paths = all_shortest_paths(self.topology, source, destination)
            self._ecmp_cache[key] = paths
            if len(self._ecmp_cache) > self._PATH_CACHE_SIZE:
                self._ecmp_cache.popitem(last=False)
        else:
            self._ecmp_cache.move_to_end(key)
        return paths[ecmp_hash(flow_id, len(paths))]


class InrpStrategy(RoutingStrategy):
    """The paper's INRP abstraction (push + detour at the flow level).

    Parameters
    ----------
    detour_depth:
        ``max_intermediate`` of the detour table.  The default 2
        matches the paper's simulator: "routers exploit up to 1-hop
        detours and nodes on the detour path can further detour, but
        for one extra hop only" — i.e. composite detours through up to
        two intermediate nodes.
    max_replacements:
        How many links of a sub-path may independently be replaced by
        detours before the flow gives up (enters back-pressure).
    pooling_fraction:
        Fraction of a link's directional capacity that detour traffic
        may borrow (partial resource pooling).  1.0 (default) is full
        pooling — today's behaviour; lower values reserve
        ``(1 - pooling_fraction) * capacity`` for primary-path traffic.
    """

    name = "INRP"

    def __init__(
        self,
        topology: Topology,
        detour_depth: int = 2,
        max_replacements: int = 2,
        pooling_fraction: float = 1.0,
    ):
        super().__init__(topology)
        if detour_depth < 0:
            raise ConfigurationError(f"detour_depth must be >= 0, got {detour_depth}")
        if not 0.0 <= pooling_fraction <= 1.0:
            raise ConfigurationError(
                f"pooling_fraction must be in [0, 1], got {pooling_fraction}"
            )
        self.detour_depth = detour_depth
        self.max_replacements = max_replacements if detour_depth > 0 else 0
        self.pooling_fraction = pooling_fraction
        # depth 0 still needs a table object; it simply never offers paths.
        self.detour_table = DetourTable(topology, max(detour_depth, 1))

    def allocate(
        self, flows: Mapping[FlowId, Tuple[Path, float]]
    ) -> AllocationOutcome:
        flow_paths = {fid: path for fid, (path, _) in flows.items()}
        demands = {fid: demand for fid, (_, demand) in flows.items()}
        result = inrp_allocation(
            self.capacities,
            flow_paths,
            demands,
            self.detour_table,
            max_replacements=self.max_replacements,
            pooling_fraction=self.pooling_fraction,
        )
        backpressured = [
            fid
            for fid, reason in result.freeze_reasons.items()
            if reason == "no-detour"
        ]
        return AllocationOutcome(
            rates=result.rates,
            splits=result.splits,
            switches=result.switches,
            backpressured=backpressured,
        )

    def incremental_allocator(
        self, verify: bool = False, kernel: str = "scalar"
    ) -> IncrementalInrp:
        if self.pooling_fraction < 1.0 and kernel != "scalar":
            # The CSR kernel implements full pooling only; partial
            # pooling runs on the scalar recompute path.
            kernel = "scalar"
        return IncrementalInrp(
            self.capacities,
            self.detour_table,
            max_replacements=self.max_replacements,
            verify=verify,
            kernel=kernel,
            pooling_fraction=self.pooling_fraction,
        )


_STRATEGIES = {
    "sp": ShortestPathStrategy,
    "ecmp": EcmpStrategy,
    "inrp": InrpStrategy,
    "urp": InrpStrategy,  # the label used in the paper's Fig. 4a legend
}


def make_strategy(name: str, topology: Topology, **kwargs) -> RoutingStrategy:
    """Build a strategy by name (``sp``, ``ecmp``, ``inrp``/``urp``)."""
    cls = _STRATEGIES.get(name.lower())
    if cls is None:
        known = ", ".join(sorted(_STRATEGIES))
        raise ConfigurationError(f"unknown strategy {name!r}; known: {known}")
    return cls(topology, **kwargs)
