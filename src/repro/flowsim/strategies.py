"""Routing/allocation strategies: SP, ECMP and INRP.

These are the three systems compared in the paper's Fig. 4a ("SP",
"ECMP", "URP" — the INRP abstraction).  A strategy decides (a) the
primary path of each flow and (b) how bandwidth is shared among the
active flows:

- **SP** — single deterministic shortest path, e2e max-min sharing;
- **ECMP** — per-flow hash over the equal-cost shortest paths, e2e
  max-min sharing;
- **INRP** — shortest primary path, INRP fluid allocation
  (:func:`repro.flowsim.multipath.inrp_allocation`): growth blocked at
  a saturated link detours around it instead of freezing.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.flowsim.allocation import (
    IncrementalInrp,
    IncrementalMaxMin,
    max_min_allocation,
)
from repro.flowsim.multipath import inrp_allocation
from repro.routing.detour import DetourTable
from repro.routing.ecmp import all_shortest_paths, ecmp_hash
from repro.routing.paths import Path, cached_path_links
from repro.routing.shortest import dijkstra, path_from_tree
from repro.topology.graph import Node, Topology

FlowId = Hashable


@dataclass
class AllocationOutcome:
    """Rates and per-path splits decided by a strategy."""

    rates: Dict[FlowId, float]
    splits: Dict[FlowId, List[Tuple[Path, float]]]
    #: Number of detour switches (0 for single-path strategies).
    switches: int = 0
    #: Flows that stopped growing without a detour (INRP only).
    backpressured: List[FlowId] = field(default_factory=list)


class RoutingStrategy(abc.ABC):
    """Base class caching topology-derived routing state."""

    name: str = "abstract"

    def __init__(self, topology: Topology):
        self.topology = topology
        self.capacities = topology.link_capacities()
        self._path_cache: Dict[Tuple[Node, Node], Path] = {}
        self._sp_trees: Dict[
            Node, Tuple[Dict[Node, float], Dict[Node, Node]]
        ] = {}

    def route(self, flow_id: FlowId, source: Node, destination: Node) -> Path:
        """Primary path for a flow (deterministic, cached).

        One full Dijkstra tree is cached per source and amortised over
        every destination routed from it; per the tie-break argument in
        :func:`repro.routing.shortest.dijkstra` the paths are identical
        to per-pair :func:`~repro.routing.shortest.shortest_path` calls.
        """
        key = (source, destination)
        path = self._path_cache.get(key)
        if path is None:
            tree = self._sp_trees.get(source)
            if tree is None:
                tree = dijkstra(self.topology, source)
                self._sp_trees[source] = tree
            path = path_from_tree(self.topology, source, destination, tree)
            self._path_cache[key] = path
        return path

    @abc.abstractmethod
    def allocate(
        self, flows: Mapping[FlowId, Tuple[Path, float]]
    ) -> AllocationOutcome:
        """Allocate bandwidth to flows given ``{id: (path, demand)}``."""

    def incremental_allocator(
        self, verify: bool = False, kernel: str = "scalar"
    ):
        """Fresh incremental allocator, when the sharing model admits one.

        Strategies whose allocation is plain e2e max-min over a single
        path per flow (SP, ECMP) return an
        :class:`~repro.flowsim.allocation.IncrementalMaxMin`; INRP
        returns an :class:`~repro.flowsim.allocation.IncrementalInrp`
        over its detour-closure components.  The simulator then
        recomputes only the component dirtied by each
        arrival/departure.  ``kernel="vectorized"`` selects the CSR
        filling kernel (:mod:`repro.flowsim.kernel`) inside those
        allocators.  Strategies whose coupling really is global return
        ``None`` and are recomputed in full.
        """
        return None


class ShortestPathStrategy(RoutingStrategy):
    """Single shortest path with e2e max-min fair sharing."""

    name = "SP"

    def allocate(
        self, flows: Mapping[FlowId, Tuple[Path, float]]
    ) -> AllocationOutcome:
        flow_links = {
            fid: cached_path_links(tuple(path)) for fid, (path, _) in flows.items()
        }
        demands = {fid: demand for fid, (_, demand) in flows.items()}
        rates = max_min_allocation(self.capacities, flow_links, demands)
        splits = {
            fid: [(flows[fid][0], rates[fid])] if rates[fid] > 0 else [(flows[fid][0], 0.0)]
            for fid in flows
        }
        return AllocationOutcome(rates=rates, splits=splits)

    def incremental_allocator(
        self, verify: bool = False, kernel: str = "scalar"
    ) -> Optional[IncrementalMaxMin]:
        return IncrementalMaxMin(self.capacities, verify=verify, kernel=kernel)


class EcmpStrategy(ShortestPathStrategy):
    """Per-flow ECMP over equal-cost shortest paths, then max-min."""

    name = "ECMP"

    def __init__(self, topology: Topology):
        super().__init__(topology)
        self._ecmp_cache: Dict[Tuple[Node, Node], List[Path]] = {}

    def route(self, flow_id: FlowId, source: Node, destination: Node) -> Path:
        key = (source, destination)
        if key not in self._ecmp_cache:
            self._ecmp_cache[key] = all_shortest_paths(
                self.topology, source, destination
            )
        paths = self._ecmp_cache[key]
        return paths[ecmp_hash(flow_id, len(paths))]


class InrpStrategy(RoutingStrategy):
    """The paper's INRP abstraction (push + detour at the flow level).

    Parameters
    ----------
    detour_depth:
        ``max_intermediate`` of the detour table.  The default 2
        matches the paper's simulator: "routers exploit up to 1-hop
        detours and nodes on the detour path can further detour, but
        for one extra hop only" — i.e. composite detours through up to
        two intermediate nodes.
    max_replacements:
        How many links of a sub-path may independently be replaced by
        detours before the flow gives up (enters back-pressure).
    """

    name = "INRP"

    def __init__(
        self,
        topology: Topology,
        detour_depth: int = 2,
        max_replacements: int = 2,
    ):
        super().__init__(topology)
        if detour_depth < 0:
            raise ConfigurationError(f"detour_depth must be >= 0, got {detour_depth}")
        self.detour_depth = detour_depth
        self.max_replacements = max_replacements if detour_depth > 0 else 0
        # depth 0 still needs a table object; it simply never offers paths.
        self.detour_table = DetourTable(topology, max(detour_depth, 1))

    def allocate(
        self, flows: Mapping[FlowId, Tuple[Path, float]]
    ) -> AllocationOutcome:
        flow_paths = {fid: path for fid, (path, _) in flows.items()}
        demands = {fid: demand for fid, (_, demand) in flows.items()}
        result = inrp_allocation(
            self.capacities,
            flow_paths,
            demands,
            self.detour_table,
            max_replacements=self.max_replacements,
        )
        backpressured = [
            fid
            for fid, reason in result.freeze_reasons.items()
            if reason == "no-detour"
        ]
        return AllocationOutcome(
            rates=result.rates,
            splits=result.splits,
            switches=result.switches,
            backpressured=backpressured,
        )

    def incremental_allocator(
        self, verify: bool = False, kernel: str = "scalar"
    ) -> IncrementalInrp:
        return IncrementalInrp(
            self.capacities,
            self.detour_table,
            max_replacements=self.max_replacements,
            verify=verify,
            kernel=kernel,
        )


_STRATEGIES = {
    "sp": ShortestPathStrategy,
    "ecmp": EcmpStrategy,
    "inrp": InrpStrategy,
    "urp": InrpStrategy,  # the label used in the paper's Fig. 4a legend
}


def make_strategy(name: str, topology: Topology, **kwargs) -> RoutingStrategy:
    """Build a strategy by name (``sp``, ``ecmp``, ``inrp``/``urp``)."""
    cls = _STRATEGIES.get(name.lower())
    if cls is None:
        known = ", ".join(sorted(_STRATEGIES))
        raise ConfigurationError(f"unknown strategy {name!r}; known: {known}")
    return cls(topology, **kwargs)
