"""Steady-state snapshot evaluation for the Fig. 4 experiments.

Instead of integrating a long arrival/departure history, a snapshot
experiment draws K independent populations of concurrent flows (the
stationary picture of a Poisson arrival process) and lets the strategy
allocate each one.  Network throughput is the delivered fraction of
the offered demand; the per-flow, bit-weighted stretch samples feed
Fig. 4b.  This matches what Fig. 4a reports while keeping the large
ISP maps tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, NoPathError
from repro.flowsim.strategies import RoutingStrategy
from repro.metrics.stats import Cdf
from repro.rng import SeedLike, derive_seed
from repro.topology.graph import Topology
from repro.workloads.traffic import PairSampler, uniform_pairs


@dataclass
class SnapshotResult:
    """Aggregated outcome of a snapshot experiment."""

    strategy: str
    topology: str
    throughputs: List[float] = field(default_factory=list)
    stretch_values: List[float] = field(default_factory=list)
    stretch_weights: List[float] = field(default_factory=list)
    switches: int = 0
    backpressured: int = 0

    @property
    def mean_throughput(self) -> float:
        return float(np.mean(self.throughputs)) if self.throughputs else 0.0

    @property
    def std_throughput(self) -> float:
        return float(np.std(self.throughputs)) if self.throughputs else 0.0

    def stretch_cdf(self) -> Cdf:
        """Traffic-weighted stretch CDF (the Fig. 4b curve)."""
        if not self.stretch_values:
            raise ConfigurationError("no stretch samples collected")
        return Cdf(self.stretch_values, self.stretch_weights)


def snapshot_experiment(
    topology: Topology,
    strategy: RoutingStrategy,
    num_flows: int,
    demand_bps: float,
    num_snapshots: int = 10,
    seed: SeedLike = 0,
    pair_sampler: Optional[PairSampler] = None,
) -> SnapshotResult:
    """Run *num_snapshots* independent allocation snapshots.

    Parameters
    ----------
    num_flows:
        Concurrent flows per snapshot (the stationary population).
    demand_bps:
        Access-rate cap per flow; senders push up to this ("if senders
        see extra available bandwidth they insert more data").
    """
    if num_flows < 1:
        raise ConfigurationError(f"need >= 1 flow, got {num_flows}")
    if num_snapshots < 1:
        raise ConfigurationError(f"need >= 1 snapshot, got {num_snapshots}")
    result = SnapshotResult(strategy=strategy.name, topology=topology.name)
    base_seed = seed if isinstance(seed, int) else 0
    for snapshot in range(num_snapshots):
        sampler = pair_sampler or uniform_pairs(
            topology, derive_seed(base_seed, f"snapshot-{snapshot}")
        )
        flows = {}
        flow_id = snapshot * num_flows
        attempts = 0
        while len(flows) < num_flows and attempts < 20 * num_flows:
            attempts += 1
            source, destination = sampler()
            try:
                path = strategy.route(flow_id, source, destination)
            except NoPathError:
                continue  # disconnected pair; resample
            flows[flow_id] = (path, demand_bps)
            flow_id += 1
        if not flows:
            raise ConfigurationError("could not sample any connected flow pair")
        outcome = strategy.allocate(flows)
        offered = demand_bps * len(flows)
        delivered = sum(outcome.rates.values())
        result.throughputs.append(delivered / offered)
        result.switches += outcome.switches
        result.backpressured += len(outcome.backpressured)
        for fid, splits in outcome.splits.items():
            primary_hops = max(len(flows[fid][0]) - 1, 1)
            total = sum(rate for _, rate in splits)
            if total <= 0:
                continue
            weighted = sum(rate * (len(path) - 1) for path, rate in splits)
            result.stretch_values.append(weighted / (total * primary_hops))
            result.stretch_weights.append(total)
    return result
