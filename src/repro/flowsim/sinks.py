"""Result sinks: where finalized flows go.

The simulator's event loops do not accumulate per-flow records
themselves; they hand every finalized :class:`~repro.flowsim.flow.FlowRecord`
to a pluggable :class:`ResultSink` and ask it for the final
:class:`SimulationResult`:

- :class:`MaterializingSink` (the default) keeps the full record list
  and reproduces the historical ``SimulationResult`` exactly — O(flows)
  memory, per-flow analysis available.
- :class:`StreamingSink` folds each record into online
  :class:`FlowAggregates` — counts, delivered bits, Jain inputs and
  FCT/stretch quantiles through a mergeable
  :class:`~repro.metrics.stats.QuantileSketch` — in O(1) memory per
  flow, which is what lets million-flow runs finish memory-bound
  workloads without materialising anything.

``SimulationResult`` itself is records-optional: every aggregate
accessor (:meth:`SimulationResult.mean_fct`,
:meth:`~SimulationResult.fct_quantile`,
:meth:`~SimulationResult.goodput_bps`, counts, Jain) answers from
either the record list or the aggregates, so campaign scenarios,
reporting and the CLI work identically against both sinks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import AnalysisError, ConfigurationError
from repro.flowsim.flow import FlowRecord
from repro.metrics.stats import QuantileSketch

#: Default rank-error budget of the streaming quantile sketches.  At
#: 0.005 the p50/p90/p99 of a million-flow run are answered from a few
#: hundred retained entries with rank error <= 0.5% of the population.
DEFAULT_SKETCH_EPSILON = 0.005


@dataclass
class FlowAggregates:
    """Online aggregates over finalized flows (mergeable across shards).

    Counts and bit totals are exact; FCT and stretch distributions are
    kept as :class:`~repro.metrics.stats.QuantileSketch` summaries
    (``fct_sketch`` unweighted over completed flows, ``stretch_sketch``
    weighted by delivered bits over completed flows, matching the
    traffic-weighted Fig. 4b convention).  Jain inputs are the running
    first and second moments of per-flow goodput
    (``delivered_bits / fct``) over completed flows.
    """

    flows: int = 0
    completed: int = 0
    unfinished: int = 0
    delivered_bits: float = 0.0
    completed_bits: float = 0.0
    sum_fct: float = 0.0
    goodput_sum: float = 0.0
    goodput_sq_sum: float = 0.0
    goodput_flows: int = 0
    fct_sketch: QuantileSketch = field(
        default_factory=lambda: QuantileSketch(DEFAULT_SKETCH_EPSILON)
    )
    stretch_sketch: QuantileSketch = field(
        default_factory=lambda: QuantileSketch(DEFAULT_SKETCH_EPSILON)
    )

    def observe(self, record: FlowRecord) -> None:
        """Fold one finalized flow into the aggregates."""
        self.flows += 1
        self.delivered_bits += record.delivered_bits
        if not record.completed:
            self.unfinished += 1
            return
        self.completed += 1
        self.completed_bits += record.delivered_bits
        fct = record.fct
        self.sum_fct += fct
        self.fct_sketch.insert(fct)
        if record.delivered_bits > 0:
            self.stretch_sketch.insert(
                record.stretch, weight=record.delivered_bits
            )
        if fct > 0:
            goodput = record.delivered_bits / fct
            self.goodput_sum += goodput
            self.goodput_sq_sum += goodput * goodput
            self.goodput_flows += 1

    def mean_fct(self) -> Optional[float]:
        if self.completed == 0:
            return None
        return self.sum_fct / self.completed

    def jain_goodput(self) -> float:
        """Jain index of per-flow goodput over completed flows.

        Degenerately 1.0 when no flow completed (an empty population is
        perfectly fair), so zero-flow streaming shards aggregate
        without special-casing.
        """
        if self.goodput_flows == 0 or self.goodput_sq_sum == 0.0:
            return 1.0
        return min(
            (self.goodput_sum * self.goodput_sum)
            / (self.goodput_flows * self.goodput_sq_sum),
            1.0,
        )

    def merge(self, other: "FlowAggregates") -> "FlowAggregates":
        """Fold *other* into this one (in place; returns self).

        Counts and sums add exactly; the sketches merge with additive
        rank error (see :meth:`QuantileSketch.merge`).
        """
        self.flows += other.flows
        self.completed += other.completed
        self.unfinished += other.unfinished
        self.delivered_bits += other.delivered_bits
        self.completed_bits += other.completed_bits
        self.sum_fct += other.sum_fct
        self.goodput_sum += other.goodput_sum
        self.goodput_sq_sum += other.goodput_sq_sum
        self.goodput_flows += other.goodput_flows
        self.fct_sketch.merge(other.fct_sketch)
        self.stretch_sketch.merge(other.stretch_sketch)
        return self


@dataclass
class SimulationResult:
    """Aggregate outcome of one flow-level simulation run.

    ``records`` is present when the run used a
    :class:`MaterializingSink` (the default) and ``None`` under a
    :class:`StreamingSink`, where ``aggregates`` carries the online
    summary instead.  Use the records-optional accessors
    (:attr:`num_flows`, :attr:`completed_count`, :meth:`mean_fct`,
    :meth:`fct_quantile`, :meth:`stretch_quantile`,
    :meth:`goodput_bps`, :meth:`jain_goodput`) to stay agnostic;
    :meth:`require_records` for per-flow analysis that genuinely needs
    the materialized list.
    """

    records: Optional[List[FlowRecord]]
    #: Time-weighted mean of (aggregate delivered rate / offered demand).
    network_throughput: float
    #: Time-weighted aggregate delivered rate in bits/s.
    mean_delivered_bps: float
    #: Time-weighted aggregate offered demand in bits/s.
    mean_offered_bps: float
    duration: float
    allocations: int
    unfinished: int = 0
    total_switches: int = 0
    #: Recomputes the adaptive ``core="auto"`` ran as full refills.
    full_refills: int = 0
    #: Worst incremental-vs-scratch rate deviation observed when
    #: ``verify_allocator=True`` (None when verification did not run).
    max_verify_deviation: Optional[float] = None
    #: Online aggregates (always set under a streaming sink; None under
    #: the materializing sink, whose accessors answer from records).
    aggregates: Optional[FlowAggregates] = None
    #: Allocation kernel the run used ("scalar"/"vectorized"; None when
    #: the strategy has no incremental allocator or under the
    #: reference core).
    kernel: Optional[str] = None

    # ------------------------------------------------------------------
    # Records-mode access
    # ------------------------------------------------------------------
    @property
    def has_records(self) -> bool:
        return self.records is not None

    def require_records(self) -> List[FlowRecord]:
        """The materialized record list, or a clear error explaining
        that the run streamed its results away."""
        if self.records is None:
            raise AnalysisError(
                "per-flow records were not materialized (streaming sink); "
                "rerun with sink='materialize' for per-flow analysis"
            )
        return self.records

    @property
    def completed_records(self) -> List[FlowRecord]:
        return [record for record in self.require_records() if record.completed]

    def stretch_samples(self, include_unfinished: bool = False) -> List[float]:
        """Per-flow bit-weighted stretch values (completed flows).

        A flow truncated by the horizon has a stretch computed over a
        partial delivery, so unfinished flows are excluded from the
        Fig. 4b distribution by default; pass
        ``include_unfinished=True`` to also sample unfinished flows
        that delivered at least one bit.  Records mode only — the
        streaming pipeline keeps the distribution as a sketch; use
        :meth:`stretch_quantile`.
        """
        return [
            record.stretch
            for record in self.require_records()
            if record.completed
            or (include_unfinished and record.delivered_bits > 0)
        ]

    # ------------------------------------------------------------------
    # Records-optional accessors (work from either side)
    # ------------------------------------------------------------------
    @property
    def num_flows(self) -> int:
        if self.records is not None:
            return len(self.records)
        return self.aggregates.flows

    @property
    def completed_count(self) -> int:
        if self.records is not None:
            return sum(1 for record in self.records if record.completed)
        return self.aggregates.completed

    @property
    def delivered_bits(self) -> float:
        if self.records is not None:
            return sum(record.delivered_bits for record in self.records)
        return self.aggregates.delivered_bits

    def completion_ratio(self) -> float:
        """Fraction of flows that finished (0.0 for an empty run)."""
        flows = self.num_flows
        if flows == 0:
            return 0.0
        return self.completed_count / flows

    def goodput_bps(self) -> float:
        """Delivered bits over the run duration (0.0 for zero duration)."""
        if self.duration <= 0:
            return 0.0
        return self.delivered_bits / self.duration

    def mean_fct(self) -> Optional[float]:
        """Mean flow completion time over completed flows."""
        if self.records is None:
            return self.aggregates.mean_fct()
        fcts = [record.fct for record in self.records if record.completed]
        if not fcts:
            return None
        return sum(fcts) / len(fcts)

    def fct_quantile(self, q: float) -> Optional[float]:
        """FCT quantile over completed flows (exact from records, within
        sketch rank error from aggregates; None when nothing completed)."""
        if self.records is None:
            if self.aggregates.completed == 0:
                return None
            return self.aggregates.fct_sketch.quantile(q)
        fcts = sorted(
            record.fct for record in self.records if record.completed
        )
        if not fcts:
            return None
        index = min(int(q * len(fcts)), len(fcts) - 1)
        return fcts[index]

    def stretch_quantile(self, q: float) -> Optional[float]:
        """Traffic-weighted stretch quantile over completed flows
        (exact from records, within sketch rank error from aggregates;
        None when no completed flow delivered traffic)."""
        if self.records is None:
            if self.aggregates.stretch_sketch.count == 0:
                return None
            return self.aggregates.stretch_sketch.quantile(q)
        values: List[float] = []
        weights: List[float] = []
        for record in self.records:
            if record.completed and record.delivered_bits > 0:
                values.append(record.stretch)
                weights.append(record.delivered_bits)
        if not values:
            return None
        from repro.metrics.stats import Cdf

        return Cdf(values, weights).quantile(q)

    def jain_goodput(self) -> float:
        """Jain fairness index of per-flow goodput over completed flows."""
        if self.records is None:
            return self.aggregates.jain_goodput()
        aggregates = FlowAggregates()
        for record in self.records:
            aggregates.observe(record)
        return aggregates.jain_goodput()


class ResultSink(abc.ABC):
    """Consumer of finalized flows; owner of the final result.

    A sink instance is single-use: the simulator feeds it every
    finalized :class:`FlowRecord` via :meth:`consume` and calls
    :meth:`build` exactly once at the end of the run.  Checkpointed
    runs carry the sink inside the checkpoint, so a resumed run
    continues folding into the same sink state.
    """

    @abc.abstractmethod
    def consume(self, record: FlowRecord) -> None:
        """Fold one finalized flow."""

    @abc.abstractmethod
    def build(
        self,
        *,
        network_throughput: float,
        mean_delivered_bps: float,
        mean_offered_bps: float,
        duration: float,
        allocations: int,
        unfinished: int,
        total_switches: int,
        full_refills: int = 0,
        max_verify_deviation: Optional[float] = None,
        kernel: Optional[str] = None,
    ) -> SimulationResult:
        """Assemble the final :class:`SimulationResult`."""


class MaterializingSink(ResultSink):
    """Keeps every record; reproduces the historical result exactly."""

    def __init__(self) -> None:
        self._records: List[FlowRecord] = []

    def consume(self, record: FlowRecord) -> None:
        self._records.append(record)

    def build(self, **scalars) -> SimulationResult:
        self._records.sort(key=lambda record: record.flow_id)
        return SimulationResult(records=self._records, **scalars)


class StreamingSink(ResultSink):
    """Folds records into :class:`FlowAggregates`; keeps none of them.

    ``epsilon`` is the rank-error budget of the FCT/stretch sketches
    (see :class:`~repro.metrics.stats.QuantileSketch` for the error
    model).
    """

    def __init__(self, epsilon: float = DEFAULT_SKETCH_EPSILON) -> None:
        self.aggregates = FlowAggregates(
            fct_sketch=QuantileSketch(epsilon),
            stretch_sketch=QuantileSketch(epsilon),
        )

    def consume(self, record: FlowRecord) -> None:
        self.aggregates.observe(record)

    def build(self, **scalars) -> SimulationResult:
        return SimulationResult(
            records=None, aggregates=self.aggregates, **scalars
        )


def make_sink(sink) -> ResultSink:
    """Resolve a sink spec: an instance, ``"materialize"``/``"streaming"``
    or None (the materializing default)."""
    if sink is None or sink == "materialize":
        return MaterializingSink()
    if sink == "streaming":
        return StreamingSink()
    if isinstance(sink, ResultSink):
        return sink
    raise ConfigurationError(
        f"unknown sink {sink!r}; expected 'materialize', 'streaming' "
        "or a ResultSink instance"
    )
