"""The INRP fluid allocator: progressive filling with detour switching.

This models the push-data + detour phases of the paper at the flow
level.  All flows grow their sending rate together (processor-sharing
senders pushing open loop).  When a link on a flow's active sub-path
saturates, the *node before the bottleneck* shifts the flow's further
growth onto a detour around that link (1-hop detours by default; a
detour link may itself be detoured while the replacement budget
lasts).  Only when no detour exists does the flow stop growing — the
fluid equivalent of entering the back-pressure phase.

The outcome is the paper's "global fairness": on the shared link of
Fig. 3 both flows obtain 5 Mbps (the bottlenecked flow carries
2 Mbps on the direct link plus 3 Mbps via the detour), where e2e
max-min gives (2, 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.routing.detour import DetourTable
from repro.routing.paths import Path, cached_path_links
from repro.topology.graph import link_key

FlowId = Hashable
LinkId = Hashable

_EPS = 1e-9


def _rel_tol(scale: float) -> float:
    """Tolerance proportional to the magnitudes in play."""
    if math.isinf(scale):
        return _EPS
    return _EPS * (1.0 + abs(scale))


@dataclass
class _SubPath:
    path: Path
    carried: float = 0.0
    replacements: int = 0


@dataclass
class _FlowState:
    demand: float
    subpaths: List[_SubPath] = field(default_factory=list)
    active: Optional[int] = 0
    total: float = 0.0
    frozen: bool = False
    freeze_reason: str = ""
    switches: int = 0


@dataclass
class MultipathAllocation:
    """Result of :func:`inrp_allocation`.

    Attributes
    ----------
    rates:
        Total rate per flow (bits/s).
    splits:
        Per flow, the ``(path, rate)`` pairs with positive rate, in
        creation order (primary first).
    switches:
        Total number of detour switches performed.
    freeze_reasons:
        Per flow, why it stopped growing (``"demand"`` or
        ``"no-detour"``).
    """

    rates: Dict[FlowId, float]
    splits: Dict[FlowId, List[Tuple[Path, float]]]
    switches: int
    freeze_reasons: Dict[FlowId, str]

    def stretch(self, flow: FlowId) -> float:
        """Bit-weighted path stretch of *flow* (the Fig. 4b metric)."""
        parts = self.splits[flow]
        if not parts:
            return 1.0
        primary_hops = len(parts[0][0]) - 1
        total = sum(rate for _, rate in parts)
        if total <= 0 or primary_hops <= 0:
            return 1.0
        weighted = sum(rate * (len(path) - 1) for path, rate in parts)
        return weighted / (total * primary_hops)


def _splice(path: Path, index: int, option: Path) -> Optional[Path]:
    """Replace the link at *index* of *path* with detour *option*.

    *option* runs from ``path[index]`` to ``path[index + 1]``.  Returns
    None when the spliced path would revisit a node.
    """
    if option[0] != path[index] or option[-1] != path[index + 1]:
        return None
    candidate = path[:index] + option + path[index + 2 :]
    if len(set(candidate)) != len(candidate):
        return None
    return candidate


def inrp_allocation(
    capacities: Mapping[LinkId, float],
    flow_paths: Mapping[FlowId, Path],
    demands: Mapping[FlowId, float],
    detour_table: DetourTable,
    max_replacements: int = 2,
    max_switches_per_flow: int = 16,
) -> MultipathAllocation:
    """INRP fluid allocation (see module docstring).

    Parameters
    ----------
    capacities:
        Canonical link -> capacity (bits/s).
    flow_paths:
        Primary (shortest) path per flow.
    detour_table:
        Pre-computed detour options; its ``max_intermediate`` controls
        detour depth (1 = the paper's one-hop detours).
    max_replacements:
        How many links of a single sub-path may be replaced by detours
        (2 models "nodes on the detour path can further detour, but
        for one extra hop only").
    """
    flows: Dict[FlowId, _FlowState] = {}
    residual: Dict[LinkId, float] = dict(capacities)
    # Sparse: only links currently carrying growing flows.  The
    # saturation scan below runs every filling round, so iterating the
    # handful of in-use links instead of the whole topology is a large
    # win on big maps with localised load.
    growth: Dict[LinkId, int] = {}

    def _links(path: Path) -> Tuple[LinkId, ...]:
        return cached_path_links(tuple(path))

    def _add_growth(path: Path, delta: int) -> None:
        for link in _links(path):
            count = growth.get(link, 0) + delta
            if count:
                growth[link] = count
            else:
                growth.pop(link, None)

    for flow_id, path in flow_paths.items():
        demand = demands[flow_id]
        if demand < 0:
            raise SimulationError(f"flow {flow_id!r} has negative demand")
        state = _FlowState(demand=demand, subpaths=[_SubPath(tuple(path))])
        if len(path) < 2 or demand <= _EPS:
            state.frozen = True
            state.active = None
            state.total = demand if len(path) < 2 else 0.0
            state.freeze_reason = "demand"
        flows[flow_id] = state
        if not state.frozen:
            for link in _links(state.subpaths[0].path):
                if link not in residual:
                    raise SimulationError(
                        f"flow {flow_id!r} uses unknown link {link!r}"
                    )
            _add_growth(state.subpaths[0].path, +1)

    def _best_option(link: Tuple, exclude_nodes: set) -> Optional[Path]:
        u, v = link
        best: Optional[Path] = None
        best_spare = -1.0
        for option in detour_table.options(u, v):
            if any(node in exclude_nodes for node in option[1:-1]):
                continue
            option_links = _links(option)
            spare = min(residual.get(l, 0.0) for l in option_links)
            floor = max(_rel_tol(capacities.get(l, 0.0)) for l in option_links)
            if spare <= floor:
                continue
            if spare > best_spare + _EPS:
                best, best_spare = option, spare
        return best

    def _reroute(state: _FlowState) -> bool:
        """Move the flow's growth off saturated links; False = freeze."""
        if state.active is None:
            return False
        active = state.subpaths[state.active]
        candidate = active.path
        replacements = active.replacements
        changed = True
        while changed:
            changed = False
            for index, link in enumerate(_links(candidate)):
                if residual.get(link, 0.0) > _rel_tol(capacities.get(link, 0.0)):
                    continue
                if replacements >= max_replacements:
                    return False
                u, v = candidate[index], candidate[index + 1]
                option = _best_option((u, v), set(candidate))
                if option is None:
                    return False
                spliced = _splice(candidate, index, option)
                if spliced is None:
                    return False
                candidate = spliced
                replacements += 1
                changed = True
                break
        if candidate == active.path:
            return True  # nothing saturated after all
        _add_growth(active.path, -1)
        state.subpaths.append(_SubPath(candidate, replacements=replacements))
        state.active = len(state.subpaths) - 1
        state.switches += 1
        _add_growth(candidate, +1)
        return True

    unfrozen = {flow_id for flow_id, state in flows.items() if not state.frozen}
    guard = 0
    max_iterations = 16 * (len(flows) + len(capacities)) + 64
    while unfrozen:
        guard += 1
        if guard > max_iterations:
            raise SimulationError("INRP allocation did not converge")
        demand_step = min(
            flows[flow_id].demand - flows[flow_id].total for flow_id in unfrozen
        )
        saturation_step = math.inf
        saturating: List[LinkId] = []
        for link, count in growth.items():
            if count <= 0:
                continue
            candidate_step = residual[link] / count
            if candidate_step < saturation_step - _rel_tol(saturation_step):
                saturation_step = candidate_step
                saturating = [link]
            elif candidate_step <= saturation_step + _rel_tol(saturation_step):
                saturating.append(link)
        step = max(0.0, min(demand_step, saturation_step))

        for link, count in growth.items():
            if count > 0:
                residual[link] -= step * count
        for flow_id in unfrozen:
            state = flows[flow_id]
            state.total += step
            state.subpaths[state.active].carried += step

        # Demand events.
        satisfied = [
            flow_id
            for flow_id in unfrozen
            if flows[flow_id].demand - flows[flow_id].total
            <= _rel_tol(flows[flow_id].total)
        ]
        for flow_id in satisfied:
            state = flows[flow_id]
            _add_growth(state.subpaths[state.active].path, -1)
            state.frozen = True
            state.freeze_reason = "demand"
            state.active = None
            unfrozen.discard(flow_id)

        # Saturation events: reroute or freeze affected flows.
        saturated = set()
        if saturating and saturation_step <= demand_step + _rel_tol(demand_step):
            saturated = set(saturating)
            for link in saturated:
                residual[link] = 0.0
        if not saturated and not satisfied:
            raise SimulationError("INRP allocation made no progress")
        if saturated:
            affected = [
                flow_id
                for flow_id in sorted(unfrozen, key=repr)
                if any(
                    link in saturated
                    for link in _links(
                        flows[flow_id].subpaths[flows[flow_id].active].path
                    )
                )
            ]
            for flow_id in affected:
                state = flows[flow_id]
                if state.switches >= max_switches_per_flow or not _reroute(state):
                    _add_growth(state.subpaths[state.active].path, -1)
                    state.frozen = True
                    state.freeze_reason = "no-detour"
                    state.active = None
                    unfrozen.discard(flow_id)

    rates = {flow_id: state.total for flow_id, state in flows.items()}
    splits = {
        flow_id: [
            (sub.path, sub.carried)
            for sub in state.subpaths
            if sub.carried > _EPS or sub is state.subpaths[0]
        ]
        for flow_id, state in flows.items()
    }
    switches = sum(state.switches for state in flows.values())
    reasons = {flow_id: state.freeze_reason for flow_id, state in flows.items()}
    return MultipathAllocation(
        rates=rates, splits=splits, switches=switches, freeze_reasons=reasons
    )
