"""The INRP fluid allocator: progressive filling with detour switching.

This models the push-data + detour phases of the paper at the flow
level.  All flows grow their sending rate together (processor-sharing
senders pushing open loop).  When a link on a flow's active sub-path
saturates, the *node before the bottleneck* shifts the flow's further
growth onto a detour around that link (1-hop detours by default; a
detour link may itself be detoured while the replacement budget
lasts).  Only when no detour exists does the flow stop growing — the
fluid equivalent of entering the back-pressure phase.

The outcome is the paper's "global fairness": on the shared link of
Fig. 3 both flows obtain 5 Mbps (the bottlenecked flow carries
2 Mbps on the direct link plus 3 Mbps via the detour), where e2e
max-min gives (2, 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.routing.detour import DetourTable
from repro.routing.paths import Path, cached_path_links

FlowId = Hashable
LinkId = Hashable

_EPS = 1e-9


def _rel_tol(scale: float) -> float:
    """Tolerance proportional to the magnitudes in play."""
    if math.isinf(scale):
        return _EPS
    return _EPS * (1.0 + abs(scale))


@dataclass
class _SubPath:
    path: Path
    carried: float = 0.0
    replacements: int = 0


@dataclass
class _FlowState:
    demand: float
    subpaths: List[_SubPath] = field(default_factory=list)
    active: Optional[int] = 0
    total: float = 0.0
    frozen: bool = False
    freeze_reason: str = ""
    switches: int = 0


@dataclass
class MultipathAllocation:
    """Result of :func:`inrp_allocation`.

    Attributes
    ----------
    rates:
        Total rate per flow (bits/s).
    splits:
        Per flow, the ``(path, rate)`` pairs with positive rate, in
        creation order (primary first).
    switches:
        Total number of detour switches performed.
    freeze_reasons:
        Per flow, why it stopped growing (``"demand"`` or
        ``"no-detour"``).
    """

    rates: Dict[FlowId, float]
    splits: Dict[FlowId, List[Tuple[Path, float]]]
    switches: int
    freeze_reasons: Dict[FlowId, str]

    def stretch(self, flow: FlowId) -> float:
        """Bit-weighted path stretch of *flow* (the Fig. 4b metric)."""
        parts = self.splits[flow]
        if not parts:
            return 1.0
        primary_hops = len(parts[0][0]) - 1
        total = sum(rate for _, rate in parts)
        if total <= 0 or primary_hops <= 0:
            return 1.0
        weighted = sum(rate * (len(path) - 1) for path, rate in parts)
        return weighted / (total * primary_hops)


def splice_detour(path: Path, index: int, option: Path) -> Optional[Path]:
    """Replace the link at *index* of *path* with detour *option*.

    *option* runs from ``path[index]`` to ``path[index + 1]``.  Returns
    None when the spliced path would revisit a node.  Shared by the
    scalar filling below and the vectorized kernel
    (:mod:`repro.flowsim.kernel`), whose reroute decisions must splice
    identically.
    """
    if option[0] != path[index] or option[-1] != path[index + 1]:
        return None
    candidate = path[:index] + option + path[index + 2 :]
    if len(set(candidate)) != len(candidate):
        return None
    return candidate


#: Backwards-compatible private alias (pre-kernel name).
_splice = splice_detour


def inrp_allocation(
    capacities: Mapping[LinkId, float],
    flow_paths: Mapping[FlowId, Path],
    demands: Mapping[FlowId, float],
    detour_table: DetourTable,
    max_replacements: int = 2,
    max_switches_per_flow: int = 16,
    pinned_usage: Optional[Mapping[LinkId, float]] = None,
    saturation_floors: Optional[Mapping[LinkId, float]] = None,
    pooling_fraction: float = 1.0,
) -> MultipathAllocation:
    """INRP fluid allocation (see module docstring).

    Parameters
    ----------
    capacities:
        Canonical link -> capacity (bits/s).
    flow_paths:
        Primary (shortest) path per flow.  This may be any subset of
        the active population: the incremental allocator re-runs the
        filling over one detour-closure component at a time.
    detour_table:
        Pre-computed detour options; its ``max_intermediate`` controls
        detour depth (1 = the paper's one-hop detours).
    max_replacements:
        How many links of a single sub-path may be replaced by detours
        (2 models "nodes on the detour path can further detour, but
        for one extra hop only").
    pinned_usage:
        Bandwidth (bits/s) per link already consumed by flows *outside*
        ``flow_paths`` whose allocation is held fixed.  Each link's
        starting residual is its capacity minus its pinned usage.  Used
        by :class:`repro.flowsim.allocation.IncrementalInrp` when
        re-filling a single component while the others keep their
        rates (for truly disjoint components every pinned value is
        zero; the parameter makes the contract explicit and guards the
        subset run against capacity over-commitment).
    saturation_floors:
        Pre-computed ``_rel_tol(capacity)`` per link.  Callers invoking
        the filling repeatedly over the same topology (the incremental
        allocator, the event cores) pass a shared map so it is not
        rebuilt per call; any link missing from the map falls back to
        the absolute epsilon.
    pooling_fraction:
        Partial resource pooling (paper knob): the fraction of each
        link's directional capacity that detour traffic may borrow.
        ``1.0`` (default) is full pooling and takes the historical code
        path bit-for-bit.  Below 1.0, every link keeps a reserve of
        ``(1 - pooling_fraction) * capacity`` that only primary-path
        traffic may consume: detour options are only admitted while
        their spare exceeds the reserve, and detour-borne growth on a
        link stops (reroute or freeze) once its residual reaches the
        reserve, while primary flows keep filling down to zero.
    """
    if not 0.0 <= pooling_fraction <= 1.0:
        raise SimulationError(
            f"pooling_fraction must be in [0, 1], got {pooling_fraction}"
        )
    reserves: Optional[Dict[LinkId, float]] = None
    if pooling_fraction < 1.0:
        reserves = {
            link: (1.0 - pooling_fraction) * capacity
            for link, capacity in capacities.items()
            if not math.isinf(capacity)
        }
    flows: Dict[FlowId, _FlowState] = {}
    residual: Dict[LinkId, float] = dict(capacities)
    if pinned_usage:
        for link, used in pinned_usage.items():
            if link not in residual:
                raise SimulationError(f"pinned usage on unknown link {link!r}")
            if used < 0:
                raise SimulationError(f"negative pinned usage on link {link!r}")
            residual[link] = max(residual[link] - used, 0.0)
    # Saturation floor per link, hoisted out of the filling rounds (the
    # tolerance depends only on the link's capacity).
    floors: Mapping[LinkId, float] = (
        saturation_floors
        if saturation_floors is not None
        else {link: _rel_tol(capacity) for link, capacity in capacities.items()}
    )
    # Sparse: only links currently carrying growing flows, and which
    # flows grow there.  The saturation scan below runs every filling
    # round, so iterating the handful of in-use links instead of the
    # whole topology is a large win on big maps with localised load;
    # the member sets give the saturation-affected flows directly.
    carriers: Dict[LinkId, Set[FlowId]] = {}
    # Partial pooling only: which growing flows use each link as a
    # *detour* (a link not on their primary path), and each flow's
    # primary link set.  Empty/unused under full pooling.
    detour_members: Dict[LinkId, Set[FlowId]] = {}
    primary_links: Dict[FlowId, frozenset] = {}

    def _links(path: Path) -> Tuple[LinkId, ...]:
        return cached_path_links(tuple(path))

    def _enter(flow_id: FlowId, path: Path) -> None:
        links = _links(path)
        for link in links:
            carriers.setdefault(link, set()).add(flow_id)
        if reserves is not None:
            primary = primary_links[flow_id]
            for link in links:
                if link not in primary:
                    detour_members.setdefault(link, set()).add(flow_id)

    def _leave(flow_id: FlowId, path: Path) -> None:
        for link in _links(path):
            members = carriers.get(link)
            if members is not None:
                members.discard(flow_id)
                if not members:
                    del carriers[link]
            detourers = detour_members.get(link)
            if detourers is not None:
                detourers.discard(flow_id)
                if not detourers:
                    del detour_members[link]

    for flow_id, path in flow_paths.items():
        demand = demands[flow_id]
        if demand < 0:
            raise SimulationError(f"flow {flow_id!r} has negative demand")
        if reserves is not None:
            primary_links[flow_id] = frozenset(_links(tuple(path)))
        state = _FlowState(demand=demand, subpaths=[_SubPath(tuple(path))])
        if len(path) < 2 or demand <= _EPS:
            state.frozen = True
            state.active = None
            state.total = demand if len(path) < 2 else 0.0
            state.freeze_reason = "demand"
        flows[flow_id] = state
        if not state.frozen:
            for link in _links(state.subpaths[0].path):
                if link not in residual:
                    raise SimulationError(
                        f"flow {flow_id!r} uses unknown link {link!r}"
                    )
            _enter(flow_id, state.subpaths[0].path)

    def _best_option(link: Tuple, exclude_nodes: set) -> Optional[Path]:
        u, v = link
        best: Optional[Path] = None
        best_spare = -1.0
        for option in detour_table.options(u, v):
            if any(node in exclude_nodes for node in option[1:-1]):
                continue
            option_links = _links(option)
            if reserves is None:
                spare = min(residual.get(l, 0.0) for l in option_links)
            else:
                # Detours may only borrow spare beyond the reserved
                # (1 - pooling_fraction) share of each link.
                spare = min(
                    residual.get(l, 0.0) - reserves.get(l, 0.0)
                    for l in option_links
                )
            floor = max(floors.get(l, _EPS) for l in option_links)
            if spare <= floor:
                continue
            # Relative tolerance: options whose spare capacity agrees
            # to rounding noise are a tie, and the first enumerated
            # (DetourTable order is deterministic) wins.  An absolute
            # epsilon here would make the choice flip on bit-level
            # residual differences between a whole-population fill and
            # a component-restricted one.
            if spare > best_spare + _rel_tol(best_spare):
                best, best_spare = option, spare
        return best

    def _reroute(flow_id: FlowId, state: _FlowState) -> bool:
        """Move the flow's growth off saturated links; False = freeze."""
        if state.active is None:
            return False
        active = state.subpaths[state.active]
        candidate = active.path
        replacements = active.replacements
        changed = True
        while changed:
            changed = False
            for index, link in enumerate(_links(candidate)):
                limit = floors.get(link, _EPS)
                if reserves is not None and link not in primary_links[flow_id]:
                    # Detour use of the link saturates at the reserve.
                    limit += reserves.get(link, 0.0)
                if residual.get(link, 0.0) > limit:
                    continue
                if replacements >= max_replacements:
                    return False
                u, v = candidate[index], candidate[index + 1]
                option = _best_option((u, v), set(candidate))
                if option is None:
                    return False
                spliced = _splice(candidate, index, option)
                if spliced is None:
                    return False
                candidate = spliced
                replacements += 1
                changed = True
                break
        if candidate == active.path:
            return True  # nothing saturated after all
        _leave(flow_id, active.path)
        state.subpaths.append(_SubPath(candidate, replacements=replacements))
        state.active = len(state.subpaths) - 1
        state.switches += 1
        _enter(flow_id, candidate)
        return True

    # Saturation handling visits affected flows in arrival (insertion)
    # order of ``flow_paths``: older flows reroute first.  Sorting by
    # ``repr`` here made flow 10 reroute before flow 2 and silently
    # changed outcomes with the flow-id type (int vs str ids).
    arrival_order = {flow_id: index for index, flow_id in enumerate(flow_paths)}
    unfrozen = {flow_id for flow_id, state in flows.items() if not state.frozen}
    guard = 0
    max_iterations = 16 * (len(flows) + len(capacities)) + 64
    while unfrozen:
        guard += 1
        if guard > max_iterations:
            raise SimulationError("INRP allocation did not converge")
        demand_step = min(
            flows[flow_id].demand - flows[flow_id].total for flow_id in unfrozen
        )
        saturation_step = math.inf
        saturation_tol = _EPS
        saturating: List[LinkId] = []
        reserve_saturating: List[LinkId] = []
        if reserves is None:
            for link, members in carriers.items():
                candidate_step = residual[link] / len(members)
                if candidate_step < saturation_step - saturation_tol:
                    saturation_step = candidate_step
                    saturation_tol = _EPS * (1.0 + candidate_step)
                    saturating = [link]
                elif candidate_step <= saturation_step + saturation_tol:
                    saturating.append(link)
        else:
            for link, members in carriers.items():
                candidate_step = residual[link] / len(members)
                if candidate_step < saturation_step - saturation_tol:
                    saturation_step = candidate_step
                    saturation_tol = _EPS * (1.0 + candidate_step)
                    saturating = [link]
                    reserve_saturating = []
                elif candidate_step <= saturation_step + saturation_tol:
                    saturating.append(link)
                reserve = reserves.get(link, 0.0)
                if reserve > 0.0 and detour_members.get(link):
                    # Detour-borne growth hits the reserve before the
                    # link itself saturates.
                    candidate_step = (residual[link] - reserve) / len(members)
                    if candidate_step < saturation_step - saturation_tol:
                        saturation_step = candidate_step
                        saturation_tol = _EPS * (1.0 + candidate_step)
                        saturating = []
                        reserve_saturating = [link]
                    elif candidate_step <= saturation_step + saturation_tol:
                        reserve_saturating.append(link)
        step = max(0.0, min(demand_step, saturation_step))

        for link, members in carriers.items():
            residual[link] -= step * len(members)
        for flow_id in unfrozen:
            state = flows[flow_id]
            state.total += step
            state.subpaths[state.active].carried += step

        # Demand events.
        satisfied = [
            flow_id
            for flow_id in unfrozen
            if flows[flow_id].demand - flows[flow_id].total
            <= _rel_tol(flows[flow_id].total)
        ]
        for flow_id in satisfied:
            state = flows[flow_id]
            _leave(flow_id, state.subpaths[state.active].path)
            state.frozen = True
            state.freeze_reason = "demand"
            state.active = None
            unfrozen.discard(flow_id)

        # Saturation events: reroute or freeze affected flows.  A full
        # saturation affects every carrier of the link; a reserve
        # saturation (partial pooling) only its detour carriers.
        saturated = set()
        reserve_saturated = set()
        if (saturating or reserve_saturating) and saturation_step <= (
            demand_step + _rel_tol(demand_step)
        ):
            saturated = set(saturating)
            reserve_saturated = set(reserve_saturating) - saturated
            for link in saturated:
                residual[link] = 0.0
            for link in reserve_saturated:
                residual[link] = min(residual[link], reserves[link])
        if not saturated and not reserve_saturated and not satisfied:
            raise SimulationError("INRP allocation made no progress")
        if saturated or reserve_saturated:
            affected = sorted(
                {
                    flow_id
                    for link in saturated
                    for flow_id in carriers.get(link, ())
                }
                | {
                    flow_id
                    for link in reserve_saturated
                    for flow_id in detour_members.get(link, ())
                },
                key=arrival_order.__getitem__,
            )
            for flow_id in affected:
                state = flows[flow_id]
                if state.switches >= max_switches_per_flow or not _reroute(
                    flow_id, state
                ):
                    _leave(flow_id, state.subpaths[state.active].path)
                    state.frozen = True
                    state.freeze_reason = "no-detour"
                    state.active = None
                    unfrozen.discard(flow_id)

    rates = {flow_id: state.total for flow_id, state in flows.items()}
    splits = {
        flow_id: [
            (sub.path, sub.carried)
            for sub in state.subpaths
            if sub.carried > _EPS or sub is state.subpaths[0]
        ]
        for flow_id, state in flows.items()
    }
    switches = sum(state.switches for state in flows.values())
    reasons = {flow_id: state.freeze_reason for flow_id, state in flows.items()}
    return MultipathAllocation(
        rates=rates, splits=splits, switches=switches, freeze_reasons=reasons
    )
