"""Vectorized CSR allocation kernel for progressive filling.

The incremental allocators of :mod:`repro.flowsim.allocation` made
recomputes *incremental* (only the dirty component is re-filled), but
each progressive-filling round inside that re-fill was still pure
Python iteration over dicts and sets.  This module turns one filling
round into a handful of numpy vector operations over a CSR-style
representation of the flow-link incidence:

- :class:`LinkSpace` interns link ids into a stable column space with
  capacity and saturation-floor vectors;
- :class:`IncidenceStore` maintains the flow -> link incidence as
  index arrays across add/remove churn: rows grow in place, removed
  rows are tombstoned (never compacted eagerly), and the arrays are
  compacted periodically once dead entries dominate — so the arrays
  are *maintained*, not rebuilt per event;
- :func:`maxmin_fill` runs exact progressive filling (the semantics of
  :func:`repro.flowsim.allocation.max_min_allocation`) where each
  round — find the bottleneck fair share, freeze saturated flows,
  debit link headroom — is ``np.minimum``/``np.bincount``-style vector
  arithmetic;
- :func:`inrp_fill` runs the INRP fluid filling (the semantics of
  :func:`repro.flowsim.multipath.inrp_allocation`): the filling rounds
  are vectorized, while the rare detour-replacement decisions reuse
  the scalar splice/option logic against the shared residual vector.

The two fills pick different column layouts.  :func:`maxmin_fill`
*compresses columns*: its working vectors cover only the links the
component actually touches, so a component of 30 flows on a 2000-link
map pays for ~100 columns per round.  :func:`inrp_fill` works
*full-width* over the global column space instead: per-round vector
ops over a few thousand columns cost about the same as over a few
hundred, and global column ids make the per-``(u, v)`` detour-option
arrays and per-path column arrays *persistent across fills* (built
once per topology and cached by the allocator), which removes the
per-fill rebuild work that dominated the reroute-heavy INRP profile.

Exactness is the contract: both fills perform the *same float
arithmetic in the same order per link and per flow* as their scalar
counterparts (level and residual accumulate identical step sequences),
so the results agree bit-for-bit except in degenerate tie-tolerance
corner cases, and the randomized churn tests plus ``verify=True``
cross-checks hold them to <= 1e-9 of the scratch solvers.
"""

from __future__ import annotations

import math
from typing import (
    AbstractSet,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import SimulationError
from repro.flowsim.multipath import MultipathAllocation, splice_detour
from repro.routing.detour import DetourTable
from repro.routing.paths import Path, cached_path_links

FlowId = Hashable
LinkId = Hashable

_EPS = 1e-9


class LinkSpace:
    """Stable link-id <-> column interning over a fixed topology.

    Built once per allocator from the capacity map; columns never move,
    so incidence rows stored by :class:`IncidenceStore` stay valid for
    the allocator's lifetime.
    """

    __slots__ = ("index", "links", "capacity", "floor", "num_links")

    def __init__(self, capacities: Mapping[LinkId, float]):
        self.index: Dict[LinkId, int] = {}
        links: List[LinkId] = []
        caps: List[float] = []
        for link, capacity in capacities.items():
            self.index[link] = len(links)
            links.append(link)
            caps.append(float(capacity))
        self.links = links
        self.capacity = np.asarray(caps, dtype=np.float64)
        # The scalar solvers' per-link saturation tolerance
        # (``_rel_tol(capacity)``): _EPS * (1 + |capacity|), flat _EPS
        # for infinite-capacity links.
        self.floor = _EPS * (1.0 + np.abs(self.capacity))
        self.floor[np.isinf(self.capacity)] = _EPS
        self.num_links = len(links)

    def columns(self, links: Sequence[LinkId]) -> np.ndarray:
        """Column ids for *links* (raises ``KeyError`` on unknown)."""
        index = self.index
        return np.fromiter(
            (index[link] for link in links), dtype=np.int64, count=len(links)
        )


def _grow(array: np.ndarray, needed: int) -> np.ndarray:
    """Capacity-doubling growth preserving the prefix."""
    capacity = len(array)
    if needed <= capacity:
        return array
    new_capacity = max(needed, capacity * 2, 16)
    grown = np.empty(new_capacity, dtype=array.dtype)
    grown[:capacity] = array
    return grown


class IncidenceStore:
    """Flow -> link incidence maintained as tombstoned CSR arrays.

    Rows are appended on :meth:`add` (entries land at the tail of one
    growing column buffer) and *tombstoned* on :meth:`remove` — the
    row's entries stay in place but are flagged dead, exactly the
    lazy-invalidation pattern the event core uses for its departure
    heap.  Once dead entries exceed ``compact_slack`` of the buffer
    (and the buffer is big enough for compaction to matter), the
    arrays are compacted in one vectorized gather and rows are
    renumbered; callers address rows only through flow ids, so the
    renumbering is invisible.

    ``demand`` rides along as a per-row vector so a component fill can
    gather demands without touching Python dicts.
    """

    def __init__(
        self,
        space: LinkSpace,
        compact_slack: float = 0.5,
        min_compact_nnz: int = 4096,
    ):
        if not 0.0 < compact_slack < 1.0:
            raise SimulationError(
                f"compact_slack must be in (0, 1), got {compact_slack}"
            )
        self.space = space
        self.compact_slack = compact_slack
        self.min_compact_nnz = min_compact_nnz
        self._cols = np.empty(256, dtype=np.int64)
        self._entry_alive = np.zeros(256, dtype=bool)
        self._nnz = 0
        self._dead_nnz = 0
        self._starts = np.empty(64, dtype=np.int64)
        self._lengths = np.empty(64, dtype=np.int64)
        self._demands = np.empty(64, dtype=np.float64)
        # Last rate stored per row (NaN = never filled); lets callers
        # diff a fresh fill against the previous one in vector form.
        self._last_rates = np.full(64, np.nan, dtype=np.float64)
        self._num_rows = 0
        self._dead_rows = 0
        self._row_of: Dict[FlowId, int] = {}
        self._flow_of: List[Optional[FlowId]] = []
        #: Number of compactions performed (observable for tests).
        self.compactions = 0

    def __len__(self) -> int:
        return self._num_rows - self._dead_rows

    def __contains__(self, flow: FlowId) -> bool:
        return flow in self._row_of

    @property
    def nnz(self) -> int:
        """Live entries currently in the column buffer."""
        return self._nnz - self._dead_nnz

    def add(self, flow: FlowId, cols: np.ndarray, demand: float) -> int:
        """Append a row for *flow*; returns its (current) row id."""
        if flow in self._row_of:
            raise SimulationError(f"flow {flow!r} already has a row")
        row = self._num_rows
        length = len(cols)
        self._starts = _grow(self._starts, row + 1)
        self._lengths = _grow(self._lengths, row + 1)
        self._demands = _grow(self._demands, row + 1)
        self._last_rates = _grow(self._last_rates, row + 1)
        self._cols = _grow(self._cols, self._nnz + length)
        self._entry_alive = _grow(self._entry_alive, self._nnz + length)
        self._starts[row] = self._nnz
        self._lengths[row] = length
        self._demands[row] = demand
        self._last_rates[row] = np.nan
        self._cols[self._nnz : self._nnz + length] = cols
        self._entry_alive[self._nnz : self._nnz + length] = True
        self._nnz += length
        self._num_rows += 1
        self._row_of[flow] = row
        self._flow_of.append(flow)
        return row

    def remove(self, flow: FlowId) -> None:
        """Tombstone the row of *flow*; compact when slack dominates."""
        row = self._row_of.pop(flow, None)
        if row is None:
            raise SimulationError(f"flow {flow!r} has no row")
        self._flow_of[row] = None
        start = self._starts[row]
        length = self._lengths[row]
        self._entry_alive[start : start + length] = False
        self._dead_nnz += int(length)
        self._dead_rows += 1
        if (
            self._nnz >= self.min_compact_nnz
            and self._dead_nnz > self.compact_slack * self._nnz
        ):
            self._compact()

    def set_demand(self, flow: FlowId, demand: float) -> None:
        self._demands[self._row_of[flow]] = demand

    def _compact(self) -> None:
        """Drop tombstoned rows/entries with one vectorized gather."""
        alive_rows = np.fromiter(
            (
                row
                for row in range(self._num_rows)
                if self._flow_of[row] is not None
            ),
            dtype=np.int64,
        )
        cols, lengths = self._gather_rows(alive_rows)
        count = len(alive_rows)
        self._cols = cols if len(cols) else np.empty(256, dtype=np.int64)
        self._nnz = int(lengths.sum()) if count else 0
        if len(self._cols) < 256:
            self._cols = _grow(self._cols, 256)
        self._entry_alive = np.ones(max(len(self._cols), 256), dtype=bool)
        self._dead_nnz = 0
        starts = np.zeros(max(count, 64), dtype=np.int64)
        if count:
            starts[1:count] = np.cumsum(lengths)[:-1]
        new_lengths = np.zeros(max(count, 64), dtype=np.int64)
        new_lengths[:count] = lengths
        new_demands = np.empty(max(count, 64), dtype=np.float64)
        new_demands[:count] = self._demands[alive_rows]
        new_last = np.full(max(count, 64), np.nan, dtype=np.float64)
        new_last[:count] = self._last_rates[alive_rows]
        flow_of = [self._flow_of[row] for row in alive_rows]
        self._starts = starts
        self._lengths = new_lengths
        self._demands = new_demands
        self._last_rates = new_last
        self._flow_of = flow_of
        self._num_rows = count
        self._dead_rows = 0
        self._row_of = {flow: row for row, flow in enumerate(flow_of)}
        self.compactions += 1

    def _gather_rows(
        self, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated column ids + per-row lengths for *rows*.

        Fully vectorized (the repeat/offset trick): no Python loop over
        rows, so gathering a component is O(component nnz) numpy work.
        """
        lengths = self._lengths[rows]
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), lengths
        starts = self._starts[rows]
        offsets = np.zeros(len(rows), dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        index = np.arange(total, dtype=np.int64) + np.repeat(
            starts - offsets, lengths
        )
        return self._cols[index], lengths

    def gather(
        self, flows: Sequence[FlowId], with_rows: bool = False
    ):
        """``(cols, row_lengths, demands)`` for *flows*, in order.

        With ``with_rows=True`` the (current) row ids come back as a
        fourth array, for callers that want to
        :meth:`diff_and_store_rates` after filling.
        """
        row_of = self._row_of
        rows = np.fromiter(
            (row_of[flow] for flow in flows), dtype=np.int64, count=len(flows)
        )
        cols, lengths = self._gather_rows(rows)
        demands = self._demands[rows].copy()
        if with_rows:
            return cols, lengths, demands, rows
        return cols, lengths, demands

    def diff_and_store_rates(
        self, rows: np.ndarray, rates: np.ndarray
    ) -> np.ndarray:
        """Positions in *rows* whose rate differs from the last fill.

        Stores *rates* as the new per-row baseline.  Rows never filled
        before hold NaN and therefore always report as changed, so a
        caller returning only the diff still reports every fresh flow.
        """
        prev = self._last_rates[rows]
        self._last_rates[rows] = rates
        return np.nonzero(rates != prev)[0]

    def live_flows(self) -> List[FlowId]:
        """Live flow ids in row order.

        Rows are appended in arrival order and compaction preserves
        relative order, so this is the population in arrival order —
        the invariant the INRP fill's reroute sequencing relies on.
        """
        return [flow for flow in self._flow_of if flow is not None]

    def check_consistency(self) -> None:
        """Invariant checks for tests: spans and tombstones line up."""
        live = 0
        for flow, row in self._row_of.items():
            if self._flow_of[row] is not flow and self._flow_of[row] != flow:
                raise SimulationError(f"row map corrupt for flow {flow!r}")
            start, length = self._starts[row], self._lengths[row]
            if not self._entry_alive[start : start + length].all():
                raise SimulationError(f"dead entries inside live row {row}")
            live += int(length)
        if live != self.nnz:
            raise SimulationError(
                f"live entry count drifted: {live} != {self.nnz}"
            )



def _maxmin_rounds(
    active_left,
    active_flag,
    order,
    num_ordered,
    demands_list,
    rates,
    starts_list,
    lengths_list,
    counts,
    residual,
    steps,
    sat_mask,
    scratch,
    lcols,
    entry_row,
    width,
):
    """The round loop of :func:`maxmin_fill` (split out so the
    caller can scope the errstate suppression around it)."""
    cursor = 0
    # Column-to-crossing-rows index, built lazily on first saturation:
    # rows of each column's entries, contiguous per column.  A row's
    # liveness is read off ``active_flag`` directly, so no per-entry
    # state needs maintaining when rows freeze.
    col_rows = None
    col_bounds = None
    level = 0.0
    # Conservative lower bound on the current saturation step.  After a
    # round of size ``step`` every carrying column's headroom shrinks by
    # at most ``step`` (freezes only raise it), so the bound decays by
    # ``step`` plus a slack dwarfing float rounding yet far below the
    # freeze tolerance.  While the bound exceeds the demand step the
    # exact divide+min is provably a no-op and is skipped; whenever the
    # bound cannot rule saturation out, the exact computation runs, so
    # every freeze decision is bit-identical to the always-exact form.
    sat_bound = -math.inf
    # Bound ufunc machinery once; the loop body is dispatch-bound.
    # Dividing the full width keeps the loop free of where= masking:
    # dead columns come out as inf (headroom left) or nan (0/0), both
    # invisible to fmin's reduction and to the <= saturation test, so
    # carrying columns see bit-identical values either way.
    np_divide = np.divide
    np_less_equal = np.less_equal
    np_multiply = np.multiply
    np_subtract = np.subtract
    fmin_reduce = np.fmin.reduce
    while active_left:
        while not active_flag[order[cursor]]:
            cursor += 1
        demand_step = demands_list[order[cursor]] - level
        if sat_bound > demand_step + _EPS * (1.0 + abs(demand_step)):
            saturation_step = math.inf
        else:
            np_divide(residual, counts, out=steps)
            saturation_step = float(fmin_reduce(steps))
            sat_bound = saturation_step
        step = min(demand_step, saturation_step)
        if step < -_EPS * (1.0 + abs(level)):
            raise SimulationError("negative fill step; inconsistent state")
        step = max(step, 0.0)
        level += step
        np_multiply(counts, step, out=scratch)
        np_subtract(residual, scratch, out=residual)
        if sat_bound != math.inf:  # +inf means no carrying column, ever
            sat_bound = (sat_bound - step) - _EPS * (
                abs(sat_bound) + step + 1.0
            )
        tol = _EPS * (1.0 + abs(level))
        newly: List[int] = []
        while cursor < num_ordered:
            row = order[cursor]
            if not active_flag[row]:
                cursor += 1
                continue
            if demands_list[row] - level <= tol:
                newly.append(row)
                active_flag[row] = False
                cursor += 1
            else:
                break
        if (
            not math.isinf(saturation_step)
            and saturation_step
            <= demand_step + _EPS * (1.0 + abs(demand_step))
        ):
            # The division runs full-width, so dead columns hold inf
            # (headroom left, or zero carriers) or nan (0/0) — both
            # fail this <= test, and carrying columns see the same
            # values a masked divide would give them.
            np_less_equal(
                steps,
                saturation_step + _EPS * (1.0 + abs(saturation_step)),
                out=sat_mask,
            )
            sat_local = sat_mask.nonzero()[0]
            residual[sat_local] = 0.0
            if col_rows is None:
                col_rows = entry_row[np.argsort(lcols, kind="stable")]
                bounds_arr = np.zeros(width + 1, dtype=np.int64)
                np.cumsum(
                    np.bincount(lcols, minlength=width), out=bounds_arr[1:]
                )
                col_bounds = bounds_arr.tolist()
            for col in sat_local.tolist():
                for row in col_rows[
                    col_bounds[col] : col_bounds[col + 1]
                ].tolist():
                    if active_flag[row]:
                        newly.append(row)
                        active_flag[row] = False
        if not newly:
            raise SimulationError("progressive filling made no progress")
        if len(newly) == 1:
            row = newly[0]
            demand = demands_list[row]
            rates[row] = level if level < demand else demand
            lo = starts_list[row]
            dead = lcols[lo : lo + lengths_list[row]]
        else:
            segments = []
            for row in newly:
                demand = demands_list[row]
                rates[row] = level if level < demand else demand
                lo = starts_list[row]
                segments.append(lcols[lo : lo + lengths_list[row]])
            dead = np.concatenate(segments)
        np.subtract(
            counts,
            np.bincount(dead, minlength=width),
            out=counts,
        )
        active_left -= len(newly)
    return np.asarray(rates, dtype=np.float64)



def maxmin_fill(
    space: LinkSpace,
    cols: np.ndarray,
    row_lengths: np.ndarray,
    demands: np.ndarray,
) -> np.ndarray:
    """Exact progressive filling, one vector round per freeze event.

    Semantics of :func:`repro.flowsim.allocation.max_min_allocation`
    over the rows described by ``(cols, row_lengths, demands)``: all
    unfrozen rows grow at one common level; each round takes the next
    demand or saturation event, debits every carrying link by
    ``step * carriers``, freezes satisfied rows and every row crossing
    a saturating link.  Returns the per-row rate vector.

    Columns are compressed to the links actually present in ``cols``,
    so per-round cost scales with the component, not the topology.
    Demand events come from a sorted cursor and freezes are applied
    row-by-row, so a round costs O(width) plus work proportional to
    what actually froze — not O(rows + nnz) like a full-mask sweep.
    Every floating-point expression matches the mask-sweep form
    operation for operation, so the returned rates are bit-identical.
    """
    num_rows = len(row_lengths)
    rates_arr = np.zeros(num_rows, dtype=np.float64)
    demands = np.asarray(demands, dtype=np.float64)
    row_lengths = np.asarray(row_lengths, dtype=np.int64)
    active = (row_lengths > 0) & (demands > _EPS)
    inactive = ~active
    rates_arr[inactive] = demands[inactive]
    if not active.any():
        return rates_arr
    # Local column space: only the component's links.
    unique_cols, lcols = np.unique(np.asarray(cols), return_inverse=True)
    width = len(unique_cols)
    entry_row = np.repeat(np.arange(num_rows, dtype=np.int64), row_lengths)
    counts = np.bincount(lcols[active[entry_row]], minlength=width).astype(
        np.float64
    )
    residual = space.capacity[unique_cols].copy()
    steps = np.empty(width, dtype=np.float64)
    sat_mask = np.empty(width, dtype=bool)
    scratch = np.empty(width, dtype=np.float64)
    row_starts = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(row_lengths, out=row_starts[1:])
    # Demand events in sorted order: min over active demands is a
    # cursor walk, and (subtraction being monotone) the frozen prefix
    # is exactly the rows the full-mask comparison would freeze.
    act_rows = np.flatnonzero(active)
    order = act_rows[np.argsort(demands[act_rows], kind="stable")].tolist()
    num_ordered = len(order)
    active_left = num_ordered
    # Python-native mirrors for the scalar-indexed hot path; the numpy
    # arrays keep serving the vector ops.
    demands_list = demands.tolist()
    active_flag = active.tolist()
    rates = rates_arr.tolist()
    starts_list = row_starts.tolist()
    lengths_list = row_lengths.tolist()
    # Full-width division inside the round loop leaves inf (headroom,
    # zero carriers) or nan (0/0 on a drained column) in dead slots;
    # suppress just those warnings around the loop.
    err_state = np.errstate(divide="ignore", invalid="ignore")
    err_state.__enter__()
    try:
        return _maxmin_rounds(
            active_left,
            active_flag,
            order,
            num_ordered,
            demands_list,
            rates,
            starts_list,
            lengths_list,
            counts,
            residual,
            steps,
            sat_mask,
            scratch,
            lcols,
            entry_row,
            width,
        )
    finally:
        err_state.__exit__(None, None, None)


def inrp_fill(
    space: LinkSpace,
    flow_ids: Sequence[FlowId],
    paths: Sequence[Path],
    cols: np.ndarray,
    row_lengths: np.ndarray,
    demands: np.ndarray,
    detour_table: DetourTable,
    max_replacements: int = 2,
    max_switches_per_flow: int = 16,
    in_reach: Optional[AbstractSet[int]] = None,
    pinned: Optional[Sequence[Tuple[int, float]]] = None,
    capacity_count: Optional[int] = None,
    option_cache: Optional[Dict] = None,
    path_cols_cache: Optional[Dict] = None,
) -> MultipathAllocation:
    """INRP fluid allocation with vectorized filling rounds.

    Semantics of :func:`repro.flowsim.multipath.inrp_allocation` over
    the flows given *in arrival order*: every unfrozen flow grows its
    active sub-path at the common level; a saturation event reroutes
    the affected flows (oldest first) through the scalar detour-splice
    logic reading the shared residual vector; only flows with no
    usable detour freeze.

    The working vectors span the full column space (one slot per
    topology link): a per-round numpy pass over a few thousand floats
    costs about as much as one over a hundred, and global columns make
    the per-(u, v) detour-option arrays and the per-path column arrays
    *persistent across fills* — the caches are built once per
    topology, not once per recompute.

    ``in_reach`` names the columns of the component-restricted
    capacity map of the scalar path; the fill only uses it to validate
    ``pinned``, because by the closure invariant (every link a
    component fill can read lies inside some member's closure, hence
    inside the reach) the restriction itself is unobservable.
    ``pinned`` debits
    ``(column, used)`` pairs from starting residuals (the
    ``pinned_usage`` guard of the incremental allocator);
    ``capacity_count`` sizes the non-convergence guard like the scalar
    ``len(capacities)``.  ``option_cache`` and ``path_cols_cache``
    memoize per-(u, v) detour option columns and per-path column
    arrays across fills — pass persistent dicts when calling
    repeatedly over one topology.
    """
    num_flows = len(flow_ids)
    demands = np.asarray(demands, dtype=np.float64)
    row_lengths = np.asarray(row_lengths, dtype=np.int64)
    if num_flows and bool((demands < 0).any()):
        bad = int(np.argmax(demands < 0))
        raise SimulationError(f"flow {flow_ids[bad]!r} has negative demand")
    if option_cache is None:
        option_cache = {}
    if path_cols_cache is None:
        path_cols_cache = {}
    index = space.index
    num_links = space.num_links
    floors = space.floor  # read-only view, never mutated

    residual = space.capacity.copy()
    if pinned:
        for col, used in pinned:
            if used < 0:
                raise SimulationError(
                    f"negative pinned usage on link column {col}"
                )
            if in_reach is not None and col not in in_reach:
                raise SimulationError(
                    f"pinned usage on unknown link column {col}"
                )
            residual[col] = max(residual[col] - used, 0.0)
    steps = np.empty(num_links, dtype=np.float64)

    # --- Bulk row/entry setup (arrival order == row order). ---
    no_path = row_lengths == 0
    pre_frozen = no_path | (demands <= _EPS)
    unfrozen = ~pre_frozen
    totals = np.zeros(num_flows, dtype=np.float64)
    totals[no_path] = demands[no_path]
    reasons = [""] * num_flows
    for flow in np.flatnonzero(pre_frozen):
        reasons[flow] = "demand"
    e_cols = np.asarray(cols, dtype=np.int64).copy()
    e_flow = np.repeat(np.arange(num_flows, dtype=np.int64), row_lengths)
    e_active = unfrozen[e_flow]
    e_nnz = len(e_cols)
    counts = np.bincount(e_cols[e_active], minlength=num_links)
    offsets = np.zeros(num_flows, dtype=np.int64)
    if num_flows:
        np.cumsum(row_lengths[:-1], out=offsets[1:])
    sub_start: List[int] = offsets.tolist()
    sub_len: List[int] = row_lengths.tolist()
    sub_path: List[Path] = list(paths)
    sub_repl: List[int] = [0] * num_flows
    carried = np.zeros(max(num_flows, 16), dtype=np.float64)
    num_rows = num_flows
    active_row = np.where(
        unfrozen, np.arange(num_flows, dtype=np.int64), -1
    )
    rows_of_flow: List[List[int]] = [[flow] for flow in range(num_flows)]
    switches = np.zeros(num_flows, dtype=np.int64)

    def _append_row(
        flow: int, path: Path, lcols: np.ndarray, replacements: int
    ) -> int:
        nonlocal e_cols, e_flow, e_active, e_nnz, num_rows, carried
        row = num_rows
        length = len(lcols)
        e_cols = _grow(e_cols, e_nnz + length)
        e_flow = _grow(e_flow, e_nnz + length)
        e_active = _grow(e_active, e_nnz + length)
        e_cols[e_nnz : e_nnz + length] = lcols
        e_flow[e_nnz : e_nnz + length] = flow
        e_active[e_nnz : e_nnz + length] = True
        sub_start.append(e_nnz)
        sub_len.append(length)
        sub_path.append(path)
        sub_repl.append(replacements)
        carried = _grow(carried, row + 1)
        carried[row] = 0.0
        e_nnz += length
        num_rows += 1
        rows_of_flow[flow].append(row)
        counts[lcols] += 1
        return row

    # Row retirement (freezes and reroute switches) is batched: rows
    # queue up here and one gather + bincount at the end of the round
    # clears their entries and carrier counts.  Nothing reads
    # ``e_active``/``counts`` between the queueing and the flush
    # (steps come from the round start, spare checks read ``residual``),
    # so the deferral is invisible to the filling semantics.
    dead_rows: List[int] = []

    def _flush_dead() -> None:
        count = len(dead_rows)
        if not count:
            return
        if count <= 8:
            # Typical rounds retire a handful of rows; per-row slice
            # updates beat assembling the gather index arrays.
            for row in dead_rows:
                start, length = sub_start[row], sub_len[row]
                if not length:
                    continue
                e_active[start : start + length] = False
                np.subtract.at(counts, e_cols[start : start + length], 1)
            dead_rows.clear()
            return
        starts = np.fromiter(
            (sub_start[row] for row in dead_rows), dtype=np.int64, count=count
        )
        lengths = np.fromiter(
            (sub_len[row] for row in dead_rows), dtype=np.int64, count=count
        )
        total = int(lengths.sum())
        dead_rows.clear()
        if not total:
            return
        offsets = np.zeros(count, dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        entry = np.arange(total, dtype=np.int64) + np.repeat(
            starts - offsets, lengths
        )
        dead_cols = e_cols[entry]
        e_active[entry] = False
        np.subtract(
            counts, np.bincount(dead_cols, minlength=num_links), out=counts
        )

    def _option_state(u, v) -> List:
        """Persistent per-(u, v) option arrays, built once per topology:
        ``[entries, flat_cols, starts, floors_arr]`` where *entries* is
        the ``(option, cols, floor)`` list and the arrays let one
        ``minimum.reduceat`` read every option's spare at once.

        No per-fill pruning state is needed: residual capacity only
        ever *decreases* within a fill (growth debits, saturation pins
        to zero, switches never credit back), so an option at or below
        its floor excludes itself from every later spare check too.
        """
        key = (u, v)
        state = option_cache.get(key)
        if state is None:
            entries = []
            for option in detour_table.options(u, v):
                olinks = cached_path_links(tuple(option))
                ocols = tuple(index[link] for link in olinks)
                ofloor = max(floors[col] for col in ocols)
                entries.append((option, ocols, ofloor, frozenset(option[1:-1])))
            flat = np.fromiter(
                (col for entry in entries for col in entry[1]),
                dtype=np.int64,
            )
            lengths = np.fromiter(
                (len(entry[1]) for entry in entries),
                dtype=np.int64,
                count=len(entries),
            )
            starts = np.zeros(len(entries), dtype=np.int64)
            if len(entries):
                np.cumsum(lengths[:-1], out=starts[1:])
            floors_arr = np.fromiter(
                (entry[2] for entry in entries),
                dtype=np.float64,
                count=len(entries),
            )
            state = [entries, flat, starts, floors_arr]
            option_cache[key] = state
        return state

    # Residual capacity never changes *within* a saturation round
    # (splices and freezes defer their bookkeeping to the end-of-round
    # flush), so per-(u, v) spare vectors are round-constant: every
    # affected flow hitting the same saturated link reads the same
    # spares.  Cache them per round (keyed by the round counter),
    # together with the *unconstrained* winner of the scalar running-
    # max loop.  If that winner's interior nodes are disjoint from a
    # caller's exclusion set it is also the constrained winner —
    # excluding non-winning options can only lower the running max,
    # and ``x + _EPS*(1+|x|)`` is monotone, so every acceptance that
    # happened without exclusions still happens with them — which
    # makes the common case O(1).
    round_spares: Dict[Tuple[Hashable, Hashable], Tuple] = {}
    # Per-fill surviving options per (u, v): residual only decreases
    # within a fill, so an option at or below its floor is dead for
    # the rest of the fill and its columns drop out of every later
    # spare refresh (freeze-heavy late rounds then cost O(1) here).
    fill_options: Dict[Tuple[Hashable, Hashable], List] = {}

    def _best_option(u, v, exclude) -> Optional[Path]:
        key = (u, v)
        cached = round_spares.get(key)
        if cached is None or cached[0] != guard:
            state = fill_options.get(key)
            if state is None:
                entries, flat, starts, floors_arr = _option_state(u, v)
                state = [
                    entries,
                    list(range(len(entries))),
                    flat,
                    starts,
                    floors_arr,
                ]
                fill_options[key] = state
            entries, positions, flat, starts, floors_arr = state
            live_spares = None
            if positions:
                spares = np.minimum.reduceat(residual[flat], starts)
                live = spares > floors_arr
                if live.all():
                    live_spares = spares.tolist()
                else:
                    keep = np.flatnonzero(live)
                    positions = [positions[i] for i in keep]
                    live_spares = spares[keep].tolist()
                    cols_per_option = [entries[p][1] for p in positions]
                    flat = np.fromiter(
                        (c for cols in cols_per_option for c in cols),
                        dtype=np.int64,
                    )
                    lengths = np.fromiter(
                        (len(cols) for cols in cols_per_option),
                        dtype=np.int64,
                        count=len(cols_per_option),
                    )
                    starts = np.zeros(len(cols_per_option), dtype=np.int64)
                    if len(cols_per_option):
                        np.cumsum(lengths[:-1], out=starts[1:])
                    floors_arr = np.fromiter(
                        (entries[p][2] for p in positions),
                        dtype=np.float64,
                        count=len(positions),
                    )
                    state[1:] = [positions, flat, starts, floors_arr]
            winner = None
            winner_interior = None
            best_spare = -1.0
            if positions:
                for spot, position in enumerate(positions):
                    spare = live_spares[spot]
                    if spare > best_spare + _EPS * (1.0 + abs(best_spare)):
                        entry = entries[position]
                        winner, winner_interior = entry[0], entry[3]
                        best_spare = spare
            cached = (
                guard,
                entries,
                positions,
                live_spares,
                winner,
                winner_interior,
            )
            round_spares[key] = cached
        _, entries, positions, live_spares, winner, winner_interior = cached
        if winner is None:
            return None
        if winner_interior.isdisjoint(exclude):
            return winner
        best: Optional[Path] = None
        best_spare = -1.0
        for spot, position in enumerate(positions):
            entry = entries[position]
            if not entry[3].isdisjoint(exclude):
                continue
            spare = live_spares[spot]
            # Relative tie tolerance, as in the scalar `_best_option`.
            if spare > best_spare + _EPS * (1.0 + abs(best_spare)):
                best, best_spare = entry[0], spare
        return best

    def _path_cols(path: Path) -> Tuple[np.ndarray, List[int]]:
        """Column ids per (sub-)path — ``(array, list)`` — persistent
        across fills and shared across flows with the same route.  The
        array feeds the incidence append; the plain list feeds the
        reroute walk's saturation scan (paths are ~a handful of links,
        where a Python set-membership scan beats numpy dispatch)."""
        pc = path_cols_cache.get(path)
        if pc is None:
            links = cached_path_links(path)
            arr = np.fromiter(
                (index[link] for link in links),
                dtype=np.int64,
                count=len(links),
            )
            pc = (arr, arr.tolist())
            path_cols_cache[path] = pc
        return pc

    # The reroute walk below is a pure function of the round's frozen
    # residual: given (path, replacements) it always splices the same
    # detours in the same order.  Affected flows sharing a route share
    # the walk, so the whole outcome is memoized per round alongside
    # the saturated-column set (both rebuilt in the saturation block).
    sat_cols: AbstractSet[int] = frozenset()
    reroute_memo: Dict[Tuple[Path, int], Optional[Tuple[Path, int]]] = {}

    def _walk(
        candidate: Path, replacements: int
    ) -> Optional[Tuple[Path, int]]:
        """Splice detours until nothing on ``candidate`` is saturated;
        ``None`` means the flow must freeze."""
        cols_list = _path_cols(candidate)[1]
        while True:
            position = -1
            for position_candidate, col in enumerate(cols_list):
                if col in sat_cols:
                    position = position_candidate
                    break
            if position < 0:
                return candidate, replacements
            if replacements >= max_replacements:
                return None
            option = _best_option(
                candidate[position], candidate[position + 1], candidate
            )
            if option is None:
                return None
            spliced = splice_detour(candidate, position, option)
            if spliced is None:
                return None
            candidate = spliced
            replacements += 1
            cols_list = _path_cols(candidate)[1]

    _MISS = object()

    def _reroute(flow: int) -> bool:
        """Move the flow's growth off saturated links; False = freeze."""
        row = int(active_row[flow])
        path = sub_path[row]
        replacements = sub_repl[row]
        key = (path, replacements)
        outcome = reroute_memo.get(key, _MISS)
        if outcome is _MISS:
            outcome = _walk(path, replacements)
            reroute_memo[key] = outcome
        if outcome is None:
            return False
        candidate, replacements = outcome
        if candidate == path:
            return True  # nothing saturated after all
        dead_rows.append(row)
        new_row = _append_row(
            flow, candidate, _path_cols(candidate)[0], replacements
        )
        active_row[flow] = new_row
        switches[flow] += 1
        return True

    def _freeze(flow: int, reason: str) -> None:
        dead_rows.append(int(active_row[flow]))
        active_row[flow] = -1
        unfrozen[flow] = False
        reasons[flow] = reason

    guard = 0
    links_in_play = (
        capacity_count if capacity_count is not None else space.num_links
    )
    max_iterations = 16 * (num_flows + links_in_play) + 64
    while unfrozen.any():
        guard += 1
        if guard > max_iterations:
            raise SimulationError("INRP allocation did not converge")
        demand_step = float(np.min((demands - totals)[unfrozen]))
        carrying = counts > 0
        steps.fill(np.inf)
        np.divide(residual, counts, out=steps, where=carrying)
        saturation_step = float(steps.min()) if num_links else math.inf
        step = max(0.0, min(demand_step, saturation_step))

        residual -= step * counts
        totals[unfrozen] += step
        carried[active_row[unfrozen]] += step

        # Demand events.
        satisfied = unfrozen & (
            demands - totals <= _EPS * (1.0 + np.abs(totals))
        )
        satisfied_flows = np.flatnonzero(satisfied)
        for flow in satisfied_flows:
            _freeze(int(flow), "demand")

        # Saturation events: reroute or freeze affected flows.
        any_saturated = False
        if not math.isinf(saturation_step) and saturation_step <= (
            demand_step + _EPS * (1.0 + abs(demand_step))
        ):
            saturated = carrying & (
                steps
                <= saturation_step + _EPS * (1.0 + abs(saturation_step))
            )
            if saturated.any():
                any_saturated = True
                residual[saturated] = 0.0
                sat_cols = set(np.flatnonzero(residual <= floors).tolist())
                reroute_memo.clear()
                hit = e_active[:e_nnz] & saturated[e_cols[:e_nnz]]
                affected = np.unique(e_flow[:e_nnz][hit])
                # ``affected`` is ascending == arrival order: older
                # flows reroute first (the id-type invariant).  Flows
                # demand-frozen above still carry live entries until
                # the end-of-round flush, so re-check here.
                for flow in affected:
                    flow = int(flow)
                    if not unfrozen[flow]:
                        continue
                    if switches[
                        flow
                    ] >= max_switches_per_flow or not _reroute(flow):
                        _freeze(flow, "no-detour")
        _flush_dead()
        if not any_saturated and not len(satisfied_flows):
            raise SimulationError("INRP allocation made no progress")

    rates = {flow_ids[flow]: float(totals[flow]) for flow in range(num_flows)}
    splits: Dict[FlowId, List[Tuple[Path, float]]] = {}
    for flow in range(num_flows):
        rows = rows_of_flow[flow]
        splits[flow_ids[flow]] = [
            (sub_path[row], float(carried[row]))
            for row in rows
            if carried[row] > _EPS or row == rows[0]
        ]
    return MultipathAllocation(
        rates=rates,
        splits=splits,
        switches=int(switches.sum()),
        freeze_reasons={
            flow_ids[flow]: reasons[flow] for flow in range(num_flows)
        },
    )
