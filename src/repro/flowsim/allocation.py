"""Exact max-min fair allocation by progressive filling.

This is the classic fluid model of fair sharing used by flow-level
simulators: all unsatisfied flows grow at the same rate; a flow stops
growing when its demand is met or any link of its (single) path
saturates.  The implementation is event-driven (piecewise-linear in
the common fill level), so it is exact rather than epsilon-stepped.

The e2e behaviour the paper criticises falls out naturally: a flow's
rate is dictated by the *slowest link of its whole path*, and a flow
bottlenecked downstream leaves its upstream share to more fortunate
flows (Fig. 3 left: rates (2, 8) on the shared 10 Mbps link).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, Sequence, Set, Tuple

from repro.errors import SimulationError

FlowId = Hashable
LinkId = Hashable

_EPS = 1e-9


def _rel_tol(scale: float) -> float:
    """Tolerance proportional to the magnitudes in play."""
    if math.isinf(scale):
        return _EPS
    return _EPS * (1.0 + abs(scale))


def max_min_allocation(
    capacities: Mapping[LinkId, float],
    flow_links: Mapping[FlowId, Sequence[LinkId]],
    demands: Mapping[FlowId, float],
) -> Dict[FlowId, float]:
    """Max-min fair rates for single-path flows with demand caps.

    Parameters
    ----------
    capacities:
        Link capacity in bits/s per link id.
    flow_links:
        For every flow, the links its path traverses.  A flow with an
        empty link list (source == destination) gets its full demand.
    demands:
        Per-flow rate cap in bits/s (access-link limit).

    Returns
    -------
    rates:
        Max-min fair allocation; verified in the test suite with
        :func:`repro.metrics.fairness.max_min_violations`.
    """
    for flow in flow_links:
        if flow not in demands:
            raise SimulationError(f"flow {flow!r} has no demand")
        if demands[flow] < 0:
            raise SimulationError(f"flow {flow!r} has negative demand")

    rates: Dict[FlowId, float] = {}
    unfrozen: Set[FlowId] = set()
    for flow, links in flow_links.items():
        if not links or demands[flow] <= _EPS:
            rates[flow] = demands[flow]
        else:
            unfrozen.add(flow)

    link_members: Dict[LinkId, Set[FlowId]] = {}
    for flow in unfrozen:
        for link in flow_links[flow]:
            if link not in capacities:
                raise SimulationError(f"flow {flow!r} uses unknown link {link!r}")
            link_members.setdefault(link, set()).add(flow)

    residual: Dict[LinkId, float] = {
        link: float(capacities[link]) for link in link_members
    }
    level = 0.0  # common rate of all unfrozen flows

    while unfrozen:
        # Next demand event: the smallest unmet demand among growers.
        demand_step = min(demands[flow] - level for flow in unfrozen)
        # Next saturation event over links still carrying growers.  The
        # links attaining the minimum are recorded and frozen explicitly,
        # which keeps the algorithm robust at bits/s magnitudes where
        # absolute epsilons are meaningless.
        saturation_step = math.inf
        saturating: List[LinkId] = []
        for link, members in link_members.items():
            growers = len(members)
            if growers == 0:
                continue
            step = residual[link] / growers
            if step < saturation_step - _rel_tol(saturation_step):
                saturation_step = step
                saturating = [link]
            elif step <= saturation_step + _rel_tol(saturation_step):
                saturating.append(link)
        step = min(demand_step, saturation_step)
        if step < -_rel_tol(level):
            raise SimulationError("negative fill step; inconsistent state")
        step = max(step, 0.0)
        level += step
        for link, members in link_members.items():
            residual[link] -= step * len(members)

        frozen_now: List[FlowId] = []
        for flow in unfrozen:
            if demands[flow] - level <= _rel_tol(level):
                frozen_now.append(flow)
        if saturation_step <= demand_step + _rel_tol(demand_step):
            for link in saturating:
                residual[link] = 0.0
                frozen_now.extend(link_members[link])
        if not frozen_now:
            raise SimulationError("progressive filling made no progress")
        for flow in set(frozen_now):
            rates[flow] = min(level, demands[flow])
            unfrozen.discard(flow)
            for link in flow_links[flow]:
                members = link_members.get(link)
                if members is not None:
                    members.discard(flow)
    return rates


class IncrementalMaxMin:
    """Max-min fair rates maintained incrementally under flow churn.

    Max-min allocation decomposes over the connected components of the
    bipartite flow-link graph: flows that share no link (even
    transitively) cannot influence each other's rate.  This class
    exploits that: :meth:`add_flow` / :meth:`remove_flow` only mark the
    touched links dirty, and :meth:`recompute` re-runs progressive
    filling on the *dirty component closure alone*, leaving every other
    flow's rate untouched.  On an event-driven simulation this turns
    the per-event cost from O(all flows) into O(affected component).

    The returned rates are exactly those of
    :func:`max_min_allocation` from scratch (the test suite asserts
    equality on randomized churn sequences; ``verify=True`` re-checks
    after every recompute, for benchmarks and debugging).
    """

    def __init__(self, capacities: Mapping[LinkId, float], verify: bool = False):
        self._capacities: Dict[LinkId, float] = {
            link: float(capacity) for link, capacity in capacities.items()
        }
        self._flow_links: Dict[FlowId, Tuple[LinkId, ...]] = {}
        self._demands: Dict[FlowId, float] = {}
        self._members: Dict[LinkId, Set[FlowId]] = {}
        self._rates: Dict[FlowId, float] = {}
        self._dirty_links: Set[LinkId] = set()
        self._dirty_flows: Set[FlowId] = set()
        self._verify = verify

    def __len__(self) -> int:
        return len(self._flow_links)

    def __contains__(self, flow: FlowId) -> bool:
        return flow in self._flow_links

    @property
    def rates(self) -> Dict[FlowId, float]:
        """Current rate vector (a copy; call after :meth:`recompute`)."""
        return dict(self._rates)

    def add_flow(
        self, flow: FlowId, links: Sequence[LinkId], demand: float
    ) -> None:
        """Register an arriving flow; its component becomes dirty."""
        if flow in self._flow_links:
            raise SimulationError(f"flow {flow!r} already present")
        if demand < 0:
            raise SimulationError(f"flow {flow!r} has negative demand")
        links = tuple(links)
        for link in links:
            if link not in self._capacities:
                raise SimulationError(f"flow {flow!r} uses unknown link {link!r}")
        self._flow_links[flow] = links
        self._demands[flow] = float(demand)
        for link in links:
            self._members.setdefault(link, set()).add(flow)
            self._dirty_links.add(link)
        if not links:
            # Source == destination: unconstrained, never shares a link.
            self._dirty_flows.add(flow)

    def remove_flow(self, flow: FlowId) -> None:
        """Deregister a departing flow; its component becomes dirty."""
        links = self._flow_links.pop(flow, None)
        if links is None:
            raise SimulationError(f"flow {flow!r} is not present")
        del self._demands[flow]
        self._rates.pop(flow, None)
        self._dirty_flows.discard(flow)
        for link in links:
            members = self._members.get(link)
            if members is not None:
                members.discard(flow)
                if not members:
                    del self._members[link]
            self._dirty_links.add(link)

    def recompute(self) -> Dict[FlowId, float]:
        """Re-fill the dirty components; return their new rate vectors.

        The returned mapping covers exactly the flows whose rate *may*
        have changed since the previous call (the closure of all links
        touched by add/remove).  Flows outside it keep their previous
        rates.  Returns ``{}`` when nothing is dirty.
        """
        if not self._dirty_links and not self._dirty_flows:
            return {}
        component: Set[FlowId] = set()
        stack: List[LinkId] = [
            link for link in self._dirty_links if link in self._members
        ]
        seen_links: Set[LinkId] = set(stack)
        while stack:
            link = stack.pop()
            for flow in self._members[link]:
                if flow in component:
                    continue
                component.add(flow)
                for other in self._flow_links[flow]:
                    if other not in seen_links:
                        seen_links.add(other)
                        stack.append(other)
        changed: Dict[FlowId, float] = {}
        for flow in self._dirty_flows:
            changed[flow] = self._demands[flow]
        if component:
            changed.update(
                max_min_allocation(
                    self._capacities,
                    {flow: self._flow_links[flow] for flow in component},
                    {flow: self._demands[flow] for flow in component},
                )
            )
        self._rates.update(changed)
        self._dirty_links.clear()
        self._dirty_flows.clear()
        if self._verify:
            self._check_against_scratch()
        return changed

    def _check_against_scratch(self) -> None:
        scratch = max_min_allocation(
            self._capacities, self._flow_links, self._demands
        )
        for flow, rate in scratch.items():
            if abs(self._rates.get(flow, math.nan) - rate) > 1e-6 * (1.0 + abs(rate)):
                raise SimulationError(
                    f"incremental rate for flow {flow!r} diverged: "
                    f"{self._rates.get(flow)} != {rate}"
                )
