"""Exact max-min fair allocation by progressive filling.

This is the classic fluid model of fair sharing used by flow-level
simulators: all unsatisfied flows grow at the same rate; a flow stops
growing when its demand is met or any link of its (single) path
saturates.  The implementation is event-driven (piecewise-linear in
the common fill level), so it is exact rather than epsilon-stepped.

The e2e behaviour the paper criticises falls out naturally: a flow's
rate is dictated by the *slowest link of its whole path*, and a flow
bottlenecked downstream leaves its upstream share to more fortunate
flows (Fig. 3 left: rates (2, 8) on the shared 10 Mbps link).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, Sequence, Set

from repro.errors import SimulationError

FlowId = Hashable
LinkId = Hashable

_EPS = 1e-9


def _rel_tol(scale: float) -> float:
    """Tolerance proportional to the magnitudes in play."""
    if math.isinf(scale):
        return _EPS
    return _EPS * (1.0 + abs(scale))


def max_min_allocation(
    capacities: Mapping[LinkId, float],
    flow_links: Mapping[FlowId, Sequence[LinkId]],
    demands: Mapping[FlowId, float],
) -> Dict[FlowId, float]:
    """Max-min fair rates for single-path flows with demand caps.

    Parameters
    ----------
    capacities:
        Link capacity in bits/s per link id.
    flow_links:
        For every flow, the links its path traverses.  A flow with an
        empty link list (source == destination) gets its full demand.
    demands:
        Per-flow rate cap in bits/s (access-link limit).

    Returns
    -------
    rates:
        Max-min fair allocation; verified in the test suite with
        :func:`repro.metrics.fairness.max_min_violations`.
    """
    for flow in flow_links:
        if flow not in demands:
            raise SimulationError(f"flow {flow!r} has no demand")
        if demands[flow] < 0:
            raise SimulationError(f"flow {flow!r} has negative demand")

    rates: Dict[FlowId, float] = {}
    unfrozen: Set[FlowId] = set()
    for flow, links in flow_links.items():
        if not links or demands[flow] <= _EPS:
            rates[flow] = demands[flow]
        else:
            unfrozen.add(flow)

    link_members: Dict[LinkId, Set[FlowId]] = {}
    for flow in unfrozen:
        for link in flow_links[flow]:
            if link not in capacities:
                raise SimulationError(f"flow {flow!r} uses unknown link {link!r}")
            link_members.setdefault(link, set()).add(flow)

    residual: Dict[LinkId, float] = {
        link: float(capacities[link]) for link in link_members
    }
    level = 0.0  # common rate of all unfrozen flows

    while unfrozen:
        # Next demand event: the smallest unmet demand among growers.
        demand_step = min(demands[flow] - level for flow in unfrozen)
        # Next saturation event over links still carrying growers.  The
        # links attaining the minimum are recorded and frozen explicitly,
        # which keeps the algorithm robust at bits/s magnitudes where
        # absolute epsilons are meaningless.
        saturation_step = math.inf
        saturating: List[LinkId] = []
        for link, members in link_members.items():
            growers = len(members)
            if growers == 0:
                continue
            step = residual[link] / growers
            if step < saturation_step - _rel_tol(saturation_step):
                saturation_step = step
                saturating = [link]
            elif step <= saturation_step + _rel_tol(saturation_step):
                saturating.append(link)
        step = min(demand_step, saturation_step)
        if step < -_rel_tol(level):
            raise SimulationError("negative fill step; inconsistent state")
        step = max(step, 0.0)
        level += step
        for link, members in link_members.items():
            residual[link] -= step * len(members)

        frozen_now: List[FlowId] = []
        for flow in unfrozen:
            if demands[flow] - level <= _rel_tol(level):
                frozen_now.append(flow)
        if saturation_step <= demand_step + _rel_tol(demand_step):
            for link in saturating:
                residual[link] = 0.0
                frozen_now.extend(link_members[link])
        if not frozen_now:
            raise SimulationError("progressive filling made no progress")
        for flow in set(frozen_now):
            rates[flow] = min(level, demands[flow])
            unfrozen.discard(flow)
            for link in flow_links[flow]:
                members = link_members.get(link)
                if members is not None:
                    members.discard(flow)
    return rates
