"""Exact max-min fair allocation by progressive filling.

This is the classic fluid model of fair sharing used by flow-level
simulators: all unsatisfied flows grow at the same rate; a flow stops
growing when its demand is met or any link of its (single) path
saturates.  The implementation is event-driven (piecewise-linear in
the common fill level), so it is exact rather than epsilon-stepped.

The e2e behaviour the paper criticises falls out naturally: a flow's
rate is dictated by the *slowest link of its whole path*, and a flow
bottlenecked downstream leaves its upstream share to more fortunate
flows (Fig. 3 left: rates (2, 8) on the shared 10 Mbps link).
"""

from __future__ import annotations

import math
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import SimulationError
from repro.flowsim import kernel as _kernel
from repro.flowsim.multipath import inrp_allocation
from repro.flowsim.multipath import _rel_tol as _fill_rel_tol
from repro.routing.detour import DetourTable
from repro.routing.paths import Path, cached_path_links

FlowId = Hashable
LinkId = Hashable

_EPS = 1e-9

_KERNELS = ("scalar", "vectorized")


def _check_kernel(kernel: str) -> str:
    if kernel not in _KERNELS:
        raise SimulationError(
            f"unknown kernel {kernel!r}; expected one of {', '.join(_KERNELS)}"
        )
    return kernel


def _rel_tol(scale: float) -> float:
    """Tolerance proportional to the magnitudes in play."""
    if math.isinf(scale):
        return _EPS
    return _EPS * (1.0 + abs(scale))


def max_min_allocation(
    capacities: Mapping[LinkId, float],
    flow_links: Mapping[FlowId, Sequence[LinkId]],
    demands: Mapping[FlowId, float],
) -> Dict[FlowId, float]:
    """Max-min fair rates for single-path flows with demand caps.

    Parameters
    ----------
    capacities:
        Link capacity in bits/s per link id.
    flow_links:
        For every flow, the links its path traverses.  A flow with an
        empty link list (source == destination) gets its full demand.
    demands:
        Per-flow rate cap in bits/s (access-link limit).

    Returns
    -------
    rates:
        Max-min fair allocation; verified in the test suite with
        :func:`repro.metrics.fairness.max_min_violations`.
    """
    for flow in flow_links:
        if flow not in demands:
            raise SimulationError(f"flow {flow!r} has no demand")
        if demands[flow] < 0:
            raise SimulationError(f"flow {flow!r} has negative demand")

    rates: Dict[FlowId, float] = {}
    unfrozen: Set[FlowId] = set()
    for flow, links in flow_links.items():
        if not links or demands[flow] <= _EPS:
            rates[flow] = demands[flow]
        else:
            unfrozen.add(flow)

    link_members: Dict[LinkId, Set[FlowId]] = {}
    for flow in unfrozen:
        for link in flow_links[flow]:
            if link not in capacities:
                raise SimulationError(f"flow {flow!r} uses unknown link {link!r}")
            link_members.setdefault(link, set()).add(flow)

    residual: Dict[LinkId, float] = {
        link: float(capacities[link]) for link in link_members
    }
    level = 0.0  # common rate of all unfrozen flows

    while unfrozen:
        # Next demand event: the smallest unmet demand among growers.
        demand_step = min(demands[flow] - level for flow in unfrozen)
        # Next saturation event over links still carrying growers.  The
        # links attaining the minimum are recorded and frozen explicitly,
        # which keeps the algorithm robust at bits/s magnitudes where
        # absolute epsilons are meaningless.
        saturation_step = math.inf
        saturating: List[LinkId] = []
        for link, members in link_members.items():
            growers = len(members)
            if growers == 0:
                continue
            step = residual[link] / growers
            if step < saturation_step - _rel_tol(saturation_step):
                saturation_step = step
                saturating = [link]
            elif step <= saturation_step + _rel_tol(saturation_step):
                saturating.append(link)
        step = min(demand_step, saturation_step)
        if step < -_rel_tol(level):
            raise SimulationError("negative fill step; inconsistent state")
        step = max(step, 0.0)
        level += step
        for link, members in link_members.items():
            residual[link] -= step * len(members)

        frozen_now: List[FlowId] = []
        for flow in unfrozen:
            if demands[flow] - level <= _rel_tol(level):
                frozen_now.append(flow)
        if saturation_step <= demand_step + _rel_tol(demand_step):
            for link in saturating:
                residual[link] = 0.0
                frozen_now.extend(link_members[link])
        if not frozen_now:
            raise SimulationError("progressive filling made no progress")
        for flow in set(frozen_now):
            rates[flow] = min(level, demands[flow])
            unfrozen.discard(flow)
            for link in flow_links[flow]:
                members = link_members.get(link)
                if members is not None:
                    members.discard(flow)
    return rates


class _ComponentTracker:
    """Amortized connectivity over the link-sharing relation.

    The scalar incremental cores re-discover the dirty component with a
    per-event BFS over the link-membership dicts — exact, but O(component
    incidence) of Python dict traffic on *every* event.  The vectorized
    kernel instead keeps a union-find over live flows: an arriving flow
    unions with one representative per link it touches (all flows that
    ever shared a link are provably in one class), a departing flow is
    merely unlinked from its class's member set, and the whole structure
    is rebuilt from the live population once departures since the last
    rebuild exceed ``slack`` of it.

    Between rebuilds a class may *over*-approximate the true component
    (a departed bridge flow leaves its neighbours merged).  That is
    exact by construction: a class is always a union of whole true
    components, and progressive filling decomposes over components —
    flows that share no link allocate independently, so re-filling a
    disconnected superset reproduces every member's rate bit-for-bit,
    at the cost of some redundant (never wrong) work.
    """

    __slots__ = (
        "_parent",
        "_size",
        "_members",
        "_link_rep",
        "_flow_links",
        "_removed",
        "slack",
        "rebuilds",
    )

    def __init__(self, slack: float = 0.25):
        self.slack = slack
        #: Number of full rebuilds performed (observable for tests).
        self.rebuilds = 0
        self._reset()

    def _reset(self) -> None:
        self._parent: Dict[FlowId, FlowId] = {}
        self._size: Dict[FlowId, int] = {}
        self._members: Dict[FlowId, Set[FlowId]] = {}
        self._link_rep: Dict[LinkId, FlowId] = {}
        self._flow_links: Dict[FlowId, Iterable[LinkId]] = {}
        self._removed = 0

    def _find(self, flow: FlowId) -> FlowId:
        parent = self._parent
        root = flow
        while parent[root] != root:
            root = parent[root]
        while parent[flow] != root:
            parent[flow], flow = root, parent[flow]
        return root

    def _union(self, a: FlowId, b: FlowId) -> None:
        root_a, root_b = self._find(a), self._find(b)
        if root_a == root_b:
            return
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._members[root_a].update(self._members.pop(root_b))

    def add(self, flow: FlowId, links: Iterable[LinkId]) -> None:
        """Register an arriving flow touching *links* (kept by
        reference; the caller must not mutate them afterwards)."""
        self._flow_links[flow] = links
        self._parent[flow] = flow
        self._size[flow] = 1
        self._members[flow] = {flow}
        link_rep = self._link_rep
        for link in links:
            rep = link_rep.get(link)
            if rep is None:
                link_rep[link] = flow
            else:
                self._union(flow, rep)

    def remove(self, flow: FlowId) -> None:
        """Unlink a departing flow; rebuild once staleness dominates."""
        del self._flow_links[flow]
        self._members[self._find(flow)].discard(flow)
        self._removed += 1
        if self._removed > max(32, int(self.slack * len(self._flow_links))):
            self._rebuild()

    def _rebuild(self) -> None:
        flow_links = self._flow_links
        self._reset()
        for flow, links in flow_links.items():
            self.add(flow, links)
        self.rebuilds += 1

    def component(self, links: Iterable[LinkId]) -> Set[FlowId]:
        """Union of the classes reachable from *links* (a superset of
        the true dirty component, closed under live connectivity)."""
        out: Set[FlowId] = set()
        seen_roots: Set[FlowId] = set()
        link_rep = self._link_rep
        for link in links:
            rep = link_rep.get(link)
            if rep is None:
                continue
            root = self._find(rep)
            if root not in seen_roots:
                seen_roots.add(root)
                out |= self._members[root]
        return out


class IncrementalMaxMin:
    """Max-min fair rates maintained incrementally under flow churn.

    Max-min allocation decomposes over the connected components of the
    bipartite flow-link graph: flows that share no link (even
    transitively) cannot influence each other's rate.  This class
    exploits that: :meth:`add_flow` / :meth:`remove_flow` only mark the
    touched links dirty, and :meth:`recompute` re-runs progressive
    filling on the *dirty component closure alone*, leaving every other
    flow's rate untouched.  On an event-driven simulation this turns
    the per-event cost from O(all flows) into O(affected component).

    The returned rates are exactly those of
    :func:`max_min_allocation` from scratch (the test suite asserts
    equality on randomized churn sequences; ``verify=True`` re-checks
    after every recompute, for benchmarks and debugging).
    """

    #: The simulator's adapter passes link tuples (not node paths).
    needs_paths = False

    def __init__(
        self,
        capacities: Mapping[LinkId, float],
        verify: bool = False,
        kernel: str = "scalar",
        compact_slack: float = 0.5,
        min_compact_nnz: int = 4096,
    ):
        self._capacities: Dict[LinkId, float] = {
            link: float(capacity) for link, capacity in capacities.items()
        }
        self._flow_links: Dict[FlowId, Tuple[LinkId, ...]] = {}
        self._demands: Dict[FlowId, float] = {}
        self._members: Dict[LinkId, Set[FlowId]] = {}
        self._rates: Dict[FlowId, float] = {}
        self._dirty_links: Set[LinkId] = set()
        self._dirty_flows: Set[FlowId] = set()
        self._verify = verify
        self._kernel = _check_kernel(kernel)
        if self._kernel == "vectorized":
            self._space: Optional[_kernel.LinkSpace] = _kernel.LinkSpace(
                self._capacities
            )
            self._store: Optional[_kernel.IncidenceStore] = (
                _kernel.IncidenceStore(
                    self._space,
                    compact_slack=compact_slack,
                    min_compact_nnz=min_compact_nnz,
                )
            )
            self._tracker: Optional[_ComponentTracker] = _ComponentTracker()
        else:
            self._space = None
            self._store = None
            self._tracker = None
        #: Worst relative incremental-vs-scratch rate deviation seen by
        #: ``verify=True`` (0.0 until the first verified recompute).
        self.max_verify_deviation = 0.0

    def __len__(self) -> int:
        return len(self._flow_links)

    def __contains__(self, flow: FlowId) -> bool:
        return flow in self._flow_links

    @property
    def rates(self) -> Dict[FlowId, float]:
        """Current rate vector (a copy; call after :meth:`recompute`)."""
        return dict(self._rates)

    def add_flow(
        self, flow: FlowId, links: Sequence[LinkId], demand: float
    ) -> None:
        """Register an arriving flow; its component becomes dirty."""
        if flow in self._flow_links:
            raise SimulationError(f"flow {flow!r} already present")
        if demand < 0:
            raise SimulationError(f"flow {flow!r} has negative demand")
        links = tuple(links)
        for link in links:
            if link not in self._capacities:
                raise SimulationError(f"flow {flow!r} uses unknown link {link!r}")
        self._flow_links[flow] = links
        self._demands[flow] = float(demand)
        for link in links:
            self._members.setdefault(link, set()).add(flow)
            self._dirty_links.add(link)
        if not links:
            # Source == destination: unconstrained, never shares a link.
            self._dirty_flows.add(flow)
        if self._store is not None:
            # The scalar solver collapses duplicate links via member
            # sets; the kernel counts entries, so dedupe defensively.
            if len(links) != len(set(links)):
                links = tuple(dict.fromkeys(links))
            self._store.add(flow, self._space.columns(links), float(demand))
            if links:
                self._tracker.add(flow, links)

    def remove_flow(self, flow: FlowId) -> None:
        """Deregister a departing flow; its component becomes dirty."""
        links = self._flow_links.pop(flow, None)
        if links is None:
            raise SimulationError(f"flow {flow!r} is not present")
        del self._demands[flow]
        self._rates.pop(flow, None)
        self._dirty_flows.discard(flow)
        for link in links:
            members = self._members.get(link)
            if members is not None:
                members.discard(flow)
                if not members:
                    del self._members[link]
            self._dirty_links.add(link)
        if self._store is not None:
            self._store.remove(flow)
            if links:
                self._tracker.remove(flow)

    def recompute(self, full: bool = False) -> Dict[FlowId, float]:
        """Re-fill the dirty components; return their new rate vectors.

        The returned mapping covers exactly the flows whose rate *may*
        have changed since the previous call (the closure of all links
        touched by add/remove).  Flows outside it keep their previous
        rates.  Returns ``{}`` when nothing is dirty.

        With ``full=True`` the whole population is re-filled in one
        pass, skipping the dirty-component search entirely.  The
        adaptive ``core="auto"`` of the simulator uses this when the
        dirty component keeps spanning the active set (deep overload),
        where the component BFS and subset copies are pure overhead.
        """
        if self._kernel == "vectorized":
            return self._recompute_vectorized(full)
        if full:
            changed = max_min_allocation(
                self._capacities, self._flow_links, self._demands
            )
            self._rates = dict(changed)
            self._dirty_links.clear()
            self._dirty_flows.clear()
            if self._verify:
                self._check_against_scratch()
            return changed
        if not self._dirty_links and not self._dirty_flows:
            return {}
        component = self._dirty_component()
        changed: Dict[FlowId, float] = {}
        for flow in self._dirty_flows:
            changed[flow] = self._demands[flow]
        if component:
            changed.update(
                max_min_allocation(
                    self._capacities,
                    {flow: self._flow_links[flow] for flow in component},
                    {flow: self._demands[flow] for flow in component},
                )
            )
        self._rates.update(changed)
        self._dirty_links.clear()
        self._dirty_flows.clear()
        if self._verify:
            self._check_against_scratch()
        return changed

    def _recompute_vectorized(
        self, full: bool = False
    ) -> Dict[FlowId, float]:
        """The ``kernel="vectorized"`` re-fill: component selection via
        the amortized union-find tracker, filling via
        :func:`repro.flowsim.kernel.maxmin_fill`.  Same contract and
        (to <= 1e-9) same results as the scalar path; the tracker may
        return a superset of the true dirty component, which re-fills
        to identical rates (components allocate independently)."""
        store = self._store
        if full:
            flows: List[FlowId] = store.live_flows()
            changed: Dict[FlowId, float] = {}
        else:
            if not self._dirty_links and not self._dirty_flows:
                return {}
            flows = list(self._tracker.component(self._dirty_links))
            changed = {
                flow: self._demands[flow] for flow in self._dirty_flows
            }
        if flows:
            cols, lengths, demands, rows = store.gather(flows, with_rows=True)
            rates = _kernel.maxmin_fill(self._space, cols, lengths, demands)
            diff = store.diff_and_store_rates(rows, rates)
            if full:
                changed.update(zip(flows, rates.tolist()))
            else:
                # Only the rows the fill actually moved: the simulator
                # loops over this mapping per event, and a dirty
                # component is mostly rows whose rate came out the
                # same as last time.
                for spot in diff.tolist():
                    changed[flows[spot]] = float(rates[spot])
        if full:
            self._rates = dict(changed)
        else:
            self._rates.update(changed)
        self._dirty_links.clear()
        self._dirty_flows.clear()
        if self._verify:
            self._check_against_scratch()
        return changed

    def _dirty_component(self) -> Set[FlowId]:
        """Flows transitively reachable from the dirty links via
        shared-link membership."""
        component: Set[FlowId] = set()
        stack: List[LinkId] = [
            link for link in self._dirty_links if link in self._members
        ]
        seen_links: Set[LinkId] = set(stack)
        while stack:
            link = stack.pop()
            for flow in self._members[link]:
                if flow in component:
                    continue
                component.add(flow)
                for other in self._flow_links[flow]:
                    if other not in seen_links:
                        seen_links.add(other)
                        stack.append(other)
        return component

    def dirty_component_size(self) -> int:
        """Flows the next :meth:`recompute` would re-fill, without
        filling — the adaptive core's probe while in full-refill mode
        (a BFS is far cheaper than a wasted spanning re-fill)."""
        return len(self._dirty_component()) + len(self._dirty_flows)

    def _check_against_scratch(self) -> None:
        scratch = max_min_allocation(
            self._capacities, self._flow_links, self._demands
        )
        for flow, rate in scratch.items():
            current = self._rates.get(flow)
            if current is None:
                raise SimulationError(
                    f"flow {flow!r} missing from incremental state"
                )
            deviation = abs(current - rate) / (1.0 + abs(rate))
            if deviation > self.max_verify_deviation:
                self.max_verify_deviation = deviation
            if deviation > 1e-6:
                raise SimulationError(
                    f"incremental rate for flow {flow!r} diverged: "
                    f"{current} != {rate}"
                )


def detour_closure(
    path: Path, detour_table: DetourTable, rounds: int
) -> FrozenSet[LinkId]:
    """Links reachable by INRP rerouting of a flow on *path*.

    Round 0 is the primary path's links; each further round adds the
    links of every detour option around the links found so far.  With
    ``rounds = max_replacements`` this covers every link the fluid
    filling (:func:`repro.flowsim.multipath.inrp_allocation`) can ever
    *carry traffic on or read the residual of* for this flow: a link
    introduced by the k-th replacement can only be detoured while the
    replacement budget lasts, so its options are examined no deeper
    than round ``max_replacements``.

    Two flows whose closures share no link can therefore never
    influence each other's INRP allocation — the decomposition
    :class:`IncrementalInrp` is built on.
    """
    links: Set[LinkId] = set(cached_path_links(tuple(path)))
    frontier = links
    for _ in range(max(rounds, 0)):
        grown: Set[LinkId] = set()
        for u, v in frontier:
            for option in detour_table.options(u, v):
                for link in cached_path_links(tuple(option)):
                    if link not in links:
                        grown.add(link)
        if not grown:
            break
        links |= grown
        frontier = grown
    return frozenset(links)


class IncrementalInrp:
    """INRP fluid allocation maintained incrementally under flow churn.

    Detour coupling is local, not global: a flow can only ever touch
    its primary links plus the detour options around them (its *detour
    closure*, see :func:`detour_closure`).  INRP allocation therefore
    decomposes over connected components of the closure flow-link
    graph exactly like max-min decomposes over path components.  This
    class tracks those components: :meth:`add_flow` /
    :meth:`remove_flow` mark the flow's closure links dirty, and
    :meth:`recompute` re-runs the fluid filling
    (:func:`~repro.flowsim.multipath.inrp_allocation`) over the dirty
    component alone — every other flow keeps its rate *and* its
    per-path splits.

    The rates returned are exactly those of a from-scratch
    ``inrp_allocation`` over the whole population (``verify=True``
    cross-checks after every recompute and records the worst observed
    deviation in :attr:`max_verify_deviation`).

    Parameters mirror :func:`~repro.flowsim.multipath.inrp_allocation`;
    ``max_replacements`` additionally bounds the closure depth.
    """

    #: The simulator's adapter passes node paths (not link tuples).
    needs_paths = True

    def __init__(
        self,
        capacities: Mapping[LinkId, float],
        detour_table: DetourTable,
        max_replacements: int = 2,
        max_switches_per_flow: int = 16,
        verify: bool = False,
        verify_tol: float = 1e-9,
        kernel: str = "scalar",
        compact_slack: float = 0.5,
        min_compact_nnz: int = 4096,
        pooling_fraction: float = 1.0,
    ):
        self._capacities: Dict[LinkId, float] = {
            link: float(capacity) for link, capacity in capacities.items()
        }
        self._table = detour_table
        self._max_replacements = max_replacements
        self._max_switches = max_switches_per_flow
        self._verify = verify
        self._verify_tol = verify_tol
        if not 0.0 <= pooling_fraction <= 1.0:
            raise SimulationError(
                f"pooling_fraction must be in [0, 1], got {pooling_fraction}"
            )
        self._pooling_fraction = pooling_fraction
        if pooling_fraction < 1.0 and kernel == "vectorized":
            # The CSR kernel implements full pooling only; partial
            # pooling falls back to the scalar component refill.
            kernel = "scalar"
        self._kernel = _check_kernel(kernel)
        if self._kernel == "vectorized":
            self._space: Optional[_kernel.LinkSpace] = _kernel.LinkSpace(
                self._capacities
            )
            # The incidence store holds each flow's *primary* columns
            # and demand for the fill's bulk gather; component
            # selection goes through the amortized union-find tracker
            # over closures (the scalar path keeps the PR 3/5
            # closure-membership BFS, which ``verify=True`` also uses
            # to build the pinned-usage guard).
            self._primary_store: Optional[_kernel.IncidenceStore] = (
                _kernel.IncidenceStore(
                    self._space,
                    compact_slack=compact_slack,
                    min_compact_nnz=min_compact_nnz,
                )
            )
            self._tracker: Optional[_ComponentTracker] = _ComponentTracker()
            #: Per-(u, v) detour option columns, shared across fills.
            self._option_cache: Dict = {}
            #: Per-path global column arrays, shared across fills.
            self._path_cols_cache: Dict = {}
        else:
            self._space = None
            self._primary_store = None
            self._tracker = None
            self._option_cache = {}
            self._path_cols_cache = {}
        self._paths: Dict[FlowId, Path] = {}
        self._demands: Dict[FlowId, float] = {}
        self._order: Dict[FlowId, int] = {}
        self._next_order = 0
        self._closures: Dict[FlowId, FrozenSet[LinkId]] = {}
        self._closure_cache: Dict[Path, FrozenSet[LinkId]] = {}
        self._members: Dict[LinkId, Set[FlowId]] = {}
        self._rates: Dict[FlowId, float] = {}
        self._splits: Dict[FlowId, List[Tuple[Path, float]]] = {}
        #: Per-link running usage, maintained only under ``verify=True``
        #: to feed the :meth:`_pinned_usage` guard; see that docstring.
        self._usage: Dict[LinkId, float] = {}
        #: Saturation tolerances, hoisted out of the per-recompute fill
        #: (they depend only on each link's capacity).
        self._floors: Dict[LinkId, float] = {
            link: _fill_rel_tol(capacity)
            for link, capacity in self._capacities.items()
        }
        self._dirty_links: Set[LinkId] = set()
        self._dirty_flows: Set[FlowId] = set()
        #: Active flows with an empty closure (src == dst): they carry
        #: no traffic and are excluded from the fluid fill.
        self._no_closure: Set[FlowId] = set()
        #: Worst relative incremental-vs-scratch rate deviation seen by
        #: ``verify=True`` (0.0 until the first verified recompute).
        self.max_verify_deviation = 0.0

    def __len__(self) -> int:
        return len(self._paths)

    def __contains__(self, flow: FlowId) -> bool:
        return flow in self._paths

    @property
    def rates(self) -> Dict[FlowId, float]:
        """Current rate vector (a copy; call after :meth:`recompute`)."""
        return dict(self._rates)

    @property
    def splits(self) -> Dict[FlowId, List[Tuple[Path, float]]]:
        """Current per-path splits (a copy)."""
        return {flow: list(parts) for flow, parts in self._splits.items()}

    def _closure_of(self, path: Path) -> FrozenSet[LinkId]:
        closure = self._closure_cache.get(path)
        if closure is None:
            closure = detour_closure(path, self._table, self._max_replacements)
            self._closure_cache[path] = closure
        return closure

    def add_flow(self, flow: FlowId, path: Path, demand: float) -> None:
        """Register an arriving flow; its closure component becomes dirty."""
        if flow in self._paths:
            raise SimulationError(f"flow {flow!r} already present")
        if demand < 0:
            raise SimulationError(f"flow {flow!r} has negative demand")
        path = tuple(path)
        for link in cached_path_links(path):
            if link not in self._capacities:
                raise SimulationError(f"flow {flow!r} uses unknown link {link!r}")
        self._paths[flow] = path
        self._demands[flow] = float(demand)
        self._order[flow] = self._next_order
        self._next_order += 1
        closure = self._closure_of(path)
        self._closures[flow] = closure
        for link in closure:
            self._members.setdefault(link, set()).add(flow)
            self._dirty_links.add(link)
        if not closure:
            # Source == destination: never shares a link with anyone.
            self._dirty_flows.add(flow)
            self._no_closure.add(flow)
        if self._primary_store is not None:
            self._primary_store.add(
                flow, self._space.columns(cached_path_links(path)), float(demand)
            )
            if closure:
                self._tracker.add(flow, closure)

    def remove_flow(self, flow: FlowId) -> None:
        """Deregister a departing flow; its closure component becomes dirty."""
        path = self._paths.pop(flow, None)
        if path is None:
            raise SimulationError(f"flow {flow!r} is not present")
        del self._demands[flow]
        del self._order[flow]
        self._rates.pop(flow, None)
        departed_splits = self._splits.pop(flow, [])
        if self._verify:
            self._account_usage(departed_splits, -1.0)
        self._dirty_flows.discard(flow)
        self._no_closure.discard(flow)
        closure = self._closures.pop(flow)
        for link in closure:
            members = self._members.get(link)
            if members is not None:
                members.discard(flow)
                if not members:
                    del self._members[link]
            self._dirty_links.add(link)
        if self._primary_store is not None:
            self._primary_store.remove(flow)
            if closure:
                self._tracker.remove(flow)

    def _account_usage(
        self, splits: Sequence[Tuple[Path, float]], sign: float
    ) -> None:
        for path, rate in splits:
            if rate <= 0:
                continue
            for link in cached_path_links(tuple(path)):
                self._usage[link] = self._usage.get(link, 0.0) + sign * rate

    def _dirty_component(self) -> Tuple[Set[FlowId], Set[LinkId]]:
        """Flows transitively reachable from the dirty links via
        closure membership, plus every closure link they can touch."""
        members = self._members
        closures = self._closures
        component: Set[FlowId] = set()
        add_flow = component.add
        stack: List[LinkId] = [
            link for link in self._dirty_links if link in members
        ]
        seen_links: Set[LinkId] = set(stack)
        seen = seen_links.add
        push = stack.append
        while stack:
            link = stack.pop()
            for flow in members[link]:
                if flow in component:
                    continue
                add_flow(flow)
                for other in closures[flow]:
                    if other not in seen_links:
                        seen(other)
                        push(other)
        return component, seen_links

    def dirty_component_size(self) -> int:
        """Flows the next :meth:`recompute` would re-fill, without
        filling — the adaptive core's probe while in full-refill mode
        (a BFS is far cheaper than a wasted spanning re-fill)."""
        component, _ = self._dirty_component()
        return len(component) + len(self._dirty_flows)

    def recompute(
        self, full: bool = False
    ) -> Tuple[
        Dict[FlowId, float], Dict[FlowId, List[Tuple[Path, float]]], int
    ]:
        """Re-fill the dirty component; return ``(rates, splits, switches)``.

        The two mappings cover exactly the flows whose allocation *may*
        have changed since the previous call; flows outside them keep
        their previous rates and splits.  ``switches`` counts the
        detour switches performed by this re-fill.  With ``full=True``
        the whole population is re-filled (the adaptive core's
        fallback for spanning components).
        """
        if self._kernel == "vectorized":
            return self._recompute_vectorized(full)
        if not full and not self._dirty_links and not self._dirty_flows:
            return {}, {}, 0
        changed_rates: Dict[FlowId, float] = {}
        changed_splits: Dict[FlowId, List[Tuple[Path, float]]] = {}
        for flow in self._dirty_flows:
            changed_rates[flow] = self._demands[flow]
            changed_splits[flow] = [(self._paths[flow], 0.0)]
        if full:
            # ``self._paths`` is insertion-ordered and flows are added
            # exactly once, so it already enumerates the population in
            # arrival order — no sort, and when every active flow has a
            # closure (the common case; only src == dst flows do not)
            # the registry dicts feed the fill without copies.
            if len(self._no_closure) == len(self._paths):
                component_map: Mapping[FlowId, Path] = {}
            elif self._no_closure:
                component_map = {
                    flow: path
                    for flow, path in self._paths.items()
                    if flow not in self._no_closure
                }
            else:
                component_map = self._paths
            capacities: Mapping[LinkId, float] = self._capacities
            pinned: Optional[Dict[LinkId, float]] = None
        else:
            component, reach = self._dirty_component()
            # The re-fill can only ever touch the component's closure
            # links; restricting the capacity map keeps its setup cost
            # proportional to the component, not the topology.
            capacities = {link: self._capacities[link] for link in reach}
            # Pinned usage exists only as a verify-mode guard: the
            # dirty-component BFS collects *every* flow with a closure
            # link in ``reach``, so no outside flow can carry traffic
            # there and the pinned map is zero by construction.
            pinned = (
                self._pinned_usage(component, reach) if self._verify else None
            )
            ordered = sorted(component, key=self._order.__getitem__)
            component_map = {flow: self._paths[flow] for flow in ordered}
        if component_map is self._paths:
            demands: Mapping[FlowId, float] = self._demands
        else:
            demands = {flow: self._demands[flow] for flow in component_map}
        switches = 0
        if component_map:
            result = inrp_allocation(
                capacities,
                component_map,
                demands,
                self._table,
                max_replacements=self._max_replacements,
                max_switches_per_flow=self._max_switches,
                pinned_usage=pinned,
                saturation_floors=self._floors,
                pooling_fraction=self._pooling_fraction,
            )
            switches = result.switches
            for flow, splits in result.splits.items():
                if self._verify:
                    self._account_usage(self._splits.get(flow, []), -1.0)
                    self._account_usage(splits, +1.0)
                self._splits[flow] = splits
            changed_rates.update(result.rates)
            changed_splits.update(result.splits)
        self._rates.update(changed_rates)
        for flow in self._dirty_flows:
            self._splits[flow] = changed_splits[flow]
        self._dirty_links.clear()
        self._dirty_flows.clear()
        if self._verify:
            self._check_against_scratch()
        return changed_rates, changed_splits, switches

    def _recompute_vectorized(
        self, full: bool = False
    ) -> Tuple[
        Dict[FlowId, float], Dict[FlowId, List[Tuple[Path, float]]], int
    ]:
        """The ``kernel="vectorized"`` re-fill: component selection via
        the closure store's vectorized BFS, filling via
        :func:`repro.flowsim.kernel.inrp_fill`.  Same contract and
        (to <= 1e-9) same results as the scalar path."""
        if not full and not self._dirty_links and not self._dirty_flows:
            return {}, {}, 0
        changed_rates: Dict[FlowId, float] = {}
        changed_splits: Dict[FlowId, List[Tuple[Path, float]]] = {}
        for flow in self._dirty_flows:
            changed_rates[flow] = self._demands[flow]
            changed_splits[flow] = [(self._paths[flow], 0.0)]
        if full:
            flows: List[FlowId] = self._primary_store.live_flows()
            if self._no_closure:
                flows = [
                    flow for flow in flows if flow not in self._no_closure
                ]
            in_reach = None
            capacity_count = len(self._capacities)
            pinned = None
        else:
            if self._verify:
                # The reach restriction is unobservable (every link a
                # component fill can touch lies inside some member's
                # closure, hence inside ``reach``), so the exact BFS,
                # the restricted column set and the pinned-usage guard
                # are built only when the fill is being cross-checked
                # against scratch.
                component, reach = self._dirty_component()
                capacity_count = len(reach)
                index = self._space.index
                in_reach = frozenset(index[link] for link in reach)
                pinned = self._pinned_cols(component, reach)
            else:
                component = self._tracker.component(self._dirty_links)
                capacity_count = len(self._capacities)
                in_reach = None
                pinned = None
            flows = sorted(component, key=self._order.__getitem__)
        switches = 0
        if flows:
            paths = [self._paths[flow] for flow in flows]
            cols, lengths, demands = self._primary_store.gather(flows)
            result = _kernel.inrp_fill(
                self._space,
                flows,
                paths,
                cols,
                lengths,
                demands,
                self._table,
                max_replacements=self._max_replacements,
                max_switches_per_flow=self._max_switches,
                in_reach=in_reach,
                pinned=pinned,
                capacity_count=capacity_count,
                option_cache=self._option_cache,
                path_cols_cache=self._path_cols_cache,
            )
            switches = result.switches
            for flow, splits in result.splits.items():
                if self._verify:
                    self._account_usage(self._splits.get(flow, []), -1.0)
                    self._account_usage(splits, +1.0)
                self._splits[flow] = splits
            changed_rates.update(result.rates)
            changed_splits.update(result.splits)
        self._rates.update(changed_rates)
        for flow in self._dirty_flows:
            self._splits[flow] = changed_splits[flow]
        self._dirty_links.clear()
        self._dirty_flows.clear()
        if self._verify:
            self._check_against_scratch()
        return changed_rates, changed_splits, switches

    def _pinned_cols(
        self, component: Set[FlowId], reach: Set[LinkId]
    ) -> Optional[List[Tuple[int, float]]]:
        """:meth:`_pinned_usage` translated to kernel ``(column, used)``
        pairs (verify-only, like the scalar guard it wraps)."""
        pinned = self._pinned_usage(component, reach)
        if not pinned:
            return None
        index = self._space.index
        return [(index[link], used) for link, used in pinned.items()]

    def _pinned_usage(
        self, component: Set[FlowId], reach: Set[LinkId]
    ) -> Optional[Dict[LinkId, float]]:
        """Capacity already consumed on reachable links by flows held
        fixed outside *component*.

        Closure components are disjoint by construction, so this is
        zero everywhere up to float drift in the running usage sums —
        values below tolerance are dropped so the re-fill sees pristine
        capacities.  A genuinely positive value would mean the closure
        under-approximated reachability; pinning it keeps the subset
        run from over-committing a link while the scratch cross-check
        flags the divergence.  Because of that invariant the usage
        bookkeeping feeding this guard runs only under ``verify=True``;
        production recomputes skip it and pass ``pinned_usage=None``.
        """
        pinned: Dict[LinkId, float] = {}
        for link in reach:
            used = self._usage.get(link)
            if used:
                pinned[link] = used
        if not pinned:
            return None
        # Subtract the component's own usage on those links.
        for flow in component:
            for path, rate in self._splits.get(flow, []):
                if rate <= 0:
                    continue
                for link in cached_path_links(tuple(path)):
                    if link in pinned:
                        pinned[link] -= rate
        return {
            link: used
            for link, used in pinned.items()
            if used > _rel_tol(self._capacities.get(link, 0.0))
        } or None

    def _check_against_scratch(self) -> None:
        scratch = inrp_allocation(
            self._capacities,
            self._paths,
            self._demands,
            self._table,
            max_replacements=self._max_replacements,
            max_switches_per_flow=self._max_switches,
            pooling_fraction=self._pooling_fraction,
        )
        worst = 0.0
        diverged: Optional[FlowId] = None
        for flow, rate in scratch.rates.items():
            current = self._rates.get(flow)
            if current is None:
                raise SimulationError(f"flow {flow!r} missing from incremental state")
            deviation = abs(current - rate) / (1.0 + abs(rate))
            if deviation > worst:
                worst = deviation
                diverged = flow
        self.max_verify_deviation = max(self.max_verify_deviation, worst)
        if worst > self._verify_tol:
            raise SimulationError(
                f"incremental INRP rate for flow {diverged!r} diverged: "
                f"{self._rates.get(diverged)} != {scratch.rates[diverged]} "
                f"(relative deviation {worst:.3e})"
            )
