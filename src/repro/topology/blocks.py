"""Motif builders with known per-link detour classes.

The Table 1 reproduction relies on a constructive property: if motifs
("blocks") are glued to the rest of the graph at a *single shared
vertex*, every path between the two endpoints of a block-internal link
stays inside the block, so the link's detour class is decided by the
block shape alone:

- **triangle fan / K4** — every link closes a triangle → 1-hop detour;
- **square chain** (4-cycles, optionally sharing edges) → 2-hop detour;
- **long cycle** (length ≥ 5) → 3+-hop detour;
- **pendant edge** (leaf) → no detour (bridge).

Each builder takes a :class:`NodeNamer`, attaches the motif at an
existing node and returns the list of links created.
"""

from __future__ import annotations

from typing import List

from repro.errors import TopologyError
from repro.topology.graph import Link, Node, Topology


class NodeNamer:
    """Produces fresh integer node names for generated topologies."""

    def __init__(self, start: int = 0):
        self._next = start

    def fresh(self) -> int:
        name = self._next
        self._next += 1
        return name

    def reserve(self, up_to: int) -> None:
        """Ensure future names are strictly greater than *up_to*."""
        self._next = max(self._next, up_to + 1)


def add_triangle_fan(
    topo: Topology, attach: Node, num_links: int, namer: NodeNamer
) -> List[Link]:
    """Attach a fan of triangles sharing the hub *attach*.

    A fan with ``k`` spokes has ``2k - 1`` links (``k`` hub-spoke plus
    ``k - 1`` consecutive spoke-spoke links), every one of which closes
    a triangle, i.e. has a 1-hop detour.  Therefore *num_links* must be
    odd and at least 3.
    """
    if num_links < 3 or num_links % 2 == 0:
        raise TopologyError(
            f"a triangle fan has an odd number of links >= 3, got {num_links}"
        )
    spokes = (num_links + 1) // 2
    created: List[Link] = []
    spoke_nodes = [namer.fresh() for _ in range(spokes)]
    for node in spoke_nodes:
        created.append(topo.add_link(attach, node))
    for left, right in zip(spoke_nodes, spoke_nodes[1:]):
        created.append(topo.add_link(left, right))
    return created


def add_square_chain(
    topo: Topology, attach: Node, num_links: int, namer: NodeNamer
) -> List[Link]:
    """Attach a chain of edge-sharing 4-cycles at *attach*.

    The first square contributes 4 links; each extension square shares
    one edge with the previous one and contributes 3 new links, so the
    achievable counts are ``4 + 3k``.  Every link lies on a 4-cycle and
    on no triangle, i.e. its best detour is 2 hops.
    """
    if num_links < 4 or (num_links - 4) % 3 != 0:
        raise TopologyError(
            f"a square chain has 4 + 3k links, got {num_links}"
        )
    created: List[Link] = []
    # First square: attach - a - b - c - attach.
    a, b, c = namer.fresh(), namer.fresh(), namer.fresh()
    created.append(topo.add_link(attach, a))
    created.append(topo.add_link(a, b))
    created.append(topo.add_link(b, c))
    created.append(topo.add_link(c, attach))
    # Extensions share the "far" edge (a, b) of the most recent square.
    shared_u, shared_v = a, b
    remaining = num_links - 4
    while remaining > 0:
        p, q = namer.fresh(), namer.fresh()
        created.append(topo.add_link(shared_v, p))
        created.append(topo.add_link(p, q))
        created.append(topo.add_link(q, shared_u))
        shared_u, shared_v = q, p
        remaining -= 3
    return created


def add_long_cycle(
    topo: Topology, attach: Node, num_links: int, namer: NodeNamer
) -> List[Link]:
    """Attach a simple cycle of length *num_links* >= 5 through *attach*.

    Every link on a chordless cycle of length ``L >= 5`` has a shortest
    detour of ``L - 1 >= 4`` hops, i.e. class "3+ hops".
    """
    if num_links < 5:
        raise TopologyError(f"a long cycle needs >= 5 links, got {num_links}")
    created: List[Link] = []
    nodes = [attach] + [namer.fresh() for _ in range(num_links - 1)]
    for left, right in zip(nodes, nodes[1:]):
        created.append(topo.add_link(left, right))
    created.append(topo.add_link(nodes[-1], attach))
    return created


def add_pendant(topo: Topology, attach: Node, namer: NodeNamer) -> Link:
    """Attach a single leaf node; the new link is a bridge (no detour)."""
    leaf = namer.fresh()
    return topo.add_link(attach, leaf)


def decompose_one_hop(count: int) -> List[int]:
    """Split a 1-hop link budget into valid triangle-fan sizes.

    Fans provide any odd count >= 3; even counts >= 6 are two fans.
    Counts of 1, 2 or 4 are not achievable (see
    :func:`repro.topology.isp.solve_link_counts`, which avoids them).
    """
    if count == 0:
        return []
    if count < 3 or count == 4:
        raise TopologyError(f"1-hop link count {count} is not constructible")
    if count % 2 == 1:
        return [count]
    return [3, count - 3]


def decompose_two_hop(count: int) -> List[int]:
    """Split a 2-hop link budget into valid square-chain sizes (4 + 3k).

    Achievable counts are sums of ``{4 + 3k}`` terms: every count
    except 1, 2, 3, 5, 6 and 9.
    """
    if count == 0:
        return []
    if count in (1, 2, 3, 5, 6, 9):
        raise TopologyError(f"2-hop link count {count} is not constructible")
    remainder = count % 3
    if remainder == 1:  # 4 + 3k
        return [count]
    if remainder == 2:  # 8 + 3k  ->  two chains
        return [4, count - 4]
    return [4, 4, count - 8]  # 12 + 3k  ->  three chains


def decompose_three_plus(count: int) -> List[int]:
    """Split a 3+-hop link budget into valid cycle lengths (>= 5).

    Achievable counts: 0 and every count >= 5.
    """
    if count == 0:
        return []
    if count < 5:
        raise TopologyError(f"3+-hop link count {count} is not constructible")
    if count < 10:
        return [count]
    return [5] * (count // 5 - 1) + [5 + count % 5]
