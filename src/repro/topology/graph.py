"""Capacitated topology model with per-direction link capacities.

:class:`Topology` wraps a :class:`networkx.Graph` and enforces the
library-wide conventions: capacities in bits/s, delays in seconds and a
routing weight per link (1.0 by default, i.e. hop-count routing as in
the paper's flow-level evaluation).

The substrate is **directed**: every physical link carries one
capacity per traversal direction, keyed by the traversal-order tuple
``(u, v)``.  Undirected topologies are the symmetric special case —
``add_link(u, v, capacity=c)`` installs ``c`` in both directions, and
everything built that way reproduces the historical undirected
results exactly.  :meth:`Topology.directed_capacities` is the map the
allocators consume; :func:`Link.key` is the single canonical
normalization used when a direction-less identifier is needed (detour
classification, serialisation, reporting).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple, Union

import networkx as nx

from repro.errors import TopologyError

Node = Hashable

#: Default link capacity when none is given: 10 Mbps, the shared-link
#: rate of the paper's Fig. 3 example.
DEFAULT_CAPACITY_BPS = 10e6

#: Default one-way propagation delay (1 ms).
DEFAULT_DELAY_S = 1e-3

#: An asymmetric capacity spec: a single float (symmetric) or a
#: ``(forward, reverse)`` pair relative to the ``(u, v)`` the spec is
#: attached to.
CapacitySpec = Union[float, Tuple[float, float]]


class Link(tuple):
    """A link identifier: a plain ``(u, v)`` node tuple.

    Directed link state (capacities, allocator columns) is keyed by the
    traversal-order tuple; :meth:`Link.key` is the one canonical
    normalization collapsing both orientations onto the undirected
    identity of the link.
    """

    __slots__ = ()

    @staticmethod
    def key(u: Node, v: Node) -> "Link":
        """Return the canonical (order-independent) identifier of a link.

        Nodes of mixed or unorderable types are ordered by their
        ``repr``, which is stable within a process and good enough for
        dictionary keys.
        """
        try:
            return (u, v) if u <= v else (v, u)  # type: ignore[operator,return-value]
        except TypeError:
            return (u, v) if repr(u) <= repr(v) else (v, u)  # type: ignore[return-value]


def link_key(u: Node, v: Node) -> Link:
    """Canonical undirected link identifier (alias of :meth:`Link.key`)."""
    return Link.key(u, v)


def split_capacity_spec(capacity: CapacitySpec) -> Tuple[float, float]:
    """Normalise a capacity spec into a ``(forward, reverse)`` pair.

    A bare number means symmetric; a 2-sequence is taken as
    ``(forward, reverse)``.
    """
    try:
        if isinstance(capacity, (tuple, list)):
            if len(capacity) != 2:
                raise TypeError
            return float(capacity[0]), float(capacity[1])
        return float(capacity), float(capacity)
    except (TypeError, ValueError):
        raise TopologyError(
            f"capacity spec must be a number or a (forward, reverse) pair, "
            f"got {capacity!r}"
        ) from None


class Topology:
    """A capacitated network topology with per-direction capacities.

    Parameters
    ----------
    name:
        Human-readable topology name, used in reports.

    Notes
    -----
    Physical links are bidirectional but each direction has its own
    capacity.  ``add_link(u, v, capacity=c)`` is the symmetric
    full-duplex case (``c`` bits/s in each direction — the standard
    convention in flow-level network simulation and what the paper's
    Fig. 3 arithmetic assumes); pass ``capacity_reverse`` (or a
    ``(forward, reverse)`` capacity spec) for asymmetric links.
    """

    def __init__(self, name: str = "topology"):
        self.name = name
        self._graph = nx.Graph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Add *node* (idempotent) and return it."""
        self._graph.add_node(node)
        return node

    def add_link(
        self,
        u: Node,
        v: Node,
        capacity: CapacitySpec = DEFAULT_CAPACITY_BPS,
        delay: float = DEFAULT_DELAY_S,
        weight: float = 1.0,
        capacity_reverse: Optional[float] = None,
    ) -> Link:
        """Add a link between *u* and *v*.

        ``capacity`` applies to the ``u -> v`` direction; the
        ``v -> u`` direction gets ``capacity_reverse`` when given,
        otherwise the same value (symmetric link).  ``capacity`` may
        also be a ``(forward, reverse)`` pair.

        Raises
        ------
        TopologyError
            If the link is a self-loop, a duplicate, or has a
            non-positive capacity in either direction.
        """
        forward, reverse = split_capacity_spec(capacity)
        if capacity_reverse is not None:
            if isinstance(capacity, (tuple, list)):
                raise TopologyError(
                    "give either a (forward, reverse) capacity pair or "
                    "capacity_reverse, not both"
                )
            reverse = float(capacity_reverse)
        if u == v:
            raise TopologyError(f"self-loop not allowed: {u!r}")
        if self._graph.has_edge(u, v):
            raise TopologyError(f"duplicate link: {u!r} -- {v!r}")
        if forward <= 0 or reverse <= 0:
            bad = forward if forward <= 0 else reverse
            raise TopologyError(f"capacity must be positive, got {bad!r}")
        if delay < 0:
            raise TopologyError(f"delay must be non-negative, got {delay!r}")
        key = Link.key(u, v)
        cap_fwd, cap_rev = (forward, reverse) if (u, v) == key else (reverse, forward)
        self._graph.add_edge(
            u,
            v,
            capacity=cap_fwd,
            capacity_rev=cap_rev,
            delay=float(delay),
            weight=float(weight),
        )
        return key

    def remove_link(self, u: Node, v: Node) -> None:
        """Remove the link between *u* and *v*."""
        self._require_link(u, v)
        self._graph.remove_edge(u, v)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        return self._graph.number_of_edges()

    def nodes(self) -> List[Node]:
        """All nodes, in insertion order."""
        return list(self._graph.nodes())

    def links(self) -> List[Link]:
        """All links as canonical ``(u, v)`` tuples."""
        return [Link.key(u, v) for u, v in self._graph.edges()]

    def directed_links(self) -> Iterator[Link]:
        """Both orientations of every link (for per-direction state)."""
        for u, v in self._graph.edges():
            yield (u, v)
            yield (v, u)

    def has_node(self, node: Node) -> bool:
        return self._graph.has_node(node)

    def has_link(self, u: Node, v: Node) -> bool:
        return self._graph.has_edge(u, v)

    def neighbors(self, node: Node) -> List[Node]:
        if not self._graph.has_node(node):
            raise TopologyError(f"unknown node: {node!r}")
        return list(self._graph.neighbors(node))

    def degree(self, node: Node) -> int:
        if not self._graph.has_node(node):
            raise TopologyError(f"unknown node: {node!r}")
        return int(self._graph.degree(node))

    def capacity(self, u: Node, v: Node) -> float:
        """Capacity of the ``u -> v`` direction of the link, in bits/s."""
        self._require_link(u, v)
        data = self._graph.edges[u, v]
        if (u, v) == Link.key(u, v):
            return float(data["capacity"])
        return float(data["capacity_rev"])

    def delay(self, u: Node, v: Node) -> float:
        """One-way propagation delay of link ``(u, v)`` in seconds."""
        return float(self._link_attr(u, v, "delay"))

    def weight(self, u: Node, v: Node) -> float:
        """Routing weight of link ``(u, v)``."""
        return float(self._link_attr(u, v, "weight"))

    def set_capacity(self, u: Node, v: Node, capacity: CapacitySpec) -> None:
        """Set the link capacity.

        A bare number sets **both** directions (the historical
        symmetric behaviour); a ``(forward, reverse)`` pair sets the
        ``u -> v`` and ``v -> u`` directions respectively.
        """
        forward, reverse = split_capacity_spec(capacity)
        self.set_directed_capacity(u, v, forward)
        self.set_directed_capacity(v, u, reverse)

    def set_directed_capacity(self, u: Node, v: Node, capacity: float) -> None:
        """Set the capacity of the ``u -> v`` direction only."""
        if capacity <= 0:
            raise TopologyError(f"capacity must be positive, got {capacity!r}")
        self._require_link(u, v)
        attr = "capacity" if (u, v) == Link.key(u, v) else "capacity_rev"
        self._graph.edges[u, v][attr] = float(capacity)

    def set_delay(self, u: Node, v: Node, delay: float) -> None:
        if delay < 0:
            raise TopologyError(f"delay must be non-negative, got {delay!r}")
        self._require_link(u, v)
        self._graph.edges[u, v]["delay"] = float(delay)

    def is_symmetric(self) -> bool:
        """True when every link has equal capacity in both directions."""
        return all(
            data["capacity"] == data["capacity_rev"]
            for _, _, data in self._graph.edges(data=True)
        )

    def total_capacity(self) -> float:
        """Sum of canonical-direction link capacities, bits/s."""
        return sum(data["capacity"] for _, _, data in self._graph.edges(data=True))

    def is_connected(self) -> bool:
        if self.num_nodes == 0:
            return True
        return nx.is_connected(self._graph)

    def is_bridge(self, u: Node, v: Node) -> bool:
        """True if removing link ``(u, v)`` disconnects *u* from *v*."""
        self._require_link(u, v)
        data = dict(self._graph.edges[u, v])
        self._graph.remove_edge(u, v)
        try:
            return not nx.has_path(self._graph, u, v)
        finally:
            self._graph.add_edge(u, v, **data)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Topology":
        clone = Topology(name or self.name)
        clone._graph = self._graph.copy()
        return clone

    def without_link(self, u: Node, v: Node) -> "Topology":
        """A copy of the topology with link ``(u, v)`` removed."""
        clone = self.copy(f"{self.name}-without-{u}-{v}")
        clone.remove_link(u, v)
        return clone

    def to_networkx(self) -> nx.Graph:
        """A defensive copy of the underlying :class:`networkx.Graph`."""
        return self._graph.copy()

    @property
    def graph(self) -> nx.Graph:
        """The live underlying graph (read-only use by routing code)."""
        return self._graph

    @classmethod
    def from_links(
        cls,
        links: Iterable[Tuple[Node, Node]],
        name: str = "topology",
        capacity: CapacitySpec = DEFAULT_CAPACITY_BPS,
        delay: float = DEFAULT_DELAY_S,
    ) -> "Topology":
        """Build a topology from an iterable of ``(u, v)`` pairs."""
        topo = cls(name)
        for u, v in links:
            topo.add_link(u, v, capacity=capacity, delay=delay)
        return topo

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_link(self, u: Node, v: Node) -> None:
        if not self._graph.has_edge(u, v):
            raise TopologyError(f"unknown link: {u!r} -- {v!r}")

    def _link_attr(self, u: Node, v: Node, attr: str):
        self._require_link(u, v)
        return self._graph.edges[u, v][attr]

    def __contains__(self, node: Node) -> bool:
        return self._graph.has_node(node)

    def __repr__(self) -> str:
        return f"Topology({self.name!r}, nodes={self.num_nodes}, links={self.num_links})"

    def link_capacities(self) -> Dict[Link, float]:
        """Mapping of canonical link -> canonical-direction capacity.

        Only meaningful on symmetric topologies (one scalar per link);
        allocators index per direction via :meth:`directed_capacities`.
        """
        return {
            Link.key(u, v): float(data["capacity"])
            for u, v, data in self._graph.edges(data=True)
        }

    def directed_capacities(self) -> Dict[Link, float]:
        """Mapping of directed ``(u, v)`` link -> capacity (bits/s).

        Contains both orientations of every link; this is the map the
        flow-level allocators consume.
        """
        capacities: Dict[Link, float] = {}
        for u, v, data in self._graph.edges(data=True):
            key = Link.key(u, v)
            fwd, rev = float(data["capacity"]), float(data["capacity_rev"])
            if (u, v) == key:
                capacities[(u, v)] = fwd
                capacities[(v, u)] = rev
            else:
                capacities[(u, v)] = rev
                capacities[(v, u)] = fwd
        return capacities
