"""Capacitated undirected topology model.

:class:`Topology` wraps a :class:`networkx.Graph` and enforces the
library-wide conventions: capacities in bits/s, delays in seconds and a
routing weight per link (1.0 by default, i.e. hop-count routing as in
the paper's flow-level evaluation).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from repro.errors import TopologyError

Node = Hashable
Link = Tuple[Node, Node]

#: Default link capacity when none is given: 10 Mbps, the shared-link
#: rate of the paper's Fig. 3 example.
DEFAULT_CAPACITY_BPS = 10e6

#: Default one-way propagation delay (1 ms).
DEFAULT_DELAY_S = 1e-3


def link_key(u: Node, v: Node) -> Link:
    """Return the canonical (order-independent) identifier of a link.

    Nodes of mixed or unorderable types are ordered by their ``repr``,
    which is stable within a process and good enough for dictionary
    keys.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class Topology:
    """An undirected capacitated network topology.

    Parameters
    ----------
    name:
        Human-readable topology name, used in reports.

    Notes
    -----
    Links are undirected but full-duplex: a link with capacity ``c``
    offers ``c`` bits/s *in each direction* (the standard convention in
    flow-level network simulation and what the paper's Fig. 3 arithmetic
    assumes).
    """

    def __init__(self, name: str = "topology"):
        self.name = name
        self._graph = nx.Graph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Add *node* (idempotent) and return it."""
        self._graph.add_node(node)
        return node

    def add_link(
        self,
        u: Node,
        v: Node,
        capacity: float = DEFAULT_CAPACITY_BPS,
        delay: float = DEFAULT_DELAY_S,
        weight: float = 1.0,
    ) -> Link:
        """Add an undirected link between *u* and *v*.

        Raises
        ------
        TopologyError
            If the link is a self-loop, a duplicate, or has a
            non-positive capacity.
        """
        if u == v:
            raise TopologyError(f"self-loop not allowed: {u!r}")
        if self._graph.has_edge(u, v):
            raise TopologyError(f"duplicate link: {u!r} -- {v!r}")
        if capacity <= 0:
            raise TopologyError(f"capacity must be positive, got {capacity!r}")
        if delay < 0:
            raise TopologyError(f"delay must be non-negative, got {delay!r}")
        self._graph.add_edge(u, v, capacity=float(capacity), delay=float(delay), weight=float(weight))
        return link_key(u, v)

    def remove_link(self, u: Node, v: Node) -> None:
        """Remove the link between *u* and *v*."""
        self._require_link(u, v)
        self._graph.remove_edge(u, v)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        return self._graph.number_of_edges()

    def nodes(self) -> List[Node]:
        """All nodes, in insertion order."""
        return list(self._graph.nodes())

    def links(self) -> List[Link]:
        """All links as canonical ``(u, v)`` tuples."""
        return [link_key(u, v) for u, v in self._graph.edges()]

    def directed_links(self) -> Iterator[Link]:
        """Both orientations of every link (for per-direction state)."""
        for u, v in self._graph.edges():
            yield (u, v)
            yield (v, u)

    def has_node(self, node: Node) -> bool:
        return self._graph.has_node(node)

    def has_link(self, u: Node, v: Node) -> bool:
        return self._graph.has_edge(u, v)

    def neighbors(self, node: Node) -> List[Node]:
        if not self._graph.has_node(node):
            raise TopologyError(f"unknown node: {node!r}")
        return list(self._graph.neighbors(node))

    def degree(self, node: Node) -> int:
        if not self._graph.has_node(node):
            raise TopologyError(f"unknown node: {node!r}")
        return int(self._graph.degree(node))

    def capacity(self, u: Node, v: Node) -> float:
        """Capacity of link ``(u, v)`` in bits/s."""
        return float(self._link_attr(u, v, "capacity"))

    def delay(self, u: Node, v: Node) -> float:
        """One-way propagation delay of link ``(u, v)`` in seconds."""
        return float(self._link_attr(u, v, "delay"))

    def weight(self, u: Node, v: Node) -> float:
        """Routing weight of link ``(u, v)``."""
        return float(self._link_attr(u, v, "weight"))

    def set_capacity(self, u: Node, v: Node, capacity: float) -> None:
        if capacity <= 0:
            raise TopologyError(f"capacity must be positive, got {capacity!r}")
        self._require_link(u, v)
        self._graph.edges[u, v]["capacity"] = float(capacity)

    def set_delay(self, u: Node, v: Node, delay: float) -> None:
        if delay < 0:
            raise TopologyError(f"delay must be non-negative, got {delay!r}")
        self._require_link(u, v)
        self._graph.edges[u, v]["delay"] = float(delay)

    def total_capacity(self) -> float:
        """Sum of all link capacities (one direction), bits/s."""
        return sum(data["capacity"] for _, _, data in self._graph.edges(data=True))

    def is_connected(self) -> bool:
        if self.num_nodes == 0:
            return True
        return nx.is_connected(self._graph)

    def is_bridge(self, u: Node, v: Node) -> bool:
        """True if removing link ``(u, v)`` disconnects *u* from *v*."""
        self._require_link(u, v)
        self._graph.remove_edge(u, v)
        try:
            return not nx.has_path(self._graph, u, v)
        finally:
            self._graph.add_edge(u, v)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Topology":
        clone = Topology(name or self.name)
        clone._graph = self._graph.copy()
        return clone

    def without_link(self, u: Node, v: Node) -> "Topology":
        """A copy of the topology with link ``(u, v)`` removed."""
        clone = self.copy(f"{self.name}-without-{u}-{v}")
        clone.remove_link(u, v)
        return clone

    def to_networkx(self) -> nx.Graph:
        """A defensive copy of the underlying :class:`networkx.Graph`."""
        return self._graph.copy()

    @property
    def graph(self) -> nx.Graph:
        """The live underlying graph (read-only use by routing code)."""
        return self._graph

    @classmethod
    def from_links(
        cls,
        links: Iterable[Tuple[Node, Node]],
        name: str = "topology",
        capacity: float = DEFAULT_CAPACITY_BPS,
        delay: float = DEFAULT_DELAY_S,
    ) -> "Topology":
        """Build a topology from an iterable of ``(u, v)`` pairs."""
        topo = cls(name)
        for u, v in links:
            topo.add_link(u, v, capacity=capacity, delay=delay)
        return topo

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_link(self, u: Node, v: Node) -> None:
        if not self._graph.has_edge(u, v):
            raise TopologyError(f"unknown link: {u!r} -- {v!r}")

    def _link_attr(self, u: Node, v: Node, attr: str):
        self._require_link(u, v)
        return self._graph.edges[u, v][attr]

    def __contains__(self, node: Node) -> bool:
        return self._graph.has_node(node)

    def __repr__(self) -> str:
        return f"Topology({self.name!r}, nodes={self.num_nodes}, links={self.num_links})"

    def link_capacities(self) -> Dict[Link, float]:
        """Mapping of canonical link -> capacity (bits/s)."""
        return {
            link_key(u, v): float(data["capacity"])
            for u, v, data in self._graph.edges(data=True)
        }
