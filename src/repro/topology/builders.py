"""Hand-built topologies used by the paper's examples and our tests.

Every ``capacity`` parameter is a
:data:`~repro.topology.graph.CapacitySpec`: a bare number builds the
symmetric (full-duplex) link, a ``(forward, reverse)`` pair builds an
asymmetric one, oriented along the link's constructor argument order.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.topology.graph import DEFAULT_DELAY_S, CapacitySpec, Topology
from repro.units import mbps


def fig3_topology(delay: float = DEFAULT_DELAY_S) -> Topology:
    """The exact topology of the paper's Fig. 3 worked example.

    Nodes 1..5; link capacities as in the figure:

    - ``1 -- 2`` : 10 Mbps (shared access link),
    - ``2 -- 4`` : 2 Mbps (the bottleneck),
    - ``2 -- 3`` and ``3 -- 4`` : 3 Mbps each (the detour through
      node 3, which "can accommodate the extra 3 Mbps"),
    - ``2 -- 5`` : 10 Mbps (the uncongested path of the second flow).

    Flow A runs 1 → 4, flow B runs 1 → 5.  Under e2e flow control the
    throughputs are (2, 8) Mbps → Jain 0.73; under INRPP both flows get
    5 Mbps → Jain 1.0.
    """
    topo = Topology("fig3")
    topo.add_link(1, 2, capacity=mbps(10), delay=delay)
    topo.add_link(2, 4, capacity=mbps(2), delay=delay)
    topo.add_link(2, 3, capacity=mbps(3), delay=delay)
    topo.add_link(3, 4, capacity=mbps(3), delay=delay)
    topo.add_link(2, 5, capacity=mbps(10), delay=delay)
    return topo


def line_topology(
    num_nodes: int, capacity: CapacitySpec = mbps(10), delay: float = DEFAULT_DELAY_S
) -> Topology:
    """A chain ``0 -- 1 -- ... -- n-1`` (every link is a bridge)."""
    if num_nodes < 2:
        raise ConfigurationError(f"need >= 2 nodes, got {num_nodes}")
    topo = Topology(f"line-{num_nodes}")
    for node in range(num_nodes - 1):
        topo.add_link(node, node + 1, capacity=capacity, delay=delay)
    return topo


def star_topology(
    num_leaves: int, capacity: CapacitySpec = mbps(10), delay: float = DEFAULT_DELAY_S
) -> Topology:
    """A hub (node 0) with *num_leaves* leaves (all links bridges)."""
    if num_leaves < 1:
        raise ConfigurationError(f"need >= 1 leaf, got {num_leaves}")
    topo = Topology(f"star-{num_leaves}")
    for leaf in range(1, num_leaves + 1):
        topo.add_link(0, leaf, capacity=capacity, delay=delay)
    return topo


def dumbbell_topology(
    pairs: int,
    bottleneck_capacity: CapacitySpec = mbps(10),
    access_capacity: CapacitySpec = mbps(100),
    delay: float = DEFAULT_DELAY_S,
) -> Topology:
    """Classic dumbbell: *pairs* senders and receivers share one link.

    Senders are ``s0..s{n-1}``, receivers ``r0..r{n-1}``; the shared
    link runs ``L -- R``.
    """
    if pairs < 1:
        raise ConfigurationError(f"need >= 1 pair, got {pairs}")
    topo = Topology(f"dumbbell-{pairs}")
    topo.add_link("L", "R", capacity=bottleneck_capacity, delay=delay)
    for index in range(pairs):
        topo.add_link(f"s{index}", "L", capacity=access_capacity, delay=delay)
        topo.add_link("R", f"r{index}", capacity=access_capacity, delay=delay)
    return topo
