"""Topology generators.

Two generators are provided:

- :func:`block_mix_topology` — the Table 1 workhorse: given a target
  number of links per detour class, it glues triangle fans, square
  chains, long cycles and pendant edges at randomly chosen articulation
  vertices.  Because blocks share only single vertices with the rest of
  the graph, the resulting topology realises the requested detour-class
  mix *exactly* (substitution S1 in DESIGN.md).
- :func:`mesh_topology` — a random connected mesh (spanning tree plus
  random chords with optional triangle closure), used for sensitivity
  experiments where an organic, non-cactus structure is preferable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng
from repro.topology import blocks
from repro.topology.graph import (
    DEFAULT_CAPACITY_BPS,
    DEFAULT_DELAY_S,
    CapacitySpec,
    Link,
    Topology,
)


@dataclass
class BlockMixReport:
    """What :func:`block_mix_topology` actually built.

    Attributes
    ----------
    requested:
        ``(one_hop, two_hop, three_plus, none)`` link counts requested.
    built:
        Link counts actually realised, keyed by class name.
    links_by_class:
        The concrete links created for each class (canonical tuples).
    """

    requested: Tuple[int, int, int, int]
    built: Dict[str, int] = field(default_factory=dict)
    links_by_class: Dict[str, List[Link]] = field(default_factory=dict)

    @property
    def total_links(self) -> int:
        return sum(self.built.values())


def block_mix_topology(
    one_hop: int,
    two_hop: int,
    three_plus: int,
    none: int,
    seed: SeedLike = 0,
    name: str = "block-mix",
    capacity: CapacitySpec = DEFAULT_CAPACITY_BPS,
    delay: float = DEFAULT_DELAY_S,
) -> Tuple[Topology, BlockMixReport]:
    """Build a topology with an exact per-link detour-class mix.

    Parameters
    ----------
    one_hop, two_hop, three_plus, none:
        Number of links whose best detour must be 1 hop, 2 hops,
        3+ hops, and non-existent respectively.  Small counts that no
        motif combination can realise (e.g. ``one_hop=4``) raise
        :class:`~repro.errors.ConfigurationError` via the block
        decomposers; :func:`repro.topology.isp.solve_link_counts`
        avoids them when calibrating ISP profiles.
    seed:
        Seed (or generator) controlling motif order and attachment
        points only — the class mix itself is deterministic.

    Returns
    -------
    (topology, report):
        The topology plus a :class:`BlockMixReport` with the links
        created for each class.
    """
    for label, value in (
        ("one_hop", one_hop),
        ("two_hop", two_hop),
        ("three_plus", three_plus),
        ("none", none),
    ):
        if value < 0:
            raise ConfigurationError(f"{label} count must be >= 0, got {value}")
    if one_hop + two_hop + three_plus + none == 0:
        raise ConfigurationError("at least one link is required")

    rng = make_rng(seed, "block-mix")
    topo = Topology(name)
    namer = blocks.NodeNamer()
    root = topo.add_node(namer.fresh())
    attach_pool: List = [root]

    # (class label, builder, size) per motif; pendants are size-1 motifs.
    plan: List[Tuple[str, int]] = []
    plan.extend(("one_hop", size) for size in blocks.decompose_one_hop(one_hop))
    plan.extend(("two_hop", size) for size in blocks.decompose_two_hop(two_hop))
    plan.extend(
        ("three_plus", size) for size in blocks.decompose_three_plus(three_plus)
    )
    plan.extend(("none", 1) for _ in range(none))
    order = rng.permutation(len(plan))

    report = BlockMixReport(requested=(one_hop, two_hop, three_plus, none))
    for label in ("one_hop", "two_hop", "three_plus", "none"):
        report.built[label] = 0
        report.links_by_class[label] = []

    builders = {
        "one_hop": blocks.add_triangle_fan,
        "two_hop": blocks.add_square_chain,
        "three_plus": blocks.add_long_cycle,
    }
    for index in order:
        label, size = plan[index]
        attach = attach_pool[int(rng.integers(0, len(attach_pool)))]
        if label == "none":
            created = [blocks.add_pendant(topo, attach, namer)]
        else:
            created = builders[label](topo, attach, size, namer)
        report.built[label] += len(created)
        report.links_by_class[label].extend(created)
        attach_pool = topo.nodes()

    for u, v in topo.links():
        topo.set_capacity(u, v, capacity)
        topo.set_delay(u, v, delay)
    return topo, report


def mesh_topology(
    num_nodes: int,
    extra_links: int,
    triangle_fraction: float = 0.3,
    seed: SeedLike = 0,
    name: str = "mesh",
    capacity: CapacitySpec = DEFAULT_CAPACITY_BPS,
    delay: float = DEFAULT_DELAY_S,
) -> Topology:
    """Build a random connected mesh.

    The generator first draws a uniform random spanning tree (random
    attachment), then adds *extra_links* chords; a *triangle_fraction*
    of the chords deliberately close triangles (connect two neighbours
    of a random node), which raises 1-hop detour availability the way
    dense ISP cores do.
    """
    if num_nodes < 2:
        raise ConfigurationError(f"need >= 2 nodes, got {num_nodes}")
    max_links = num_nodes * (num_nodes - 1) // 2
    if num_nodes - 1 + extra_links > max_links:
        raise ConfigurationError(
            f"{extra_links} extra links do not fit in a {num_nodes}-node graph"
        )
    if not 0.0 <= triangle_fraction <= 1.0:
        raise ConfigurationError(
            f"triangle_fraction must be in [0, 1], got {triangle_fraction}"
        )

    rng = make_rng(seed, "mesh")
    topo = Topology(name)
    topo.add_node(0)
    for node in range(1, num_nodes):
        attach = int(rng.integers(0, node))
        topo.add_link(attach, node, capacity=capacity, delay=delay)

    added = 0
    attempts = 0
    max_attempts = 50 * (extra_links + 1)
    while added < extra_links and attempts < max_attempts:
        attempts += 1
        if rng.random() < triangle_fraction:
            hub = int(rng.integers(0, num_nodes))
            neighbours = topo.neighbors(hub)
            if len(neighbours) < 2:
                continue
            pick = rng.choice(len(neighbours), size=2, replace=False)
            u, v = neighbours[int(pick[0])], neighbours[int(pick[1])]
        else:
            u = int(rng.integers(0, num_nodes))
            v = int(rng.integers(0, num_nodes))
        if u == v or topo.has_link(u, v):
            continue
        topo.add_link(u, v, capacity=capacity, delay=delay)
        added += 1
    return topo
