"""Topology serialisation: JSON documents and edge-list text.

Lets users persist calibrated ISP maps (so experiment suites do not
regenerate them) and import their own topologies into the simulators.

JSON schema::

    {"name": "...",
     "nodes": [...],
     "links": [{"u": ..., "v": ..., "capacity": bps,
                "delay": s, "weight": w}, ...]}

The edge-list format is one ``u v capacity_bps delay_s`` per line with
``#`` comments, a superset of the common research-dataset layout.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import TopologyError
from repro.topology.graph import DEFAULT_CAPACITY_BPS, DEFAULT_DELAY_S, Topology

PathLike = Union[str, Path]


def topology_to_dict(topo: Topology) -> dict:
    """Serialise *topo* into a JSON-compatible dictionary."""
    return {
        "name": topo.name,
        "nodes": topo.nodes(),
        "links": [
            {
                "u": u,
                "v": v,
                "capacity": topo.capacity(u, v),
                "delay": topo.delay(u, v),
                "weight": topo.weight(u, v),
            }
            for u, v in topo.links()
        ],
    }


def topology_from_dict(document: dict) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    if "links" not in document:
        raise TopologyError("topology document has no 'links' field")
    topo = Topology(document.get("name", "topology"))
    for node in document.get("nodes", []):
        topo.add_node(_freeze(node))
    for link in document["links"]:
        try:
            topo.add_link(
                _freeze(link["u"]),
                _freeze(link["v"]),
                capacity=float(link.get("capacity", DEFAULT_CAPACITY_BPS)),
                delay=float(link.get("delay", DEFAULT_DELAY_S)),
                weight=float(link.get("weight", 1.0)),
            )
        except KeyError as missing:
            raise TopologyError(f"link record missing field {missing}") from None
    return topo


def _freeze(node):
    """JSON round-trips tuples into lists; restore hashability."""
    if isinstance(node, list):
        return tuple(_freeze(item) for item in node)
    return node


def save_topology(topo: Topology, path: PathLike) -> None:
    """Write *topo* as a JSON document."""
    Path(path).write_text(json.dumps(topology_to_dict(topo), indent=2))


def load_topology(path: PathLike) -> Topology:
    """Read a topology JSON document."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise TopologyError(f"invalid topology JSON in {path}: {error}") from None
    return topology_from_dict(document)


def topology_to_edge_list(topo: Topology) -> str:
    """Render *topo* as ``u v capacity delay`` lines."""
    lines = [f"# topology: {topo.name}", "# u v capacity_bps delay_s"]
    for u, v in topo.links():
        lines.append(f"{u} {v} {topo.capacity(u, v):.6g} {topo.delay(u, v):.6g}")
    return "\n".join(lines) + "\n"


def topology_from_edge_list(text: str, name: str = "edge-list") -> Topology:
    """Parse an edge-list document (see module docstring).

    Node tokens that look like integers become ints; everything else
    stays a string.
    """
    topo = Topology(name)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) < 2:
            raise TopologyError(f"line {line_number}: need at least 'u v'")
        u, v = (_node_token(tok) for tok in fields[:2])
        capacity = float(fields[2]) if len(fields) > 2 else DEFAULT_CAPACITY_BPS
        delay = float(fields[3]) if len(fields) > 3 else DEFAULT_DELAY_S
        try:
            topo.add_link(u, v, capacity=capacity, delay=delay)
        except TopologyError as error:
            raise TopologyError(f"line {line_number}: {error}") from None
    return topo


def _node_token(token: str):
    try:
        return int(token)
    except ValueError:
        return token
