"""Topology serialisation: JSON documents and edge-list text.

Lets users persist calibrated ISP maps (so experiment suites do not
regenerate them) and import their own topologies into the simulators.

JSON schema::

    {"name": "...",
     "nodes": [...],
     "links": [{"u": ..., "v": ..., "capacity": bps,
                "capacity_reverse": bps, "delay": s, "weight": w}, ...]}

``capacity`` is the ``u -> v`` direction and ``capacity_reverse`` the
``v -> u`` direction.  Legacy documents without ``capacity_reverse``
load as symmetric links (a one-time warning notes the assumption).

The edge-list format is one ``u v capacity_bps delay_s
[capacity_reverse_bps]`` per line with ``#`` comments, a superset of
the common research-dataset layout; the optional fifth field carries
the reverse-direction capacity of asymmetric links.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Union

from repro.errors import TopologyError
from repro.topology.graph import DEFAULT_CAPACITY_BPS, DEFAULT_DELAY_S, Topology

PathLike = Union[str, Path]

#: One-time flag: legacy (direction-less) documents warn only once per
#: process, not once per link or per file.
_warned_legacy_symmetric = False


def _warn_legacy_symmetric(source: str) -> None:
    global _warned_legacy_symmetric
    if _warned_legacy_symmetric:
        return
    _warned_legacy_symmetric = True
    warnings.warn(
        f"{source} has no per-direction capacities ('capacity_reverse'); "
        "loading links as symmetric (same capacity in both directions)",
        UserWarning,
        stacklevel=3,
    )


def topology_to_dict(topo: Topology) -> dict:
    """Serialise *topo* into a JSON-compatible dictionary."""
    return {
        "name": topo.name,
        "nodes": topo.nodes(),
        "links": [
            {
                "u": u,
                "v": v,
                "capacity": topo.capacity(u, v),
                "capacity_reverse": topo.capacity(v, u),
                "delay": topo.delay(u, v),
                "weight": topo.weight(u, v),
            }
            for u, v in topo.links()
        ],
    }


def topology_from_dict(document: dict) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    if "links" not in document:
        raise TopologyError("topology document has no 'links' field")
    topo = Topology(document.get("name", "topology"))
    for node in document.get("nodes", []):
        topo.add_node(_freeze(node))
    legacy = False
    for link in document["links"]:
        try:
            capacity = float(link.get("capacity", DEFAULT_CAPACITY_BPS))
            if "capacity_reverse" in link:
                reverse = float(link["capacity_reverse"])
            else:
                legacy = True
                reverse = capacity
            topo.add_link(
                _freeze(link["u"]),
                _freeze(link["v"]),
                capacity=capacity,
                capacity_reverse=reverse,
                delay=float(link.get("delay", DEFAULT_DELAY_S)),
                weight=float(link.get("weight", 1.0)),
            )
        except KeyError as missing:
            raise TopologyError(f"link record missing field {missing}") from None
    if legacy:
        _warn_legacy_symmetric(f"topology document {topo.name!r}")
    return topo


def _freeze(node):
    """JSON round-trips tuples into lists; restore hashability."""
    if isinstance(node, list):
        return tuple(_freeze(item) for item in node)
    return node


def save_topology(topo: Topology, path: PathLike) -> None:
    """Write *topo* as a JSON document."""
    Path(path).write_text(json.dumps(topology_to_dict(topo), indent=2))


def load_topology(path: PathLike) -> Topology:
    """Read a topology JSON document."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise TopologyError(f"invalid topology JSON in {path}: {error}") from None
    return topology_from_dict(document)


def topology_to_edge_list(topo: Topology) -> str:
    """Render *topo* as ``u v capacity delay [capacity_reverse]`` lines.

    The fifth column is only written for asymmetric links, keeping
    symmetric exports in the common four-column layout.
    """
    lines = [f"# topology: {topo.name}", "# u v capacity_bps delay_s [capacity_reverse_bps]"]
    for u, v in topo.links():
        forward = topo.capacity(u, v)
        reverse = topo.capacity(v, u)
        line = f"{u} {v} {forward:.6g} {topo.delay(u, v):.6g}"
        if reverse != forward:
            line += f" {reverse:.6g}"
        lines.append(line)
    return "\n".join(lines) + "\n"


def topology_from_edge_list(text: str, name: str = "edge-list") -> Topology:
    """Parse an edge-list document (see module docstring).

    Node tokens that look like integers become ints; everything else
    stays a string.  A fifth field, when present, is the reverse
    (``v -> u``) capacity of an asymmetric link.
    """
    topo = Topology(name)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) < 2:
            raise TopologyError(f"line {line_number}: need at least 'u v'")
        u, v = (_node_token(tok) for tok in fields[:2])
        capacity = float(fields[2]) if len(fields) > 2 else DEFAULT_CAPACITY_BPS
        delay = float(fields[3]) if len(fields) > 3 else DEFAULT_DELAY_S
        reverse = float(fields[4]) if len(fields) > 4 else None
        try:
            topo.add_link(
                u, v, capacity=capacity, delay=delay, capacity_reverse=reverse
            )
        except TopologyError as error:
            raise TopologyError(f"line {line_number}: {error}") from None
    return topo


def _node_token(token: str):
    try:
        return int(token)
    except ValueError:
        return token
