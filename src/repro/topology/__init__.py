"""Topology substrate: capacitated graphs, generators and ISP profiles.

The paper's evaluation runs on nine Rocketfuel-derived ISP maps and one
small worked-example topology (Fig. 3).  This package provides:

- :class:`~repro.topology.graph.Topology` — a capacitated graph with
  per-direction link capacities (symmetric links are the special case
  built by a scalar capacity spec) plus delay/weight attributes;
- :mod:`~repro.topology.blocks` — motif builders (triangle fans,
  square chains, long cycles, pendants) whose links have a known detour
  class *by construction*;
- :mod:`~repro.topology.generators` — the block-mix generator used to
  synthesise the ISP maps, plus a random mesh generator;
- :mod:`~repro.topology.isp` — the nine ISP profiles of Table 1 and the
  integer solver that recovers per-class link counts from the paper's
  percentages;
- :mod:`~repro.topology.builders` — small hand-built topologies
  (Fig. 3, dumbbell, line, star) used by tests and examples;
- :mod:`~repro.topology.capacity` — capacity assignment models.
"""

from repro.topology.graph import CapacitySpec, Link, Topology, link_key, split_capacity_spec
from repro.topology.builders import (
    dumbbell_topology,
    fig3_topology,
    line_topology,
    star_topology,
)
from repro.topology.generators import BlockMixReport, block_mix_topology, mesh_topology
from repro.topology.isp import (
    ISP_NAMES,
    IspProfile,
    build_isp_topology,
    isp_profile,
    solve_link_counts,
)
from repro.topology.capacity import (
    apply_capacity_asymmetry,
    assign_core_edge_capacity,
    assign_degree_capacity,
    assign_uniform_capacity,
)

__all__ = [
    "Topology",
    "Link",
    "CapacitySpec",
    "link_key",
    "split_capacity_spec",
    "fig3_topology",
    "dumbbell_topology",
    "line_topology",
    "star_topology",
    "block_mix_topology",
    "mesh_topology",
    "BlockMixReport",
    "ISP_NAMES",
    "IspProfile",
    "isp_profile",
    "build_isp_topology",
    "solve_link_counts",
    "assign_uniform_capacity",
    "assign_degree_capacity",
    "assign_core_edge_capacity",
    "apply_capacity_asymmetry",
]
