"""Capacity assignment models.

The paper's flow-level evaluation uses homogeneous core capacities
("we do not consider bottlenecks at the edges of the network"); the
discussion in Section 2.2 also motivates core/edge splits.  These
helpers mutate a topology in place and return it for chaining.

Every assigner accepts a :data:`~repro.topology.graph.CapacitySpec` —
a bare number (symmetric link) or a ``(forward, reverse)`` pair
relative to the canonical link orientation;
:func:`apply_capacity_asymmetry` turns a symmetric topology into an
asymmetric one by scaling the reverse direction of every link.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.topology.graph import CapacitySpec, Topology, split_capacity_spec


def _check_spec(capacity: CapacitySpec) -> None:
    forward, reverse = split_capacity_spec(capacity)
    if forward <= 0 or reverse <= 0:
        raise ConfigurationError(f"capacity must be positive, got {capacity!r}")


def assign_uniform_capacity(topo: Topology, capacity: CapacitySpec) -> Topology:
    """Set every link to *capacity* (bits/s, or a (fwd, rev) pair)."""
    _check_spec(capacity)
    for u, v in topo.links():
        topo.set_capacity(u, v, capacity)
    return topo


def assign_degree_capacity(
    topo: Topology, base_capacity: float, exponent: float = 0.5
) -> Topology:
    """Scale link capacity with endpoint degrees.

    Capacity of link ``(u, v)`` is
    ``base * (deg(u) * deg(v)) ** exponent`` — a common heuristic for
    ISP maps where high-degree core routers connect over fatter pipes.
    """
    if base_capacity <= 0:
        raise ConfigurationError(f"capacity must be positive, got {base_capacity!r}")
    for u, v in topo.links():
        scale = (topo.degree(u) * topo.degree(v)) ** exponent
        topo.set_capacity(u, v, base_capacity * max(scale, 1.0))
    return topo


def assign_core_edge_capacity(
    topo: Topology, core_capacity: float, edge_capacity: float
) -> Topology:
    """Give links that touch a leaf node *edge_capacity*, others core.

    Models the "ISPs move the bottleneck to the edge" practice the
    paper discusses in Section 2.2.
    """
    if core_capacity <= 0 or edge_capacity <= 0:
        raise ConfigurationError("capacities must be positive")
    for u, v in topo.links():
        if topo.degree(u) == 1 or topo.degree(v) == 1:
            topo.set_capacity(u, v, edge_capacity)
        else:
            topo.set_capacity(u, v, core_capacity)
    return topo


def apply_capacity_asymmetry(topo: Topology, ratio: float) -> Topology:
    """Scale the reverse direction of every link by *ratio*.

    Starting from any (typically symmetric) topology, the canonical
    ``u -> v`` direction keeps its capacity and the ``v -> u``
    direction becomes ``ratio`` times the forward one — the simplest
    model of asymmetric (e.g. wireless or provisioned-uplink) links.
    ``ratio=1.0`` is a no-op.
    """
    if ratio <= 0 or not math.isfinite(ratio):
        raise ConfigurationError(f"ratio must be positive and finite, got {ratio!r}")
    for u, v in topo.links():
        forward = topo.capacity(u, v)
        topo.set_directed_capacity(v, u, forward * ratio)
    return topo
