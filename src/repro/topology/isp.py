"""The nine ISP topologies of the paper's Table 1.

The paper measures, for nine Rocketfuel-derived ISP maps, the fraction
of links with a 1-hop, 2-hop and 3+-hop detour, and the fraction with
no detour at all.  The raw Rocketfuel maps are not available offline,
so this module reproduces the *measured property itself* (substitution
S1 in DESIGN.md):

1. :func:`solve_link_counts` recovers, for each ISP row, the smallest
   integer link count whose per-class split rounds to the published
   percentages (e.g. VSNL's ``25.00 / 33.33 / 0.00 / 41.67`` is exactly
   ``3 / 4 / 0 / 5`` over 12 links);
2. :func:`build_isp_topology` feeds those counts to the block-mix
   generator, which realises the class mix exactly by construction.

The resulting maps therefore reproduce Table 1 to rounding error, and
provide detour-rich substrates for the Fig. 4 flow-level experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.rng import SeedLike
from repro.topology.generators import BlockMixReport, block_mix_topology
from repro.topology.graph import (
    DEFAULT_CAPACITY_BPS,
    DEFAULT_DELAY_S,
    CapacitySpec,
    Topology,
)

#: Per-class link counts a block mix cannot realise (see blocks.py).
_UNBUILDABLE = {
    "one_hop": {1, 2, 4},
    "two_hop": {1, 2, 3, 5, 6, 9},
    "three_plus": {1, 2, 3, 4},
    "none": set(),
}

_CLASS_ORDER = ("one_hop", "two_hop", "three_plus", "none")


@dataclass(frozen=True)
class IspProfile:
    """One row of the paper's Table 1."""

    key: str
    display_name: str
    region: str
    #: ``(one_hop, two_hop, three_plus, none)`` percentages from Table 1.
    detour_percentages: Tuple[float, float, float, float]

    def as_row(self) -> List[str]:
        one, two, three, none = self.detour_percentages
        return [
            self.display_name,
            f"{one:.2f}%",
            f"{two:.2f}%",
            f"{three:.2f}%",
            f"{none:.2f}%",
        ]


_PROFILES: Dict[str, IspProfile] = {
    profile.key: profile
    for profile in (
        IspProfile("exodus", "Exodus", "US", (49.77, 35.48, 6.68, 8.06)),
        IspProfile("vsnl", "VSNL", "IN", (25.00, 33.33, 0.00, 41.67)),
        IspProfile("level3", "Level 3", "US", (92.22, 6.55, 0.68, 0.55)),
        IspProfile("sprint", "Sprint", "US", (56.66, 37.08, 1.81, 4.45)),
        IspProfile("att", "AT&T", "US", (34.84, 61.69, 0.72, 2.74)),
        IspProfile("ebone", "EBONE", "EU", (50.66, 36.22, 6.30, 6.82)),
        IspProfile("telstra", "Telstra", "AUS", (70.05, 10.42, 1.06, 18.47)),
        IspProfile("tiscali", "Tiscali", "EU", (24.50, 39.85, 10.15, 25.50)),
        IspProfile("verio", "Verio", "US", (71.50, 17.09, 1.74, 9.68)),
    )
}

#: ISP keys in the order of the paper's Table 1.
ISP_NAMES: Tuple[str, ...] = tuple(_PROFILES)

#: The paper's "Average" row of Table 1.
TABLE1_AVERAGE: Tuple[float, float, float, float] = (52.80, 30.86, 3.24, 13.10)


def isp_profile(name: str) -> IspProfile:
    """Return the :class:`IspProfile` for *name* (case-insensitive)."""
    profile = _PROFILES.get(name.lower())
    if profile is None:
        known = ", ".join(ISP_NAMES)
        raise ConfigurationError(f"unknown ISP {name!r}; known ISPs: {known}")
    return profile


def _largest_remainder_counts(
    percentages: Tuple[float, float, float, float], total: int
) -> Tuple[int, ...]:
    """Integer counts summing to *total*, apportioned to *percentages*."""
    raw = [p * total / 100.0 for p in percentages]
    counts = [int(x) for x in raw]
    remainders = sorted(
        range(len(raw)), key=lambda i: (raw[i] - counts[i], raw[i]), reverse=True
    )
    shortfall = total - sum(counts)
    for i in range(shortfall):
        counts[remainders[i % len(raw)]] += 1
    return tuple(counts)


def _is_buildable(counts: Tuple[int, ...]) -> bool:
    return all(
        count not in _UNBUILDABLE[label]
        for label, count in zip(_CLASS_ORDER, counts)
    )


def _rounding_error(
    counts: Tuple[int, ...], percentages: Tuple[float, float, float, float]
) -> float:
    total = sum(counts)
    return max(
        abs(100.0 * count / total - target)
        for count, target in zip(counts, percentages)
    )


@lru_cache(maxsize=None)
def solve_link_counts(
    percentages: Tuple[float, float, float, float],
    min_links: int = 8,
    max_links: int = 4000,
    tolerance: float = 0.005,
) -> Tuple[int, int, int, int]:
    """Smallest constructible link counts matching *percentages*.

    Scans candidate totals ``m`` and apportions them with the largest-
    remainder method; returns the first ``m`` whose per-class
    percentages all fall within *tolerance* of the paper's values
    (0.005 pp = exact 2-decimal rounding) and whose counts the block
    generator can realise.  If no total matches exactly, the best
    approximation found is returned.

    >>> solve_link_counts((25.00, 33.33, 0.00, 41.67))
    (3, 4, 0, 5)
    """
    if abs(sum(percentages) - 100.0) > 0.5:
        raise ConfigurationError(
            f"percentages must sum to ~100, got {sum(percentages):.2f}"
        )
    best: Optional[Tuple[int, ...]] = None
    best_error = float("inf")
    for total in range(min_links, max_links + 1):
        counts = _largest_remainder_counts(percentages, total)
        if not _is_buildable(counts):
            continue
        error = _rounding_error(counts, percentages)
        if error < best_error:
            best, best_error = counts, error
        if error <= tolerance:
            return counts  # type: ignore[return-value]
    if best is None:
        raise ConfigurationError(
            f"no constructible link counts for {percentages} up to {max_links}"
        )
    return best  # type: ignore[return-value]


def build_isp_topology(
    name: str,
    seed: SeedLike = 0,
    capacity: CapacitySpec = DEFAULT_CAPACITY_BPS,
    delay: float = DEFAULT_DELAY_S,
    max_links: int = 4000,
) -> Topology:
    """Build the synthetic map for ISP *name* (see module docstring).

    The detour-class mix matches the paper's Table 1 row to rounding
    error; *seed* only randomises the arrangement of motifs.
    """
    topo, _ = build_isp_topology_with_report(
        name, seed=seed, capacity=capacity, delay=delay, max_links=max_links
    )
    return topo


def build_isp_topology_with_report(
    name: str,
    seed: SeedLike = 0,
    capacity: CapacitySpec = DEFAULT_CAPACITY_BPS,
    delay: float = DEFAULT_DELAY_S,
    max_links: int = 4000,
) -> Tuple[Topology, BlockMixReport]:
    """Like :func:`build_isp_topology` but also return the build report."""
    profile = isp_profile(name)
    one, two, three, none = solve_link_counts(
        profile.detour_percentages, max_links=max_links
    )
    topo, report = block_mix_topology(
        one,
        two,
        three,
        none,
        seed=seed,
        name=f"isp-{profile.key}",
        capacity=capacity,
        delay=delay,
    )
    return topo, report
