"""Table 1 — Available Detour Paths in Real Topologies.

For every ISP profile we build the calibrated synthetic map, classify
every link's best detour, and put the measured percentages next to the
paper's published row.  The paper's "Average" row (unweighted mean of
the per-ISP percentages) is reproduced as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.records import ComparisonTable
from repro.analysis.reporting import ascii_table
from repro.campaign.scenario import register_scenario
from repro.routing.detour import DetourBreakdown, DetourClass, detour_breakdown
from repro.topology.isp import (
    ISP_NAMES,
    TABLE1_AVERAGE,
    build_isp_topology,
    isp_profile,
)

_CLASS_LABELS = ("1 hop", "2 hops", "3+ hops", "N/A")


@dataclass
class Table1Row:
    isp: str
    display_name: str
    paper: Tuple[float, float, float, float]
    measured: Tuple[float, float, float, float]
    num_links: int
    num_nodes: int

    @property
    def max_error(self) -> float:
        return max(abs(p - m) for p, m in zip(self.paper, self.measured))


@dataclass
class Table1Result:
    rows: List[Table1Row] = field(default_factory=list)

    def average_measured(self) -> Tuple[float, float, float, float]:
        stacked = np.array([row.measured for row in self.rows])
        return tuple(float(x) for x in stacked.mean(axis=0))

    @property
    def max_error(self) -> float:
        return max(row.max_error for row in self.rows)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (campaign result records)."""
        return {
            "rows": [
                {
                    "isp": row.isp,
                    "display_name": row.display_name,
                    "paper": list(row.paper),
                    "measured": list(row.measured),
                    "num_links": row.num_links,
                    "num_nodes": row.num_nodes,
                    "max_error": row.max_error,
                }
                for row in self.rows
            ],
            "average_measured": list(self.average_measured()),
            "max_error": self.max_error,
        }

    def comparisons(self) -> ComparisonTable:
        table = ComparisonTable("table1: detour availability (%)")
        for row in self.rows:
            for label, paper, measured in zip(
                _CLASS_LABELS, row.paper, row.measured
            ):
                table.add(
                    f"{row.display_name} {label}", paper, measured, unit="%"
                )
        if len(self.rows) == len(ISP_NAMES):
            # The paper's Average row only makes sense over all nine ISPs.
            for label, paper, measured in zip(
                _CLASS_LABELS, TABLE1_AVERAGE, self.average_measured()
            ):
                table.add(f"Average {label}", paper, measured, unit="%")
        return table

    def render(self) -> str:
        headers = [
            "ISP",
            "1 hop (paper/ours)",
            "2 hops (paper/ours)",
            "3+ hops (paper/ours)",
            "N/A (paper/ours)",
            "links",
        ]
        rows = []
        for row in self.rows:
            cells = [row.display_name]
            for paper, measured in zip(row.paper, row.measured):
                cells.append(f"{paper:5.2f}% / {measured:5.2f}%")
            cells.append(str(row.num_links))
            rows.append(cells)
        average = self.average_measured()
        cells = ["Average"]
        for paper, measured in zip(TABLE1_AVERAGE, average):
            cells.append(f"{paper:5.2f}% / {measured:5.2f}%")
        cells.append("")
        rows.append(cells)
        return ascii_table(
            headers, rows, title="Table 1: Available Detour Paths (paper / measured)"
        )


def run_table1(
    seed: int = 0, isps: Optional[Sequence[str]] = None
) -> Table1Result:
    """Build every ISP map and measure its detour-class breakdown."""
    result = Table1Result()
    for name in isps or ISP_NAMES:
        profile = isp_profile(name)
        topo = build_isp_topology(name, seed=seed)
        breakdown = detour_breakdown(topo)
        result.rows.append(
            Table1Row(
                isp=profile.key,
                display_name=profile.display_name,
                paper=profile.detour_percentages,
                measured=breakdown.percentages(),
                num_links=topo.num_links,
                num_nodes=topo.num_nodes,
            )
        )
    return result


@register_scenario(
    "table1",
    summary="Table 1: detour availability across the nine ISP maps",
    tags=("paper", "topology"),
)
def scenario_table1(seed: int = 0, isp: Optional[str] = None) -> Dict[str, object]:
    """Campaign adapter: Table 1, optionally restricted to one ISP."""
    result = run_table1(seed=seed, isps=[isp] if isp else None)
    return result.as_dict()
