"""Paper-vs-measured comparison records.

Every experiment driver returns its numbers alongside the paper's, so
benches and EXPERIMENTS.md can show the reproduction deltas directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured data point."""

    experiment: str
    series: str
    paper_value: Optional[float]
    measured_value: float
    unit: str = ""
    note: str = ""

    @property
    def delta(self) -> Optional[float]:
        if self.paper_value is None:
            return None
        return self.measured_value - self.paper_value

    @property
    def relative_error(self) -> Optional[float]:
        if self.paper_value in (None, 0):
            return None
        return (self.measured_value - self.paper_value) / abs(self.paper_value)

    def row(self) -> List[str]:
        paper = "-" if self.paper_value is None else f"{self.paper_value:.3f}"
        delta = "-" if self.delta is None else f"{self.delta:+.3f}"
        return [
            self.series,
            paper,
            f"{self.measured_value:.3f}",
            delta,
            self.unit,
            self.note,
        ]


@dataclass
class ComparisonTable:
    """A group of comparisons for one experiment."""

    experiment: str
    comparisons: List[Comparison] = field(default_factory=list)

    def add(
        self,
        series: str,
        paper_value: Optional[float],
        measured_value: float,
        unit: str = "",
        note: str = "",
    ) -> Comparison:
        comparison = Comparison(
            self.experiment, series, paper_value, measured_value, unit, note
        )
        self.comparisons.append(comparison)
        return comparison

    def render(self) -> str:
        from repro.analysis.reporting import ascii_table

        rows = [comparison.row() for comparison in self.comparisons]
        return ascii_table(
            ["series", "paper", "measured", "delta", "unit", "note"],
            rows,
            title=self.experiment,
        )

    def max_relative_error(self) -> float:
        errors = [
            abs(comparison.relative_error)
            for comparison in self.comparisons
            if comparison.relative_error is not None
        ]
        return max(errors) if errors else 0.0
