"""Fig. 3 — the fairness worked example.

The paper's arithmetic on the 5-link example topology:

- **e2e flow control** (left): the flow crossing the 2 Mbps bottleneck
  gets 2 Mbps, the other dominates the shared 10 Mbps link with
  8 Mbps; Jain's index 0.73;
- **INRPP** (right): the shared link splits 5/5 (global fairness); at
  node 2 the bottlenecked flow sends 2 Mbps over the direct link and
  detours 3 Mbps through node 3 (local stability); Jain's index 1.0.

Three independent reproductions are provided: the closed-form
arithmetic, the fluid allocators of :mod:`repro.flowsim`, and the full
chunk-level protocol simulation of :mod:`repro.chunksim`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.records import ComparisonTable
from repro.campaign.scenario import register_scenario
from repro.chunksim import ChunkNetwork, ChunkSimConfig
from repro.flowsim import make_strategy
from repro.metrics.fairness import jain_index
from repro.topology.builders import fig3_topology
from repro.units import mbps

#: The paper's reported numbers for Fig. 3.
PAPER_E2E_RATES_MBPS = (2.0, 8.0)
PAPER_INRPP_RATES_MBPS = (5.0, 5.0)
PAPER_E2E_JAIN = 0.73
PAPER_INRPP_JAIN = 1.0


@dataclass
class Fig3Result:
    """Rates (Mbps) and fairness for one mode of the Fig. 3 example."""

    mode: str
    method: str
    rate_bottlenecked_mbps: float
    rate_clear_mbps: float

    @property
    def jain(self) -> float:
        return jain_index([self.rate_bottlenecked_mbps, self.rate_clear_mbps])

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (campaign result records)."""
        return {
            "mode": self.mode,
            "method": self.method,
            "rate_bottlenecked_mbps": self.rate_bottlenecked_mbps,
            "rate_clear_mbps": self.rate_clear_mbps,
            "jain": self.jain,
        }

    def comparisons(self) -> ComparisonTable:
        paper_rates = (
            PAPER_E2E_RATES_MBPS if self.mode == "e2e" else PAPER_INRPP_RATES_MBPS
        )
        paper_jain = PAPER_E2E_JAIN if self.mode == "e2e" else PAPER_INRPP_JAIN
        table = ComparisonTable(f"fig3 ({self.mode}, {self.method})")
        table.add("flow 1->4 rate", paper_rates[0], self.rate_bottlenecked_mbps, "Mbps")
        table.add("flow 1->5 rate", paper_rates[1], self.rate_clear_mbps, "Mbps")
        table.add("Jain index", paper_jain, self.jain)
        return table


def fig3_analytic_e2e() -> Fig3Result:
    """Closed-form e2e (max-min) allocation on the Fig. 3 topology."""
    topo = fig3_topology()
    strategy = make_strategy("sp", topo)
    flows = {
        1: (strategy.route(1, 1, 4), mbps(10)),
        2: (strategy.route(2, 1, 5), mbps(10)),
    }
    outcome = strategy.allocate(flows)
    return Fig3Result(
        mode="e2e",
        method="fluid",
        rate_bottlenecked_mbps=outcome.rates[1] / 1e6,
        rate_clear_mbps=outcome.rates[2] / 1e6,
    )


def fig3_analytic_inrpp() -> Fig3Result:
    """Fluid INRP allocation (push + detour) on the Fig. 3 topology."""
    topo = fig3_topology()
    strategy = make_strategy("inrp", topo)
    flows = {
        1: (strategy.route(1, 1, 4), mbps(10)),
        2: (strategy.route(2, 1, 5), mbps(10)),
    }
    outcome = strategy.allocate(flows)
    return Fig3Result(
        mode="inrpp",
        method="fluid",
        rate_bottlenecked_mbps=outcome.rates[1] / 1e6,
        rate_clear_mbps=outcome.rates[2] / 1e6,
    )


def run_fig3_simulation(
    mode: str,
    duration: float = 20.0,
    warmup: Optional[float] = None,
    config: Optional[ChunkSimConfig] = None,
) -> Tuple[Fig3Result, "ChunkNetwork"]:
    """Chunk-level protocol simulation of the Fig. 3 scenario.

    *mode* is ``"aimd"`` (the e2e baseline) or ``"inrpp"``.  Returns
    the result plus the network object for deeper inspection.
    """
    sim_mode = "aimd" if mode == "e2e" else "inrpp"
    topo = fig3_topology()
    network = ChunkNetwork(topo, mode=sim_mode, config=config)
    # Plenty of chunks so both transfers outlast the run (steady state).
    flow_bottlenecked = network.add_flow(1, 4, num_chunks=10_000_000)
    flow_clear = network.add_flow(1, 5, num_chunks=10_000_000)
    report = network.run(duration=duration, warmup=warmup)
    return (
        Fig3Result(
            mode="e2e" if sim_mode == "aimd" else "inrpp",
            method="chunk-sim",
            rate_bottlenecked_mbps=report.flow(flow_bottlenecked).goodput_bps / 1e6,
            rate_clear_mbps=report.flow(flow_clear).goodput_bps / 1e6,
        ),
        network,
    )


def run_fig3_all(duration: float = 20.0) -> Dict[str, Fig3Result]:
    """All four reproductions keyed by ``{mode}-{method}``."""
    results = {
        "e2e-fluid": fig3_analytic_e2e(),
        "inrpp-fluid": fig3_analytic_inrpp(),
    }
    results["e2e-sim"], _ = run_fig3_simulation("e2e", duration=duration)
    results["inrpp-sim"], _ = run_fig3_simulation("inrpp", duration=duration)
    return results


@register_scenario(
    "fig3",
    summary="Fig. 3: fairness worked example (fluid + chunk-level)",
    tags=("paper", "chunksim"),
)
def scenario_fig3(duration: float = 20.0) -> Dict[str, object]:
    """Campaign adapter: all four Fig. 3 reproductions.

    The scenario is fully deterministic (no seed axis): the fluid runs
    are closed-form and the chunk-level protocol simulation has no
    random component on the Fig. 3 topology.
    """
    return {
        key: result.as_dict()
        for key, result in run_fig3_all(duration=duration).items()
    }
