"""Experiment drivers and reporting for every paper artifact.

One module per evaluation artifact:

- :mod:`~repro.analysis.table1` — detour availability across the nine
  ISP maps (Table 1);
- :mod:`~repro.analysis.fig3` — the fairness worked example, both
  analytic and chunk-level (Fig. 3);
- :mod:`~repro.analysis.fig4` — flow-level throughput and path-stretch
  experiments (Fig. 4a / Fig. 4b);
- :mod:`~repro.analysis.reporting` — ASCII tables, bar charts and CDF
  plots used by the benches and examples.
"""

from repro.analysis.records import Comparison, ComparisonTable
from repro.analysis.reporting import ascii_bar_chart, ascii_cdf, ascii_table
from repro.analysis.table1 import Table1Result, run_table1
from repro.analysis.fig3 import (
    Fig3Result,
    fig3_analytic_e2e,
    fig3_analytic_inrpp,
    run_fig3_simulation,
)
from repro.analysis.fig4 import Fig4Result, run_fig4

__all__ = [
    "Comparison",
    "ComparisonTable",
    "ascii_table",
    "ascii_bar_chart",
    "ascii_cdf",
    "Table1Result",
    "run_table1",
    "Fig3Result",
    "fig3_analytic_e2e",
    "fig3_analytic_inrpp",
    "run_fig3_simulation",
    "Fig4Result",
    "run_fig4",
]
