"""Fig. 4 — flow-level evaluation on the ISP topologies.

Fig. 4a compares network throughput of SP, ECMP and INRP ("URP" in the
paper's legend) on Telstra, Exodus and Tiscali with Poisson-arriving
flows; the paper reports INRP gaining 9–15 % over SP with ECMP in
between.  Fig. 4b shows the CDF of INRP's path stretch: most traffic
takes the shortest path and the tail stays below ~1.35.

The driver evaluates steady-state snapshots of the stationary flow
population (see :mod:`repro.flowsim.snapshots`), with locality-weighted
core-to-core demands — the intra-domain traffic-engineering picture the
paper's detour mechanism targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.records import ComparisonTable
from repro.analysis.reporting import ascii_bar_chart, ascii_cdf
from repro.campaign.scenario import register_scenario
from repro.flowsim.snapshots import SnapshotResult, snapshot_experiment
from repro.flowsim.strategies import make_strategy
from repro.rng import derive_seed
from repro.topology.isp import build_isp_topology
from repro.units import mbps
from repro.workloads.traffic import local_pairs

#: The paper's headline claim for Fig. 4a.
PAPER_MIN_GAIN = 0.09
PAPER_MAX_GAIN = 0.15

#: Topologies shown in Fig. 4.
FIG4_ISPS = ("telstra", "exodus", "tiscali")

#: Strategies in Fig. 4a's legend order.
FIG4_STRATEGIES = ("sp", "ecmp", "inrp")


@dataclass
class Fig4Result:
    """Per-topology throughputs and INRP stretch samples."""

    #: topology -> strategy -> mean network throughput.
    throughput: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: topology -> raw snapshot results of the INRP run (for Fig. 4b).
    inrp_results: Dict[str, SnapshotResult] = field(default_factory=dict)

    def gain_over_sp(self, isp: str, strategy: str = "inrp") -> float:
        """Relative throughput gain of *strategy* over SP."""
        row = self.throughput[isp]
        return row[strategy] / row["sp"] - 1.0

    def comparisons(self) -> ComparisonTable:
        table = ComparisonTable("fig4a: INRP throughput gain over SP")
        for isp in self.throughput:
            table.add(
                f"{isp} INRP/SP gain",
                (PAPER_MIN_GAIN + PAPER_MAX_GAIN) / 2,
                self.gain_over_sp(isp),
                note=f"paper band [{PAPER_MIN_GAIN}, {PAPER_MAX_GAIN}]",
            )
        return table

    def render_fig4a(self) -> str:
        series = {
            isp: {name.upper(): value for name, value in row.items()}
            for isp, row in self.throughput.items()
        }
        return ascii_bar_chart(
            series, title="Fig. 4a: network throughput (SP / ECMP / INRP)"
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (campaign result records)."""
        gains = {isp: self.gain_over_sp(isp) for isp in self.throughput}
        payload: Dict[str, object] = {
            "throughput": {
                isp: dict(row) for isp, row in self.throughput.items()
            },
            "gain_over_sp": gains,
            "mean_gain_over_sp": sum(gains.values()) / len(gains)
            if gains
            else 0.0,
        }
        stretch = {}
        for isp, result in self.inrp_results.items():
            cdf = result.stretch_cdf()
            stretch[isp] = {
                "p50": cdf.quantile(0.50),
                "p90": cdf.quantile(0.90),
                "p99": cdf.quantile(0.99),
            }
        payload["inrp_stretch"] = stretch
        return payload

    def render_fig4b(self, points: int = 10) -> str:
        curves = {}
        for isp, result in self.inrp_results.items():
            xs, ps = result.stretch_cdf().points()
            curves[isp] = (xs, ps)
        return ascii_cdf(
            curves, points=points, title="Fig. 4b: INRP path stretch CDF"
        )


def run_snapshot_cell(
    topo,
    strategy_name: str,
    seed: int,
    sampler_label: str,
    num_snapshots: int = 8,
    demand_bps: float = mbps(10),
    flows_per_node: float = 1.0 / 12.0,
    max_hops: int = 5,
    detour_depth: int = 2,
    pooling_fraction: float = 1.0,
) -> SnapshotResult:
    """One (topology, strategy) cell of the calibrated snapshot sweep.

    The single place the Fig. 4 operating point is encoded — the flow
    population floor, the detour-depth gating and the
    locality-weighted demand model — shared by :func:`run_fig4` and
    the ``snapshot-sweep`` campaign scenario so the two cannot drift
    apart.  ``pooling_fraction`` (INRP/URP only) caps the share of
    each link detour traffic may claim; 1.0 is the paper's full
    pooling.
    """
    num_flows = max(10, int(topo.num_nodes * flows_per_node))
    kwargs = (
        {"detour_depth": detour_depth, "pooling_fraction": pooling_fraction}
        if strategy_name in ("inrp", "urp")
        else {}
    )
    strategy = make_strategy(strategy_name, topo, **kwargs)
    sampler_seed = derive_seed(seed, sampler_label)
    return snapshot_experiment(
        topo,
        strategy,
        num_flows=num_flows,
        demand_bps=demand_bps,
        num_snapshots=num_snapshots,
        seed=seed,
        pair_sampler=local_pairs(topo, sampler_seed, max_hops=max_hops),
    )


def run_fig4(
    isps: Sequence[str] = FIG4_ISPS,
    strategies: Sequence[str] = FIG4_STRATEGIES,
    seed: int = 42,
    num_snapshots: int = 8,
    demand_bps: float = mbps(10),
    flows_per_node: float = 1.0 / 12.0,
    max_hops: int = 5,
    detour_depth: int = 2,
) -> Fig4Result:
    """Run the Fig. 4 experiment suite.

    Parameters
    ----------
    flows_per_node:
        Concurrent-flow population as a fraction of the topology's
        node count (default: 1 flow per 12 nodes, the calibrated
        operating point where SP utilisation sits in the paper's
        0.6–0.8 range).
    max_hops:
        Locality radius of the demand model (core-to-core pairs).
    """
    result = Fig4Result()
    for isp in isps:
        topo = build_isp_topology(isp, seed=0)
        result.throughput[isp] = {}
        for name in strategies:
            snapshot = run_snapshot_cell(
                topo,
                name,
                seed=seed,
                sampler_label=f"fig4-{isp}",
                num_snapshots=num_snapshots,
                demand_bps=demand_bps,
                flows_per_node=flows_per_node,
                max_hops=max_hops,
                detour_depth=detour_depth,
            )
            result.throughput[isp][name] = snapshot.mean_throughput
            if name == "inrp":
                result.inrp_results[isp] = snapshot
    return result


@register_scenario(
    "fig4",
    summary="Fig. 4: SP/ECMP/INRP throughput + INRP stretch on ISP maps",
    tags=("paper", "flowsim"),
)
def scenario_fig4(
    seed: int = 42,
    isp: Optional[str] = None,
    num_snapshots: int = 8,
    detour_depth: int = 2,
) -> Dict[str, object]:
    """Campaign adapter: Fig. 4, optionally restricted to one ISP."""
    result = run_fig4(
        isps=(isp,) if isp else FIG4_ISPS,
        seed=seed,
        num_snapshots=num_snapshots,
        detour_depth=detour_depth,
    )
    return result.as_dict()
