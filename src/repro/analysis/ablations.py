"""Ablation drivers for the design decisions listed in DESIGN.md.

Each driver is a plain function returning a small result mapping, so
benches, notebooks and the CLI can share them:

- :func:`ablate_detour_depth` — detour depth 0/1/2 on an ISP map
  (DESIGN.md decision 1);
- :func:`ablate_custody_size` — custody store sweep on a detour-free
  bottleneck (decision 2);
- :func:`ablate_anticipation` — anticipation horizon Ac on the Fig. 3
  scenario (decision 3);
- :func:`ablate_gossip` — informed vs optimistic detouring
  (decision 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.fig3 import run_fig3_simulation
from repro.campaign.scenario import register_scenario
from repro.chunksim import ChunkNetwork, ChunkSimConfig
from repro.flowsim.snapshots import snapshot_experiment
from repro.flowsim.strategies import make_strategy
from repro.rng import derive_seed
from repro.topology.graph import Topology
from repro.topology.isp import build_isp_topology
from repro.units import mbps
from repro.workloads.traffic import local_pairs


def ablate_detour_depth(
    isp: str = "telstra",
    depths: Sequence[int] = (0, 1, 2),
    seed: int = 42,
    num_snapshots: int = 6,
) -> Dict[int, float]:
    """Mean network throughput of INRP per detour depth."""
    topo = build_isp_topology(isp, seed=0)
    num_flows = max(10, topo.num_nodes // 12)
    sampler_seed = derive_seed(seed, f"ablation-depth-{isp}")
    throughput: Dict[int, float] = {}
    for depth in depths:
        strategy = make_strategy("inrp", topo, detour_depth=depth)
        snapshot = snapshot_experiment(
            topo,
            strategy,
            num_flows=num_flows,
            demand_bps=mbps(10),
            num_snapshots=num_snapshots,
            seed=seed,
            pair_sampler=local_pairs(topo, sampler_seed),
        )
        throughput[depth] = snapshot.mean_throughput
    return throughput


@dataclass(frozen=True)
class CustodyAblationPoint:
    goodput_mbps: float
    peak_custody_bytes: int
    backpressure_signals: int
    drops: int


def _bottleneck_line() -> Topology:
    topo = Topology("custody-ablation")
    topo.add_link(0, 1, capacity=mbps(10))
    topo.add_link(1, 2, capacity=mbps(2))
    return topo


def ablate_custody_size(
    sizes: Sequence[Tuple[str, Optional[int]]] = (
        ("40kB", 40_000),
        ("200kB", 200_000),
        ("2MB", 2_000_000),
        ("unbounded", None),
    ),
    duration: float = 15.0,
) -> Dict[str, CustodyAblationPoint]:
    """Custody sweep on a 10 -> 2 Mbps detour-free bottleneck."""
    results: Dict[str, CustodyAblationPoint] = {}
    for label, custody_bytes in sizes:
        config = ChunkSimConfig(custody_bytes=custody_bytes)
        net = ChunkNetwork(_bottleneck_line(), mode="inrpp", config=config)
        flow = net.add_flow(0, 2, num_chunks=10_000_000)
        report = net.run(duration=duration, warmup=duration / 3)
        results[label] = CustodyAblationPoint(
            goodput_mbps=report.flow(flow).goodput_bps / 1e6,
            peak_custody_bytes=report.custody_peak_bytes,
            backpressure_signals=report.backpressure_signals,
            drops=report.drops,
        )
    return results


def ablate_anticipation(
    horizons: Sequence[int] = (0, 2, 8, 32),
    duration: float = 15.0,
) -> Dict[int, Tuple[float, float, float]]:
    """Fig. 3 INRPP goodputs ``(flow1, flow2, jain)`` per ``Ac``."""
    results: Dict[int, Tuple[float, float, float]] = {}
    for anticipation in horizons:
        config = ChunkSimConfig(anticipation=anticipation)
        outcome, _ = run_fig3_simulation("inrpp", duration=duration, config=config)
        results[anticipation] = (
            outcome.rate_bottlenecked_mbps,
            outcome.rate_clear_mbps,
            outcome.jain,
        )
    return results


def ablate_gossip(
    isp: str = "vsnl",
    duration: float = 10.0,
    num_flows: int = 4,
    seed: int = 11,
) -> Dict[bool, float]:
    """Aggregate chunk-level goodput with and without neighbour state.

    Runs several concurrent transfers between core nodes of a (small)
    ISP map; without gossip the detour choice is optimistic, so
    detoured chunks may pile into already-congested neighbours.
    """
    topo = build_isp_topology(isp, seed=0)
    sampler = local_pairs(topo, seed=seed)
    pairs = [sampler() for _ in range(num_flows)]
    results: Dict[bool, float] = {}
    for gossip in (True, False):
        config = ChunkSimConfig(gossip=gossip)
        net = ChunkNetwork(topo, mode="inrpp", config=config)
        flows = [
            net.add_flow(src, dst, num_chunks=10_000_000) for src, dst in pairs
        ]
        report = net.run(duration=duration, warmup=duration / 3)
        results[gossip] = sum(report.flow(f).goodput_bps for f in flows)
    return results


# --- campaign adapters -------------------------------------------------
#
# JSON object keys must be strings, so the int/bool-keyed ablation maps
# are re-keyed here; otherwise the adapters are thin shims over the
# drivers above.


@register_scenario(
    "ablation-detour-depth",
    summary="ablation: INRP throughput vs detour depth on an ISP map",
    tags=("ablation", "flowsim"),
)
def scenario_detour_depth(
    isp: str = "telstra", seed: int = 42, num_snapshots: int = 6
) -> Dict[str, object]:
    throughput = ablate_detour_depth(
        isp=isp, seed=seed, num_snapshots=num_snapshots
    )
    return {
        "isp": isp,
        "throughput_by_depth": {
            str(depth): value for depth, value in throughput.items()
        },
    }


@register_scenario(
    "ablation-custody",
    summary="ablation: custody-store size sweep on a detour-free bottleneck",
    tags=("ablation", "chunksim"),
)
def scenario_custody(duration: float = 15.0) -> Dict[str, object]:
    points = ablate_custody_size(duration=duration)
    return {
        label: {
            "goodput_mbps": point.goodput_mbps,
            "peak_custody_bytes": point.peak_custody_bytes,
            "backpressure_signals": point.backpressure_signals,
            "drops": point.drops,
        }
        for label, point in points.items()
    }


@register_scenario(
    "ablation-anticipation",
    summary="ablation: anticipation horizon Ac on the Fig. 3 scenario",
    tags=("ablation", "chunksim"),
)
def scenario_anticipation(duration: float = 15.0) -> Dict[str, object]:
    results = ablate_anticipation(duration=duration)
    return {
        str(horizon): {
            "rate_bottlenecked_mbps": rates[0],
            "rate_clear_mbps": rates[1],
            "jain": rates[2],
        }
        for horizon, rates in results.items()
    }


@register_scenario(
    "ablation-gossip",
    summary="ablation: informed vs optimistic detouring on an ISP map",
    tags=("ablation", "chunksim"),
)
def scenario_gossip(
    isp: str = "vsnl",
    duration: float = 10.0,
    num_flows: int = 4,
    seed: int = 11,
) -> Dict[str, object]:
    results = ablate_gossip(
        isp=isp, duration=duration, num_flows=num_flows, seed=seed
    )
    return {
        "isp": isp,
        "goodput_bps": {
            "gossip": results[True],
            "optimistic": results[False],
        },
    }
