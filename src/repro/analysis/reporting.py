"""Terminal rendering: tables, bar charts and CDF plots in ASCII.

matplotlib is not available offline, so the benches render the paper's
figures as text: Fig. 4a becomes a horizontal bar chart, Fig. 4b a
down-sampled CDF plot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table with a header rule."""
    if not headers:
        raise AnalysisError("a table needs headers")
    table = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(table[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table[1:]:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_bar_chart(
    series: Dict[str, Dict[str, float]],
    width: int = 40,
    unit: str = "",
    title: Optional[str] = None,
) -> str:
    """Grouped horizontal bars: ``{group: {label: value}}``.

    This renders the paper's Fig. 4a: groups are topologies, labels
    are the SP/ECMP/INRP strategies.
    """
    if not series:
        raise AnalysisError("no data to chart")
    peak = max(
        value for group in series.values() for value in group.values()
    )
    if peak <= 0:
        peak = 1.0
    label_width = max(
        len(label) for group in series.values() for label in group
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    for group_name, group in series.items():
        lines.append(f"{group_name}:")
        for label, value in group.items():
            bar = "#" * max(1, int(round(width * value / peak)))
            lines.append(
                f"  {label.ljust(label_width)} |{bar.ljust(width)}| "
                f"{value:.3f}{unit}"
            )
    return "\n".join(lines)


def ascii_cdf(
    curves: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    points: int = 12,
    title: Optional[str] = None,
) -> str:
    """Tabulated CDF curves: ``{name: (xs, ps)}`` -> sampled table.

    Renders the paper's Fig. 4b: each curve is sampled at evenly
    spaced x values between the global min and max.
    """
    if not curves:
        raise AnalysisError("no curves to plot")
    lo = min(min(xs) for xs, _ in curves.values())
    hi = max(max(xs) for xs, _ in curves.values())
    if hi <= lo:
        hi = lo + 1.0
    grid = [lo + (hi - lo) * i / (points - 1) for i in range(points)]

    def _eval(xs: Sequence[float], ps: Sequence[float], x: float) -> float:
        best = 0.0
        for xi, pi in zip(xs, ps):
            if xi <= x + 1e-12:
                best = pi
            else:
                break
        return best

    headers = ["x"] + list(curves)
    rows = []
    for x in grid:
        row = [f"{x:.3f}"]
        for name, (xs, ps) in curves.items():
            row.append(f"{_eval(xs, ps, x):.3f}")
        rows.append(row)
    return ascii_table(headers, rows, title=title)
