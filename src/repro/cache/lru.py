"""Byte-budgeted LRU content store.

Conventional ICN routers keep the *most popular* content in an LRU
store; the paper contrasts this role with custody caching.  The LRU
store is still part of the substrate: routers answer requests from it
before forwarding upstream.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from repro.errors import CacheError

Key = Hashable
EvictCallback = Callable[[Key, int], None]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LruCache:
    """LRU cache with a byte budget (not an entry-count budget)."""

    def __init__(self, capacity_bytes: int, on_evict: Optional[EvictCallback] = None):
        if capacity_bytes < 0:
            raise CacheError(f"capacity must be >= 0, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._entries: "OrderedDict[Key, int]" = OrderedDict()
        self._used = 0
        self._on_evict = on_evict
        self.stats = CacheStats()

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def get(self, key: Key) -> bool:
        """Look up *key*; refreshes recency and records hit/miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def put(self, key: Key, size_bytes: int) -> None:
        """Insert (or refresh) *key* of *size_bytes*, evicting LRU items.

        Objects larger than the whole cache are rejected silently (they
        simply do not get cached), matching router content stores.
        """
        if size_bytes < 0:
            raise CacheError(f"size must be >= 0, got {size_bytes}")
        if key in self._entries:
            self._used -= self._entries.pop(key)
        if size_bytes > self.capacity_bytes:
            return
        self._entries[key] = size_bytes
        self._used += size_bytes
        self.stats.insertions += 1
        while self._used > self.capacity_bytes:
            old_key, old_size = self._entries.popitem(last=False)
            self._used -= old_size
            self.stats.evictions += 1
            if self._on_evict is not None:
                self._on_evict(old_key, old_size)

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0
