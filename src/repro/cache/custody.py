"""Custody store — the paper's central new use of in-network storage.

Instead of holding the most *popular* content, the custody store gives
*temporary custody* to incoming chunks that cannot be forwarded (no
spare capacity, no detour), in strict FIFO order, until the bottleneck
drains.  The back-pressure phase exists to keep this store bounded.

The paper's sizing footnote: "a 10GB cache after a 40Gbps link can
hold incoming traffic for 2 seconds" — see :func:`custody_duration`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Generic, Optional, Tuple, TypeVar

from repro.errors import CacheError
from repro.units import BITS_PER_BYTE

ItemT = TypeVar("ItemT")


def custody_duration(capacity_bytes: int, link_rate_bps: float) -> float:
    """Seconds of line-rate traffic a custody store can absorb.

    >>> from repro.units import gigabytes, gbps
    >>> custody_duration(gigabytes(10), gbps(40))
    2.0
    """
    if capacity_bytes < 0:
        raise CacheError(f"capacity must be >= 0, got {capacity_bytes}")
    if link_rate_bps <= 0:
        raise CacheError(f"link rate must be positive, got {link_rate_bps}")
    return capacity_bytes * BITS_PER_BYTE / link_rate_bps


@dataclass
class CustodyStats:
    accepted: int = 0
    rejected: int = 0
    released: int = 0
    peak_bytes: int = 0
    accepted_bytes: int = 0


class CustodyStore(Generic[ItemT]):
    """FIFO byte-budgeted store of chunks awaiting forwarding.

    ``capacity_bytes=None`` models an unbounded store (useful to
    measure how much custody INRPP *would* take without back-pressure).
    """

    def __init__(self, capacity_bytes: Optional[int] = None):
        if capacity_bytes is not None and capacity_bytes < 0:
            raise CacheError(f"capacity must be >= 0, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._queue: Deque[Tuple[ItemT, int]] = deque()
        self._used = 0
        self.stats = CustodyStats()

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        # Truthiness reflects existence, not emptiness, to avoid the
        # classic `if store:` bug; use `len(store)` for occupancy.
        return True

    def would_accept(self, size_bytes: int) -> bool:
        if self.capacity_bytes is None:
            return True
        return self._used + size_bytes <= self.capacity_bytes

    def accept(self, item: ItemT, size_bytes: int) -> bool:
        """Take custody of *item*; False if the store is full."""
        if size_bytes < 0:
            raise CacheError(f"size must be >= 0, got {size_bytes}")
        if not self.would_accept(size_bytes):
            self.stats.rejected += 1
            return False
        self._queue.append((item, size_bytes))
        self._used += size_bytes
        self.stats.accepted += 1
        self.stats.accepted_bytes += size_bytes
        self.stats.peak_bytes = max(self.stats.peak_bytes, self._used)
        return True

    def peek(self) -> Optional[ItemT]:
        """The oldest item, without releasing it."""
        if not self._queue:
            return None
        return self._queue[0][0]

    def release(self) -> Optional[Tuple[ItemT, int]]:
        """Pop the oldest (item, size) pair, or None when empty."""
        if not self._queue:
            return None
        item, size = self._queue.popleft()
        self._used -= size
        self.stats.released += 1
        return item, size

    def occupancy_fraction(self) -> float:
        """Fill level in [0, 1]; 0.0 for unbounded stores."""
        if self.capacity_bytes in (None, 0):
            return 0.0
        return self._used / self.capacity_bytes
