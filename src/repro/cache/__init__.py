"""Caching substrate: LRU content store and INRPP custody store."""

from repro.cache.lru import LruCache
from repro.cache.custody import CustodyStore, custody_duration

__all__ = ["LruCache", "CustodyStore", "custody_duration"]
