"""Validation scenario definitions.

A :class:`ValidationScenario` is a fidelity-neutral description of an
experiment: a topology, a set of flows and a sharing mode, expressed
in terms both simulators understand.  The mode uses the *flow-level*
strategy names (``"inrp"``, ``"sp"``); the chunk-level simulator runs
the corresponding protocol (``"inrpp"``, ``"aimd"``).

The calibrated set below lives on the Fig. 3 topology because it is
the one scenario where the paper itself publishes the expected
numbers, which pins *both* fidelities to an external reference:

- ``fig3-steady-inrp`` / ``fig3-steady-sp`` — the paper's two-flow
  worked example run to steady state.  INRPP detours around the
  2 Mbps bottleneck without custody (the deficit is absorbed by
  receiver-driven pacing at the *source*), so this scenario checks
  rates, fairness and path stretch with custody expected absent.
- ``fig3-custody-inrp`` — three flows from node 1 so that flow
  1->4's detour (via node 3) collides with flow 1->3's primary path
  on the 3 Mbps link.  Chunks already committed to the detour must be
  held in custody when the collision saturates the link, which makes
  this the scenario that exercises custody occupancy and
  back-pressure onset *while* the fluid model still predicts the
  rate region.
- ``fig3-completion-inrp`` / ``fig3-completion-sp`` — finite
  100-chunk transfers with staggered starts, checking per-flow
  completion time against the fluid progressive-filling simulator.
- ``fig3-bidir-inrp`` / ``fig3-bidir-sp`` — the worked example with a
  reverse-direction flow (4->1) added.  On the directed-capacity
  substrate the reverse flow rides the opposite direction of the same
  links without stealing forward capacity, so its presence must not
  perturb the paper's forward rates.
- ``isp-bidir-inrp`` — the vsnl ISP map with the 1->4 direction
  bottlenecked to half capacity (the reverse 4->1 direction keeps the
  full 10 Mbps — an asymmetry only the directed substrate can
  express).  The forward flow 6->4 must pool a two-intermediate-node
  detour through the 1-2-3-4 square (``detour_depth=3``, deeper than
  the default) to reach its demand while the reverse flow 4->6 runs
  untouched at full rate.

All scenarios are deterministic (no seed axis): the Fig. 3 topology
has no random component in either simulator and the ISP map is built
from a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.topology.builders import fig3_topology
from repro.topology.graph import Node, Topology
from repro.topology.isp import build_isp_topology

#: Chunk count used for "steady state" flows: large enough that no
#: flow completes within any calibrated duration.
STEADY_CHUNKS = 10_000_000

#: Flow-level strategy name -> chunk-level protocol mode.
MODE_MAP = {"inrp": "inrpp", "sp": "aimd"}


@dataclass(frozen=True)
class ValidationFlow:
    """One transfer, in fidelity-neutral terms."""

    source: Node
    destination: Node
    start_time: float = 0.0


@dataclass(frozen=True)
class ValidationScenario:
    """A scenario both simulators can run.

    ``num_chunks=None`` means steady state (flows outlast the run and
    are compared on goodput); an integer makes it a completion
    scenario (flows finish and are compared on completion time).
    ``tolerances`` overrides entries of
    :data:`repro.validation.harness.DEFAULT_TOLERANCES` per scenario.
    ``detour_depth=None`` keeps each fidelity's default depth (2);
    an integer pins both the fluid strategy's and the chunk router's
    detour tables to that depth.
    """

    name: str
    mode: str
    flows: Tuple[ValidationFlow, ...]
    duration: float = 20.0
    warmup: Optional[float] = None
    num_chunks: Optional[int] = None
    summary: str = ""
    topology_factory: Callable[[], Topology] = fig3_topology
    tolerances: Mapping[str, float] = field(default_factory=dict)
    detour_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in MODE_MAP:
            raise ConfigurationError(
                f"unknown validation mode {self.mode!r}; "
                f"expected one of {', '.join(sorted(MODE_MAP))}"
            )
        if not self.flows:
            raise ConfigurationError(f"scenario {self.name!r} has no flows")
        if self.detour_depth is not None and self.detour_depth < 1:
            raise ConfigurationError(
                f"detour_depth must be >= 1, got {self.detour_depth}"
            )

    @property
    def chunk_mode(self) -> str:
        """The chunk-level protocol mode for this scenario."""
        return MODE_MAP[self.mode]

    @property
    def kind(self) -> str:
        return "steady" if self.num_chunks is None else "completion"

    @property
    def chunks_per_flow(self) -> int:
        return STEADY_CHUNKS if self.num_chunks is None else self.num_chunks

    @property
    def effective_warmup(self) -> float:
        if self.warmup is not None:
            return self.warmup
        return 0.25 * self.duration

    @property
    def last_start(self) -> float:
        return max(flow.start_time for flow in self.flows)

    def topology(self) -> Topology:
        return self.topology_factory()


def _vsnl_directed_topology() -> Topology:
    """The vsnl ISP map with a *directed* bottleneck on 1 -> 4.

    Only the forward direction is halved; 4 -> 1 keeps the full
    10 Mbps.  Pre-refactor (undirected capacities) this topology was
    inexpressible: halving (1, 4) would have halved both directions.
    """
    topo = build_isp_topology("vsnl", seed=0)
    topo.set_directed_capacity(1, 4, 5_000_000.0)
    return topo


_PAPER_FLOWS = (
    ValidationFlow(source=1, destination=4),
    ValidationFlow(source=1, destination=5),
)

#: The paper's two forward flows plus a reverse-direction flow 4->1.
#: Directed capacities make the reverse flow free: it must not change
#: the forward fixed point.
_BIDIR_FLOWS = (
    ValidationFlow(source=1, destination=4, start_time=0.0),
    ValidationFlow(source=4, destination=1, start_time=0.01),
    ValidationFlow(source=1, destination=5, start_time=0.02),
)

#: Three flows from node 1: 1->4 (detours via 3), 1->5 (clear) and
#: 1->3 (primary over the 3 Mbps link the detour needs).  The detour /
#: primary collision on link (2, 3) is what forces transit custody.
_CUSTODY_FLOWS = (
    ValidationFlow(source=1, destination=4, start_time=0.0),
    ValidationFlow(source=1, destination=5, start_time=0.01),
    ValidationFlow(source=1, destination=3, start_time=0.02),
)

CALIBRATED_SCENARIOS: Tuple[ValidationScenario, ...] = (
    ValidationScenario(
        name="fig3-steady-inrp",
        mode="inrp",
        flows=_PAPER_FLOWS,
        duration=20.0,
        warmup=5.0,
        summary="Paper's two-flow Fig. 3 example, INRPP vs fluid INRP",
    ),
    ValidationScenario(
        name="fig3-steady-sp",
        mode="sp",
        flows=_PAPER_FLOWS,
        duration=20.0,
        warmup=5.0,
        summary="Paper's two-flow Fig. 3 example, AIMD vs fluid max-min",
    ),
    ValidationScenario(
        name="fig3-custody-inrp",
        mode="inrp",
        flows=_CUSTODY_FLOWS,
        duration=20.0,
        warmup=5.0,
        summary="Detour/primary collision: custody occupancy and onset",
    ),
    ValidationScenario(
        name="fig3-completion-inrp",
        mode="inrp",
        flows=(
            ValidationFlow(source=1, destination=4, start_time=0.0),
            ValidationFlow(source=1, destination=5, start_time=0.25),
        ),
        duration=30.0,
        warmup=0.0,
        num_chunks=100,
        summary="Finite 100-chunk transfers: completion time, INRPP",
    ),
    ValidationScenario(
        name="fig3-completion-sp",
        mode="sp",
        flows=(
            ValidationFlow(source=1, destination=4, start_time=0.0),
            ValidationFlow(source=1, destination=5, start_time=0.25),
        ),
        duration=30.0,
        warmup=0.0,
        num_chunks=100,
        summary="Finite 100-chunk transfers: completion time, AIMD",
    ),
    ValidationScenario(
        name="fig3-bidir-inrp",
        mode="inrp",
        flows=_BIDIR_FLOWS,
        duration=20.0,
        warmup=5.0,
        summary="Fig. 3 with a reverse flow: directions share no capacity",
    ),
    ValidationScenario(
        name="fig3-bidir-sp",
        mode="sp",
        flows=_BIDIR_FLOWS,
        duration=20.0,
        warmup=5.0,
        summary="Fig. 3 with a reverse flow, AIMD vs fluid max-min",
    ),
    ValidationScenario(
        name="isp-bidir-inrp",
        mode="inrp",
        flows=(
            ValidationFlow(source=6, destination=4, start_time=0.0),
            ValidationFlow(source=4, destination=6, start_time=0.01),
        ),
        duration=20.0,
        warmup=5.0,
        summary="vsnl with a directed bottleneck: deep detour forward, clear reverse",
        topology_factory=_vsnl_directed_topology,
        detour_depth=3,
    ),
)


def scenario_by_name(name: str) -> ValidationScenario:
    """Look up a calibrated scenario (raises on unknown names)."""
    for scenario in CALIBRATED_SCENARIOS:
        if scenario.name == name:
            return scenario
    known = ", ".join(s.name for s in CALIBRATED_SCENARIOS)
    raise ConfigurationError(
        f"unknown validation scenario {name!r}; expected one of {known}"
    )
