"""Cross-fidelity validation: chunksim vs flowsim on one scenario.

The repo keeps two models of the paper's system at different
fidelities — the fluid flow-level allocators (:mod:`repro.flowsim`)
and the packet/chunk-level protocol simulator (:mod:`repro.chunksim`).
This package runs the *same* scenario (topology, flows, strategy)
through both, maps chunk-level observables onto flow-level ones and
emits a divergence report with per-metric tolerances.

Entry points:

- :func:`run_validation` — one scenario -> :class:`ValidationReport`;
- :data:`CALIBRATED_SCENARIOS` — the calibrated Fig. 3 scenario set;
- ``python -m repro validate`` — the CLI front-end;
- the ``cross-fidelity`` campaign scenario.
"""

from repro.validation.harness import (
    DEFAULT_TOLERANCES,
    MetricCheck,
    ValidationReport,
    run_all_validations,
    run_validation,
)
from repro.validation.observables import (
    ChunkObservables,
    FluidObservables,
    predict_custody,
    run_chunk_fidelity,
    run_flow_fidelity,
)
from repro.validation.scenario import (
    CALIBRATED_SCENARIOS,
    STEADY_CHUNKS,
    ValidationFlow,
    ValidationScenario,
    scenario_by_name,
)

__all__ = [
    "CALIBRATED_SCENARIOS",
    "ChunkObservables",
    "DEFAULT_TOLERANCES",
    "FluidObservables",
    "MetricCheck",
    "STEADY_CHUNKS",
    "ValidationFlow",
    "ValidationReport",
    "ValidationScenario",
    "predict_custody",
    "run_all_validations",
    "run_chunk_fidelity",
    "run_flow_fidelity",
    "run_validation",
    "scenario_by_name",
]
