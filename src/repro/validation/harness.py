"""The divergence harness: run both fidelities, compare, report.

Tolerances are calibrated, not aspirational: each default below was
set from measured divergence on the Fig. 3 scenario set and carries
the measurement that justifies it.  A chunk-level protocol with
per-chunk control traffic, timers and store-and-forward queues will
never match a fluid fixed point exactly; the tolerances document how
close "agreement" is and the tests keep it from regressing.

======================  ======  ==============================================
tolerance               value   calibration (chunk vs fluid, Fig. 3 set)
======================  ======  ==============================================
``rate_rel``            0.25    paper 2-flow INRP within 0.1 %; AIMD within
                                6 %; the custody scenario's collided flows
                                land within 20 % (fluid pools the detour
                                capacity, the protocol favours primary
                                traffic — the real fidelity gap).
``jain_abs``            0.05    worst observed 0.016 (AIMD 2-flow).
``stretch_abs``         0.15    paper 2-flow within 0.001; custody scenario
                                within ~0.1 (protocol abandons the contested
                                detour, fluid keeps a thin split on it).
``fct_rel``             0.25    worst observed +18.3 % (INRPP 1->4: per-chunk
                                request/retransmission overhead the fluid
                                model has no concept of); AIMD within 3 %.
``custody_slack``       1.0     peak custody <= 1.0 x transient bound
                                (observed 0.29 x on the custody scenario).
``onset_window``        (4*Ti)  custody onset 0.315 s after a 0.02 s last
                                start, within the 0.4 s control transient.
======================  ======  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.campaign.scenario import register_scenario
from repro.chunksim import ChunkSimConfig
from repro.validation.observables import (
    ChunkObservables,
    FluidObservables,
    run_chunk_fidelity,
    run_flow_fidelity,
)
from repro.validation.scenario import (
    CALIBRATED_SCENARIOS,
    ValidationScenario,
    scenario_by_name,
)

#: Calibrated per-metric tolerances (rationale in the module docstring).
DEFAULT_TOLERANCES: Dict[str, float] = {
    "rate_rel": 0.25,
    "jain_abs": 0.05,
    "stretch_abs": 0.15,
    "fct_rel": 0.25,
    "custody_slack": 1.0,
}


@dataclass
class MetricCheck:
    """One compared observable: chunk value vs flow value vs tolerance."""

    name: str
    kind: str  # "rel" | "abs" | "bound" | "bool"
    chunk_value: Optional[float]
    flow_value: Optional[float]
    tolerance: Optional[float]
    passed: bool
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "chunk_value": self.chunk_value,
            "flow_value": self.flow_value,
            "tolerance": self.tolerance,
            "passed": self.passed,
            "detail": self.detail,
        }


@dataclass
class ValidationReport:
    """Divergence report for one scenario."""

    scenario: str
    mode: str
    kind: str
    engine: str
    checks: List[MetricCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> List[MetricCheck]:
        return [check for check in self.checks if not check.passed]

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (campaign result records)."""
        return {
            "scenario": self.scenario,
            "mode": self.mode,
            "kind": self.kind,
            "engine": self.engine,
            "passed": self.passed,
            "checks": [check.as_dict() for check in self.checks],
        }

    def render(self) -> str:
        """Human-readable report, one line per check."""
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"{self.scenario} (mode={self.mode}, kind={self.kind}, "
            f"engine={self.engine}) — {verdict}"
        ]
        for check in self.checks:
            mark = "ok " if check.passed else "FAIL"
            chunk = _fmt(check.chunk_value)
            flow = _fmt(check.flow_value)
            line = (
                f"  [{mark}] {check.name:<28} "
                f"chunk={chunk:>12} flow={flow:>12}"
            )
            if check.detail:
                line += f"  {check.detail}"
            lines.append(line)
        return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e7:
        return str(int(value))
    return f"{value:.4g}"


class _Checker:
    """Accumulates :class:`MetricCheck` rows against tolerances."""

    def __init__(self, tolerances: Dict[str, float]):
        self.tolerances = tolerances
        self.checks: List[MetricCheck] = []

    def rel(self, name: str, chunk: float, flow: float, tol_key: str) -> None:
        tol = self.tolerances[tol_key]
        denom = max(abs(flow), 1e-12)
        diff = abs(chunk - flow) / denom
        self.checks.append(
            MetricCheck(
                name,
                "rel",
                chunk,
                flow,
                tol,
                diff <= tol,
                f"rel diff {diff:.3f} <= {tol}",
            )
        )

    def abs(self, name: str, chunk: float, flow: float, tol_key: str) -> None:
        tol = self.tolerances[tol_key]
        diff = abs(chunk - flow)
        self.checks.append(
            MetricCheck(
                name,
                "abs",
                chunk,
                flow,
                tol,
                diff <= tol,
                f"abs diff {diff:.3f} <= {tol}",
            )
        )

    def bound(
        self, name: str, chunk: float, bound: float, tol_key: str
    ) -> None:
        slack = self.tolerances[tol_key]
        limit = slack * bound
        self.checks.append(
            MetricCheck(
                name,
                "bound",
                chunk,
                bound,
                slack,
                chunk <= limit,
                f"{_fmt(chunk)} <= {slack} x bound",
            )
        )

    def boolean(
        self, name: str, chunk: bool, flow: bool, detail: str = ""
    ) -> None:
        self.checks.append(
            MetricCheck(
                name,
                "bool",
                float(chunk),
                float(flow),
                None,
                chunk == flow,
                detail or "agreement required",
            )
        )

    def window(
        self,
        name: str,
        onset: Optional[float],
        lo: float,
        hi: float,
    ) -> None:
        passed = onset is not None and lo < onset <= hi
        self.checks.append(
            MetricCheck(
                name,
                "bound",
                onset,
                hi,
                None,
                passed,
                f"onset in ({lo:.3g}, {hi:.3g}]",
            )
        )


def _steady_checks(
    checker: _Checker,
    scenario: ValidationScenario,
    chunk: ChunkObservables,
    fluid: FluidObservables,
) -> None:
    for fid in sorted(fluid.rates_bps):
        checker.rel(
            f"rate[{fid}] (bps)",
            chunk.rates_bps[fid],
            fluid.rates_bps[fid],
            "rate_rel",
        )
    checker.abs("jain", chunk.jain, fluid.jain, "jain_abs")
    for fid in sorted(fluid.stretch):
        checker.abs(
            f"stretch[{fid}]",
            chunk.stretch[fid],
            fluid.stretch[fid],
            "stretch_abs",
        )
    if scenario.mode == "inrp":
        checker.boolean(
            "custody occurs",
            chunk.custody_events > 0,
            fluid.custody_expected,
            "transit-deficit predicate (see observables module)",
        )
        if fluid.custody_expected:
            checker.bound(
                "custody peak (bytes)",
                float(chunk.custody_peak_bytes),
                fluid.custody_bound_bytes,
                "custody_slack",
            )
            checker.window(
                "custody onset (s)",
                chunk.custody_onset,
                scenario.last_start,
                scenario.last_start + fluid.onset_window_s,
            )
        else:
            checker.boolean(
                "custody absent",
                chunk.custody_peak_bytes == 0,
                True,
                "no transit deficit -> no custody",
            )
    else:
        any_deficit = any(d > 0.0 for d in fluid.deficits_bps.values())
        checker.boolean(
            "drops occur",
            chunk.drops > 0,
            any_deficit,
            "loss-based control sees loss iff fluid deficit > 0",
        )
        checker.boolean(
            "custody absent (baseline)",
            chunk.custody_peak_bytes == 0,
            True,
            "the e2e baseline has no custody stores",
        )


def _completion_checks(
    checker: _Checker,
    chunk: ChunkObservables,
    fluid: FluidObservables,
) -> None:
    for fid in sorted(fluid.fct):
        checker.boolean(
            f"completed[{fid}]",
            chunk.completed[fid],
            fluid.completed[fid],
            "both fidelities must finish the transfer",
        )
        if chunk.fct.get(fid) is not None and fluid.fct.get(fid) is not None:
            checker.rel(
                f"fct[{fid}] (s)", chunk.fct[fid], fluid.fct[fid], "fct_rel"
            )


def run_validation(
    scenario: ValidationScenario,
    engine: str = "modern",
    config: Optional[ChunkSimConfig] = None,
) -> ValidationReport:
    """Run *scenario* through both simulators and compare."""
    tolerances = dict(DEFAULT_TOLERANCES)
    tolerances.update(scenario.tolerances)
    chunk = run_chunk_fidelity(scenario, engine=engine, config=config)
    fluid = run_flow_fidelity(scenario, config=config)
    checker = _Checker(tolerances)
    if scenario.kind == "steady":
        _steady_checks(checker, scenario, chunk, fluid)
    else:
        _completion_checks(checker, chunk, fluid)
    return ValidationReport(
        scenario=scenario.name,
        mode=scenario.mode,
        kind=scenario.kind,
        engine=engine,
        checks=checker.checks,
    )


def run_all_validations(
    names: Optional[Sequence[str]] = None,
    engine: str = "modern",
    config: Optional[ChunkSimConfig] = None,
) -> List[ValidationReport]:
    """Run the calibrated scenario set (or the named subset)."""
    if names:
        scenarios = [scenario_by_name(name) for name in names]
    else:
        scenarios = list(CALIBRATED_SCENARIOS)
    return [
        run_validation(scenario, engine=engine, config=config)
        for scenario in scenarios
    ]


@register_scenario(
    "cross-fidelity",
    summary="Chunk-level vs flow-level agreement on the Fig. 3 set",
    tags=("validation", "chunksim", "flowsim"),
)
def scenario_cross_fidelity(
    engine: str = "modern", scenarios: str = ""
) -> Dict[str, object]:
    """Campaign adapter: the full calibrated cross-fidelity sweep.

    ``scenarios`` is an optional comma-separated subset (for smoke
    runs); the default runs all calibrated scenarios.  Deterministic:
    no seed axis.
    """
    names = [n.strip() for n in scenarios.split(",") if n.strip()] or None
    reports = run_all_validations(names=names, engine=engine)
    return {report.scenario: report.as_dict() for report in reports}
