"""Observable mapping between the two fidelities.

The chunk simulator measures protocol outcomes (per-chunk arrivals,
custody stores, back-pressure signals); the flow-level model predicts
fluid outcomes (steady rates, path splits).  This module reduces both
to one comparable vocabulary:

========================  =====================================  ===================================
observable                chunk-level source                     flow-level source
========================  =====================================  ===================================
per-flow rate (bps)       post-warmup goodput                    ``strategy.allocate`` fixed point
fairness (Jain)           goodput Jain index                     allocated-rate Jain index
path stretch              ``mean_hops / sp_hops``                rate-weighted split-path stretch
completion time (s)       receiver completion - start            ``FlowLevelSimulator`` record FCT
custody occupancy (B)     peak custody store bytes               transient bound (see below)
custody / bp onset (s)    first ``custody`` trace event          control-transient window
loss (AIMD only)          drop-tail drop count                   any positive fluid deficit
========================  =====================================  ===================================

Two mapped observables need a model rather than a direct counterpart:

**Custody prediction** (:func:`predict_custody`).  A fluid deficit at
the *sender* never creates custody — receiver-driven pacing absorbs
it at the source before chunks enter the network.  Custody appears
only when chunks already committed to a detour meet contention they
cannot outrun: some link on the detour portion of one flow's split is
also carrying another flow's traffic.  The predicate is therefore:
custody is expected iff the detour-only links of some flow's fluid
split intersect the split links of another flow.

**Custody bound** (:attr:`FluidObservables.custody_bound_bytes`).
Custody occupancy is a *transient* quantity: once back-pressure
propagates (one measurement interval ``Ti`` to detect, one to relay,
plus the path round-trip) senders are paced to the fluid rates and
custody drains.  The bound charges every flow's full fluid deficit
for that control window plus each flow's anticipation allowance
(chunks legitimately in flight ahead of demand):

    bound = sum(deficit_bps) * (2*Ti + max_rtt) / 8
          + n_flows * anticipation * chunk_bytes
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.chunksim import ChunkNetwork, ChunkSimConfig
from repro.flowsim import FlowLevelSimulator, make_strategy
from repro.metrics.fairness import jain_index
from repro.routing.paths import Path, cached_path_links
from repro.routing.shortest import shortest_path
from repro.topology.graph import Topology
from repro.validation.scenario import ValidationScenario
from repro.workloads.traffic import FlowSpec

Splits = Dict[int, List[Tuple[Path, float]]]


@dataclass
class ChunkObservables:
    """What the chunk-level protocol simulation measured."""

    rates_bps: Dict[int, float]
    jain: float
    stretch: Dict[int, float]
    fct: Dict[int, Optional[float]]
    completed: Dict[int, bool]
    custody_peak_bytes: int
    custody_events: int
    custody_onset: Optional[float]
    backpressure_signals: int
    drops: int
    events_processed: int


@dataclass
class FluidObservables:
    """What the flow-level fluid model predicts."""

    rates_bps: Dict[int, float]
    jain: float
    stretch: Dict[int, float]
    fct: Dict[int, Optional[float]]
    completed: Dict[int, bool]
    deficits_bps: Dict[int, float]
    custody_expected: bool
    custody_bound_bytes: float
    #: Back-pressure, when predicted, must engage within this many
    #: seconds after the last flow starts (the control transient).
    onset_window_s: float
    demands_bps: Dict[int, float] = field(default_factory=dict)


def _first_hop_demand(topo: Topology, route: Path) -> float:
    """Demand of a flow: the capacity of its first-hop (access) link.

    Both fidelities are receiver-driven with no application pacing, so
    a flow asks for as much as its access link can carry — which on
    Fig. 3 reproduces the paper's 10 Mbps offered load.
    """
    return topo.capacity(route[0], route[1])


def _sp_hops(topo: Topology, source, destination) -> int:
    return len(shortest_path(topo, source, destination)) - 1


def _fluid_stretch(splits: List[Tuple[Path, float]], sp_hops: int) -> float:
    """Rate-weighted mean path length over shortest-path length."""
    total = sum(rate for _, rate in splits)
    if total <= 0.0 or sp_hops <= 0:
        return 1.0
    weighted = sum((len(path) - 1) * rate for path, rate in splits)
    return weighted / (total * sp_hops)


def _detour_only_links(splits: List[Tuple[Path, float]], primary: Path) -> Set:
    """Links used by a flow's non-primary splits but not its primary."""
    primary_links = set(cached_path_links(tuple(primary)))
    extra: Set = set()
    for path, rate in splits:
        if rate <= 0.0 or tuple(path) == tuple(primary):
            continue
        extra.update(
            link
            for link in cached_path_links(tuple(path))
            if link not in primary_links
        )
    return extra


def predict_custody(
    splits: Splits, primaries: Dict[int, Path]
) -> bool:
    """Does the fluid allocation imply transit custody?

    True iff some flow's detour-only links carry another flow's
    traffic (see the module docstring for the reasoning).  Sender-side
    deficits alone never trigger custody.
    """
    detour_links = {
        fid: _detour_only_links(splits.get(fid, []), primary)
        for fid, primary in primaries.items()
    }
    all_links = {
        fid: {
            link
            for path, rate in splits.get(fid, [])
            if rate > 0.0
            for link in cached_path_links(tuple(path))
        }
        for fid in primaries
    }
    for fid, extras in detour_links.items():
        if not extras:
            continue
        for other, links in all_links.items():
            if other != fid and extras & links:
                return True
    return False


def _max_rtt(topo: Topology, splits: Splits, primaries: Dict[int, Path]) -> float:
    """Largest round-trip propagation delay over any used path."""
    paths = [tuple(p) for p in primaries.values()]
    for split in splits.values():
        paths.extend(tuple(path) for path, rate in split if rate > 0.0)
    best = 0.0
    for path in paths:
        rtt = 2.0 * sum(topo.delay(u, v) for u, v in zip(path, path[1:]))
        best = max(best, rtt)
    return best


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def run_chunk_fidelity(
    scenario: ValidationScenario,
    engine: str = "modern",
    config: Optional[ChunkSimConfig] = None,
) -> ChunkObservables:
    """Run *scenario* through the chunk-level protocol simulator."""
    topo = scenario.topology()
    if scenario.detour_depth is not None:
        config = replace(config or ChunkSimConfig(), detour_depth=scenario.detour_depth)
    network = ChunkNetwork(
        topo, mode=scenario.chunk_mode, config=config, engine=engine
    )
    flow_ids = [
        network.add_flow(
            flow.source,
            flow.destination,
            num_chunks=scenario.chunks_per_flow,
            start_time=flow.start_time,
        )
        for flow in scenario.flows
    ]
    report = network.run(
        duration=scenario.duration, warmup=scenario.effective_warmup
    )
    rates = {fid: report.flow(fid).goodput_bps for fid in flow_ids}
    stretch = {}
    fct = {}
    completed = {}
    for fid in flow_ids:
        flow_report = report.flow(fid)
        hops = _sp_hops(topo, flow_report.source, flow_report.destination)
        stretch[fid] = flow_report.mean_hops / hops if hops else 1.0
        fct[fid] = flow_report.fct
        completed[fid] = flow_report.completed
    return ChunkObservables(
        rates_bps=rates,
        jain=report.jain(),
        stretch=stretch,
        fct=fct,
        completed=completed,
        custody_peak_bytes=report.custody_peak_bytes,
        custody_events=report.custody_events,
        custody_onset=network.trace.first_seen.get("custody"),
        backpressure_signals=report.backpressure_signals,
        drops=report.drops,
        events_processed=report.events_processed,
    )


def run_flow_fidelity(
    scenario: ValidationScenario,
    config: Optional[ChunkSimConfig] = None,
) -> FluidObservables:
    """Run *scenario* through the flow-level fluid model.

    Steady observables come from the strategy's allocation fixed
    point (all flows concurrently active — starts in the calibrated
    scenarios are separated by at most a few tens of milliseconds
    against multi-second measurement windows); completion times come
    from the progressive-filling :class:`FlowLevelSimulator`.
    """
    config = config or ChunkSimConfig()
    topo = scenario.topology()
    strategy_kwargs = {}
    if scenario.mode == "inrp" and scenario.detour_depth is not None:
        strategy_kwargs["detour_depth"] = scenario.detour_depth
    strategy = make_strategy(scenario.mode, topo, **strategy_kwargs)
    flow_ids = list(range(len(scenario.flows)))
    primaries: Dict[int, Path] = {}
    demands: Dict[int, float] = {}
    for fid, flow in zip(flow_ids, scenario.flows):
        route = strategy.route(fid, flow.source, flow.destination)
        primaries[fid] = route
        demands[fid] = _first_hop_demand(topo, route)

    outcome = strategy.allocate(
        {fid: (primaries[fid], demands[fid]) for fid in flow_ids}
    )
    rates = {fid: outcome.rates.get(fid, 0.0) for fid in flow_ids}
    deficits = {
        fid: max(demands[fid] - rates[fid], 0.0) for fid in flow_ids
    }
    stretch = {
        fid: _fluid_stretch(
            outcome.splits.get(fid, [(primaries[fid], rates[fid])]),
            len(primaries[fid]) - 1,
        )
        for fid in flow_ids
    }
    custody_expected = scenario.mode == "inrp" and predict_custody(
        outcome.splits, primaries
    )
    control_window = 2.0 * config.ti + _max_rtt(topo, outcome.splits, primaries)
    custody_bound = (
        sum(deficits.values()) * control_window / 8.0
        + len(flow_ids) * config.anticipation * config.chunk_bytes
    )

    fct: Dict[int, Optional[float]] = {fid: None for fid in flow_ids}
    completed = {fid: False for fid in flow_ids}
    if scenario.kind == "completion":
        size_bits = scenario.chunks_per_flow * config.chunk_bytes * 8.0
        specs = [
            FlowSpec(
                flow_id=fid,
                source=flow.source,
                destination=flow.destination,
                arrival_time=flow.start_time,
                size_bits=size_bits,
                demand_bps=demands[fid],
            )
            for fid, flow in zip(flow_ids, scenario.flows)
        ]
        result = FlowLevelSimulator(
            topo, strategy, specs, horizon=scenario.duration
        ).run()
        # Per-flow FCTs are needed here, so the run must materialize
        # (the default sink); require_records() makes that explicit.
        for record in result.require_records():
            fct[record.flow_id] = record.fct
            completed[record.flow_id] = record.completed

    return FluidObservables(
        rates_bps=rates,
        jain=jain_index([rates[fid] for fid in flow_ids]),
        stretch=stretch,
        fct=fct,
        completed=completed,
        deficits_bps=deficits,
        custody_expected=custody_expected,
        custody_bound_bytes=custody_bound,
        onset_window_s=4.0 * config.ti,
        demands_bps=demands,
    )
