"""Hand-built topology tests (Fig. 3 and friends)."""

import pytest

from repro.errors import ConfigurationError
from repro.topology import (
    dumbbell_topology,
    fig3_topology,
    line_topology,
    star_topology,
)
from repro.units import mbps


def test_fig3_matches_paper_capacities():
    topo = fig3_topology()
    assert topo.num_nodes == 5
    assert topo.num_links == 5
    assert topo.capacity(1, 2) == mbps(10)
    assert topo.capacity(2, 4) == mbps(2)   # the bottleneck
    assert topo.capacity(2, 3) == mbps(3)   # detour first hop
    assert topo.capacity(3, 4) == mbps(3)   # detour second hop
    assert topo.capacity(2, 5) == mbps(10)  # the clear path


def test_fig3_detour_exists_around_bottleneck():
    topo = fig3_topology()
    # Node 3 provides the one-hop detour around the 2-4 bottleneck.
    assert topo.has_link(2, 3) and topo.has_link(3, 4)


def test_line_topology():
    topo = line_topology(5)
    assert topo.num_nodes == 5
    assert topo.num_links == 4
    for node in range(4):
        assert topo.has_link(node, node + 1)
    with pytest.raises(ConfigurationError):
        line_topology(1)


def test_star_topology():
    topo = star_topology(6)
    assert topo.num_nodes == 7
    assert topo.degree(0) == 6
    with pytest.raises(ConfigurationError):
        star_topology(0)


def test_dumbbell_topology():
    topo = dumbbell_topology(3, bottleneck_capacity=mbps(1))
    assert topo.capacity("L", "R") == mbps(1)
    assert topo.num_links == 1 + 6
    for index in range(3):
        assert topo.has_link(f"s{index}", "L")
        assert topo.has_link("R", f"r{index}")
    with pytest.raises(ConfigurationError):
        dumbbell_topology(0)
