"""Block-mix and mesh generator tests."""

import pytest

from repro.errors import ConfigurationError
from repro.routing.detour import DetourClass, detour_breakdown
from repro.topology import block_mix_topology, mesh_topology


def test_block_mix_exact_class_counts():
    topo, report = block_mix_topology(7, 8, 5, 3, seed=1)
    assert report.total_links == 7 + 8 + 5 + 3
    breakdown = detour_breakdown(topo)
    assert breakdown.counts[DetourClass.ONE_HOP] == 7
    assert breakdown.counts[DetourClass.TWO_HOP] == 8
    assert breakdown.counts[DetourClass.THREE_PLUS] == 5
    assert breakdown.counts[DetourClass.NONE] == 3


def test_block_mix_report_matches_measurement():
    topo, report = block_mix_topology(9, 4, 0, 6, seed=3)
    breakdown = detour_breakdown(topo)
    assert report.built["one_hop"] == breakdown.counts[DetourClass.ONE_HOP]
    assert report.built["two_hop"] == breakdown.counts[DetourClass.TWO_HOP]
    assert report.built["none"] == breakdown.counts[DetourClass.NONE]
    assert topo.num_links == report.total_links


def test_block_mix_connected_and_seed_varies_layout():
    topo_a, _ = block_mix_topology(15, 10, 5, 5, seed=1)
    topo_b, _ = block_mix_topology(15, 10, 5, 5, seed=2)
    assert topo_a.is_connected()
    assert topo_b.is_connected()
    # Same class mix, different arrangement.
    assert detour_breakdown(topo_a).counts == detour_breakdown(topo_b).counts
    assert sorted(topo_a.links()) != sorted(topo_b.links()) or (
        topo_a.num_nodes != topo_b.num_nodes
    )


def test_block_mix_deterministic_per_seed():
    topo_a, _ = block_mix_topology(7, 4, 0, 2, seed=9)
    topo_b, _ = block_mix_topology(7, 4, 0, 2, seed=9)
    assert sorted(topo_a.links()) == sorted(topo_b.links())


def test_block_mix_zero_classes_allowed():
    topo, report = block_mix_topology(0, 0, 0, 4, seed=0)
    assert topo.num_links == 4
    assert report.built["one_hop"] == 0


def test_block_mix_rejects_nothing():
    with pytest.raises(ConfigurationError):
        block_mix_topology(0, 0, 0, 0)


def test_block_mix_rejects_negative():
    with pytest.raises(ConfigurationError):
        block_mix_topology(-1, 0, 0, 2)


def test_block_mix_capacity_applied():
    topo, _ = block_mix_topology(3, 0, 0, 1, seed=0, capacity=123456.0)
    for u, v in topo.links():
        assert topo.capacity(u, v) == 123456.0


def test_mesh_connected_with_expected_links():
    topo = mesh_topology(40, extra_links=30, seed=5)
    assert topo.is_connected()
    assert topo.num_nodes == 40
    assert topo.num_links == 39 + 30


def test_mesh_triangle_fraction_raises_one_hop_share():
    sparse = mesh_topology(60, extra_links=40, triangle_fraction=0.0, seed=1)
    dense = mesh_topology(60, extra_links=40, triangle_fraction=1.0, seed=1)
    one_hop = lambda t: detour_breakdown(t).percentage(DetourClass.ONE_HOP)
    assert one_hop(dense) > one_hop(sparse)


def test_mesh_parameter_validation():
    with pytest.raises(ConfigurationError):
        mesh_topology(1, 0)
    with pytest.raises(ConfigurationError):
        mesh_topology(4, extra_links=100)
    with pytest.raises(ConfigurationError):
        mesh_topology(10, 5, triangle_fraction=1.5)
