"""Capacity assignment model tests."""

import pytest

from repro.errors import ConfigurationError
from repro.topology import (
    Topology,
    apply_capacity_asymmetry,
    assign_core_edge_capacity,
    assign_degree_capacity,
    assign_uniform_capacity,
    star_topology,
)
from repro.units import mbps


def test_uniform():
    topo = star_topology(4)
    assign_uniform_capacity(topo, mbps(3))
    assert all(topo.capacity(u, v) == mbps(3) for u, v in topo.links())
    with pytest.raises(ConfigurationError):
        assign_uniform_capacity(topo, 0)


def test_degree_weighted_scales_with_degree():
    topo = Topology()
    topo.add_link("hub", "a")
    topo.add_link("hub", "b")
    topo.add_link("a", "b")
    topo.add_link("hub", "leaf")
    assign_degree_capacity(topo, base_capacity=1e6, exponent=1.0)
    # hub has degree 3; hub-a (3*2) beats hub-leaf (3*1).
    assert topo.capacity("hub", "a") > topo.capacity("hub", "leaf")


def test_core_edge_split():
    topo = star_topology(3)
    topo.add_link(1, 2)  # make 1 and 2 non-leaves
    assign_core_edge_capacity(topo, core_capacity=mbps(10), edge_capacity=mbps(1))
    assert topo.capacity(0, 3) == mbps(1)   # 3 is still a leaf
    assert topo.capacity(1, 2) == mbps(10)
    assert topo.capacity(0, 1) == mbps(10)
    with pytest.raises(ConfigurationError):
        assign_core_edge_capacity(topo, -1, 1)


def test_uniform_pair_spec():
    topo = star_topology(3)
    assign_uniform_capacity(topo, (mbps(8), mbps(2)))
    for u, v in topo.links():
        assert topo.capacity(u, v) == mbps(8)
        assert topo.capacity(v, u) == mbps(2)
    with pytest.raises(ConfigurationError):
        assign_uniform_capacity(topo, (mbps(8), 0))


def test_apply_capacity_asymmetry():
    topo = star_topology(4)
    assign_uniform_capacity(topo, mbps(10))
    apply_capacity_asymmetry(topo, 0.25)
    assert not topo.is_symmetric()
    for u, v in topo.links():
        assert topo.capacity(u, v) == mbps(10)
        assert topo.capacity(v, u) == pytest.approx(mbps(2.5))
    with pytest.raises(ConfigurationError):
        apply_capacity_asymmetry(topo, 0.0)
    with pytest.raises(ConfigurationError):
        apply_capacity_asymmetry(topo, float("inf"))
