"""Topology serialisation round-trips."""

import warnings

import pytest

from repro.errors import TopologyError
from repro.topology import Topology, build_isp_topology, fig3_topology
from repro.topology import io as topo_io
from repro.topology.io import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_from_edge_list,
    topology_to_dict,
    topology_to_edge_list,
)


def _assert_same(a: Topology, b: Topology) -> None:
    assert sorted(map(repr, a.nodes())) == sorted(map(repr, b.nodes()))
    assert sorted(map(repr, a.links())) == sorted(map(repr, b.links()))
    for u, v in a.links():
        # Both directions must survive the round trip.
        assert a.capacity(u, v) == pytest.approx(b.capacity(u, v))
        assert a.capacity(v, u) == pytest.approx(b.capacity(v, u))
        assert a.delay(u, v) == pytest.approx(b.delay(u, v))


def _asymmetric_topology() -> Topology:
    topo = Topology("asym")
    topo.add_link("a", "b", capacity=(8e6, 2e6))
    topo.add_link("b", "c", capacity=5e6)
    topo.set_directed_capacity("c", "b", 1e6)
    return topo


def test_dict_round_trip_fig3():
    topo = fig3_topology()
    clone = topology_from_dict(topology_to_dict(topo))
    _assert_same(topo, clone)
    assert clone.name == "fig3"


def test_json_file_round_trip(tmp_path):
    topo = build_isp_topology("vsnl", seed=0)
    path = tmp_path / "vsnl.json"
    save_topology(topo, path)
    clone = load_topology(path)
    _assert_same(topo, clone)


def test_invalid_json_rejected(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(TopologyError):
        load_topology(path)


def test_dict_validation():
    with pytest.raises(TopologyError):
        topology_from_dict({"name": "x"})
    with pytest.raises(TopologyError):
        topology_from_dict({"links": [{"u": 1}]})


def test_edge_list_round_trip():
    topo = fig3_topology()
    text = topology_to_edge_list(topo)
    clone = topology_from_edge_list(text)
    _assert_same(topo, clone)


def test_edge_list_parsing_features():
    text = """
    # a comment
    a b 5e6 0.002
    b c            # defaults apply
    """
    topo = topology_from_edge_list(text)
    assert topo.capacity("a", "b") == 5e6
    assert topo.delay("a", "b") == pytest.approx(0.002)
    assert topo.has_link("b", "c")


def test_edge_list_integer_nodes():
    topo = topology_from_edge_list("1 2\n2 3\n")
    assert set(topo.nodes()) == {1, 2, 3}


def test_edge_list_errors_carry_line_numbers():
    with pytest.raises(TopologyError, match="line 2"):
        topology_from_edge_list("a b\nonlyone\n")
    with pytest.raises(TopologyError, match="line 2"):
        topology_from_edge_list("a b\na b\n")  # duplicate link


def test_dict_round_trip_asymmetric():
    topo = _asymmetric_topology()
    clone = topology_from_dict(topology_to_dict(topo))
    _assert_same(topo, clone)
    assert clone.capacity("a", "b") == 8e6
    assert clone.capacity("b", "a") == 2e6
    assert clone.capacity("c", "b") == 1e6


def test_json_file_round_trip_asymmetric(tmp_path):
    topo = _asymmetric_topology()
    path = tmp_path / "asym.json"
    save_topology(topo, path)
    _assert_same(topo, load_topology(path))


def test_edge_list_round_trip_asymmetric():
    topo = _asymmetric_topology()
    text = topology_to_edge_list(topo)
    # Asymmetric links carry the fifth column; symmetric ones do not.
    data_lines = [l for l in text.splitlines() if not l.startswith("#")]
    assert any(len(line.split()) == 5 for line in data_lines)
    _assert_same(topo, topology_from_edge_list(text))


def test_edge_list_fifth_column_is_reverse_capacity():
    topo = topology_from_edge_list("a b 8e6 0.001 2e6\n")
    assert topo.capacity("a", "b") == 8e6
    assert topo.capacity("b", "a") == 2e6


def test_legacy_document_warns_once_and_loads_symmetric(monkeypatch):
    monkeypatch.setattr(topo_io, "_warned_legacy_symmetric", False)
    legacy = {"name": "old", "links": [{"u": 1, "v": 2, "capacity": 4e6}]}
    with pytest.warns(UserWarning, match="symmetric"):
        topo = topology_from_dict(legacy)
    assert topo.capacity(1, 2) == 4e6
    assert topo.capacity(2, 1) == 4e6
    # The warning is one-time per process, not per document.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        topology_from_dict(legacy)


def test_directed_document_does_not_warn(monkeypatch):
    monkeypatch.setattr(topo_io, "_warned_legacy_symmetric", False)
    document = topology_to_dict(_asymmetric_topology())
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        topology_from_dict(document)
