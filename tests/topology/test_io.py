"""Topology serialisation round-trips."""

import pytest

from repro.errors import TopologyError
from repro.topology import Topology, build_isp_topology, fig3_topology
from repro.topology.io import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_from_edge_list,
    topology_to_dict,
    topology_to_edge_list,
)


def _assert_same(a: Topology, b: Topology) -> None:
    assert sorted(map(repr, a.nodes())) == sorted(map(repr, b.nodes()))
    assert sorted(map(repr, a.links())) == sorted(map(repr, b.links()))
    for u, v in a.links():
        assert a.capacity(u, v) == pytest.approx(b.capacity(u, v))
        assert a.delay(u, v) == pytest.approx(b.delay(u, v))


def test_dict_round_trip_fig3():
    topo = fig3_topology()
    clone = topology_from_dict(topology_to_dict(topo))
    _assert_same(topo, clone)
    assert clone.name == "fig3"


def test_json_file_round_trip(tmp_path):
    topo = build_isp_topology("vsnl", seed=0)
    path = tmp_path / "vsnl.json"
    save_topology(topo, path)
    clone = load_topology(path)
    _assert_same(topo, clone)


def test_invalid_json_rejected(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(TopologyError):
        load_topology(path)


def test_dict_validation():
    with pytest.raises(TopologyError):
        topology_from_dict({"name": "x"})
    with pytest.raises(TopologyError):
        topology_from_dict({"links": [{"u": 1}]})


def test_edge_list_round_trip():
    topo = fig3_topology()
    text = topology_to_edge_list(topo)
    clone = topology_from_edge_list(text)
    _assert_same(topo, clone)


def test_edge_list_parsing_features():
    text = """
    # a comment
    a b 5e6 0.002
    b c            # defaults apply
    """
    topo = topology_from_edge_list(text)
    assert topo.capacity("a", "b") == 5e6
    assert topo.delay("a", "b") == pytest.approx(0.002)
    assert topo.has_link("b", "c")


def test_edge_list_integer_nodes():
    topo = topology_from_edge_list("1 2\n2 3\n")
    assert set(topo.nodes()) == {1, 2, 3}


def test_edge_list_errors_carry_line_numbers():
    with pytest.raises(TopologyError, match="line 2"):
        topology_from_edge_list("a b\nonlyone\n")
    with pytest.raises(TopologyError, match="line 2"):
        topology_from_edge_list("a b\na b\n")  # duplicate link
