"""Topology graph model tests."""

import pytest

from repro.errors import TopologyError
from repro.topology import Link, Topology, link_key, split_capacity_spec
from repro.units import mbps


@pytest.fixture
def triangle():
    topo = Topology("triangle")
    topo.add_link("a", "b", capacity=mbps(10), delay=0.001)
    topo.add_link("b", "c", capacity=mbps(20), delay=0.002)
    topo.add_link("c", "a", capacity=mbps(30), delay=0.003)
    return topo


def test_link_key_is_order_independent():
    assert link_key(2, 1) == link_key(1, 2)
    assert link_key("b", "a") == ("a", "b")


def test_basic_counts(triangle):
    assert triangle.num_nodes == 3
    assert triangle.num_links == 3
    assert set(triangle.nodes()) == {"a", "b", "c"}


def test_capacity_delay_lookup_either_orientation(triangle):
    assert triangle.capacity("a", "b") == mbps(10)
    assert triangle.capacity("b", "a") == mbps(10)
    assert triangle.delay("c", "b") == pytest.approx(0.002)


def test_self_loop_rejected():
    topo = Topology()
    with pytest.raises(TopologyError):
        topo.add_link("x", "x")


def test_duplicate_link_rejected(triangle):
    with pytest.raises(TopologyError):
        triangle.add_link("b", "a")


def test_nonpositive_capacity_rejected():
    topo = Topology()
    with pytest.raises(TopologyError):
        topo.add_link("a", "b", capacity=0)
    with pytest.raises(TopologyError):
        topo.add_link("a", "b", capacity=-5)


def test_unknown_link_lookup_raises(triangle):
    with pytest.raises(TopologyError):
        triangle.capacity("a", "zzz")


def test_set_capacity(triangle):
    triangle.set_capacity("a", "b", mbps(99))
    assert triangle.capacity("b", "a") == mbps(99)
    with pytest.raises(TopologyError):
        triangle.set_capacity("a", "b", -1)


def test_is_bridge(triangle):
    # No triangle edge is a bridge; a pendant edge is.
    assert not triangle.is_bridge("a", "b")
    triangle.add_link("c", "leaf")
    assert triangle.is_bridge("c", "leaf")
    # is_bridge must not mutate the graph.
    assert triangle.has_link("c", "leaf")
    assert triangle.num_links == 4


def test_without_link_copies(triangle):
    reduced = triangle.without_link("a", "b")
    assert not reduced.has_link("a", "b")
    assert triangle.has_link("a", "b")


def test_directed_links_double_count(triangle):
    directed = list(triangle.directed_links())
    assert len(directed) == 2 * triangle.num_links
    assert ("a", "b") in directed and ("b", "a") in directed


def test_from_links_and_total_capacity():
    topo = Topology.from_links([(1, 2), (2, 3)], capacity=mbps(5))
    assert topo.num_links == 2
    assert topo.total_capacity() == mbps(10)
    assert topo.link_capacities() == {(1, 2): mbps(5), (2, 3): mbps(5)}


def test_is_connected():
    topo = Topology.from_links([(1, 2), (3, 4)])
    assert not topo.is_connected()
    topo.add_link(2, 3)
    assert topo.is_connected()


def test_neighbors_and_degree(triangle):
    assert set(triangle.neighbors("a")) == {"b", "c"}
    assert triangle.degree("a") == 2
    with pytest.raises(TopologyError):
        triangle.neighbors("nope")


def test_copy_independent(triangle):
    clone = triangle.copy()
    clone.remove_link("a", "b")
    assert triangle.has_link("a", "b")
    assert not clone.has_link("a", "b")


# ----------------------------------------------------------------------
# Directed-capacity substrate
# ----------------------------------------------------------------------
def test_link_key_matches_legacy_helper():
    assert Link.key(2, 1) == link_key(1, 2) == (1, 2)


def test_split_capacity_spec():
    assert split_capacity_spec(5.0) == (5.0, 5.0)
    assert split_capacity_spec((3.0, 7.0)) == (3.0, 7.0)
    with pytest.raises(TopologyError):
        split_capacity_spec((1.0, 2.0, 3.0))
    with pytest.raises(TopologyError):
        split_capacity_spec("fast")


def test_pair_spec_sets_per_direction_capacity():
    topo = Topology()
    # The spec's forward direction is the traversal order given to
    # add_link, regardless of canonical orientation.
    topo.add_link("b", "a", capacity=(mbps(8), mbps(2)))
    assert topo.capacity("b", "a") == mbps(8)
    assert topo.capacity("a", "b") == mbps(2)


def test_set_directed_capacity_leaves_reverse_alone(triangle):
    triangle.set_directed_capacity("b", "a", mbps(1))
    assert triangle.capacity("b", "a") == mbps(1)
    assert triangle.capacity("a", "b") == mbps(10)
    with pytest.raises(TopologyError):
        triangle.set_directed_capacity("a", "b", 0)


def test_set_capacity_pair_spec(triangle):
    triangle.set_capacity("a", "b", (mbps(4), mbps(6)))
    assert triangle.capacity("a", "b") == mbps(4)
    assert triangle.capacity("b", "a") == mbps(6)


def test_is_symmetric(triangle):
    assert triangle.is_symmetric()
    triangle.set_directed_capacity("b", "a", mbps(1))
    assert not triangle.is_symmetric()


def test_directed_capacities_both_orientations(triangle):
    triangle.set_directed_capacity("b", "a", mbps(1))
    caps = triangle.directed_capacities()
    assert len(caps) == 2 * triangle.num_links
    assert caps[("a", "b")] == mbps(10)
    assert caps[("b", "a")] == mbps(1)


def test_asymmetry_survives_copy_and_without_link(triangle):
    triangle.set_directed_capacity("b", "a", mbps(1))
    clone = triangle.copy()
    assert clone.capacity("b", "a") == mbps(1)
    assert clone.capacity("a", "b") == mbps(10)
    reduced = triangle.without_link("b", "c")
    assert reduced.capacity("b", "a") == mbps(1)


def test_is_bridge_preserves_directed_capacities(triangle):
    triangle.set_directed_capacity("b", "a", mbps(1))
    triangle.is_bridge("a", "b")
    assert triangle.capacity("b", "a") == mbps(1)
    assert triangle.capacity("a", "b") == mbps(10)
