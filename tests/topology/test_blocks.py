"""Motif builders: each block's links must carry its detour class."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TopologyError
from repro.routing.detour import DetourClass, classify_link_detour
from repro.topology import Topology
from repro.topology.blocks import (
    NodeNamer,
    add_long_cycle,
    add_pendant,
    add_square_chain,
    add_triangle_fan,
    decompose_one_hop,
    decompose_three_plus,
    decompose_two_hop,
)


def _fresh():
    topo = Topology("block-test")
    namer = NodeNamer()
    root = topo.add_node(namer.fresh())
    return topo, namer, root


@pytest.mark.parametrize("num_links", [3, 5, 7, 11])
def test_triangle_fan_links_are_one_hop(num_links):
    topo, namer, root = _fresh()
    created = add_triangle_fan(topo, root, num_links, namer)
    assert len(created) == num_links
    for u, v in created:
        assert classify_link_detour(topo, u, v) is DetourClass.ONE_HOP


@pytest.mark.parametrize("bad", [1, 2, 4, 6])
def test_triangle_fan_rejects_even_or_tiny(bad):
    topo, namer, root = _fresh()
    with pytest.raises(TopologyError):
        add_triangle_fan(topo, root, bad, namer)


@pytest.mark.parametrize("num_links", [4, 7, 10, 13])
def test_square_chain_links_are_two_hop(num_links):
    topo, namer, root = _fresh()
    created = add_square_chain(topo, root, num_links, namer)
    assert len(created) == num_links
    for u, v in created:
        assert classify_link_detour(topo, u, v) is DetourClass.TWO_HOP


@pytest.mark.parametrize("bad", [3, 5, 6, 9])
def test_square_chain_rejects_unreachable_counts(bad):
    topo, namer, root = _fresh()
    with pytest.raises(TopologyError):
        add_square_chain(topo, root, bad, namer)


@pytest.mark.parametrize("num_links", [5, 6, 9])
def test_long_cycle_links_are_three_plus(num_links):
    topo, namer, root = _fresh()
    created = add_long_cycle(topo, root, num_links, namer)
    assert len(created) == num_links
    for u, v in created:
        assert classify_link_detour(topo, u, v) is DetourClass.THREE_PLUS


def test_long_cycle_rejects_short():
    topo, namer, root = _fresh()
    with pytest.raises(TopologyError):
        add_long_cycle(topo, root, 4, namer)


def test_pendant_is_bridge():
    topo, namer, root = _fresh()
    u, v = add_pendant(topo, root, namer)
    assert classify_link_detour(topo, u, v) is DetourClass.NONE


def test_blocks_glued_at_shared_vertex_keep_classes():
    # A fan and a square attached at the same node must not perturb
    # each other's detour classes.
    topo, namer, root = _fresh()
    fan = add_triangle_fan(topo, root, 5, namer)
    square = add_square_chain(topo, root, 4, namer)
    pendant = add_pendant(topo, root, namer)
    for u, v in fan:
        assert classify_link_detour(topo, u, v) is DetourClass.ONE_HOP
    for u, v in square:
        assert classify_link_detour(topo, u, v) is DetourClass.TWO_HOP
    assert classify_link_detour(topo, *pendant) is DetourClass.NONE


@given(st.integers(min_value=0, max_value=400))
def test_decompose_one_hop_sums(count):
    if count in (1, 2, 4):
        with pytest.raises(TopologyError):
            decompose_one_hop(count)
        return
    parts = decompose_one_hop(count)
    assert sum(parts) == count
    assert all(p >= 3 and p % 2 == 1 for p in parts)


@given(st.integers(min_value=0, max_value=400))
def test_decompose_two_hop_sums(count):
    if count in (1, 2, 3, 5, 6, 9):
        with pytest.raises(TopologyError):
            decompose_two_hop(count)
        return
    parts = decompose_two_hop(count)
    assert sum(parts) == count
    assert all(p >= 4 and (p - 4) % 3 == 0 for p in parts)


@given(st.integers(min_value=0, max_value=400))
def test_decompose_three_plus_sums(count):
    if 1 <= count <= 4:
        with pytest.raises(TopologyError):
            decompose_three_plus(count)
        return
    parts = decompose_three_plus(count)
    assert sum(parts) == count
    assert all(p >= 5 for p in parts)


def test_node_namer_reserve():
    namer = NodeNamer()
    assert namer.fresh() == 0
    namer.reserve(10)
    assert namer.fresh() == 11
