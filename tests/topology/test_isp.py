"""ISP profile and Table 1 solver tests."""

import pytest

from repro.errors import ConfigurationError
from repro.routing.detour import detour_breakdown
from repro.topology import ISP_NAMES, build_isp_topology, isp_profile, solve_link_counts
from repro.topology.isp import TABLE1_AVERAGE, build_isp_topology_with_report


def test_nine_isps_in_paper_order():
    assert ISP_NAMES == (
        "exodus",
        "vsnl",
        "level3",
        "sprint",
        "att",
        "ebone",
        "telstra",
        "tiscali",
        "verio",
    )


def test_profile_lookup_case_insensitive():
    assert isp_profile("Level3").display_name == "Level 3"
    assert isp_profile("TELSTRA").region == "AUS"
    with pytest.raises(ConfigurationError):
        isp_profile("comcast")


def test_vsnl_solves_to_twelve_links():
    # 25.00 / 33.33 / 0.00 / 41.67 is exactly 3/4/0/5 over 12 links.
    assert solve_link_counts((25.00, 33.33, 0.00, 41.67)) == (3, 4, 0, 5)


@pytest.mark.parametrize("name", ISP_NAMES)
def test_solver_matches_published_rounding(name):
    profile = isp_profile(name)
    counts = solve_link_counts(profile.detour_percentages)
    total = sum(counts)
    for count, target in zip(counts, profile.detour_percentages):
        assert abs(100.0 * count / total - target) <= 0.005


def test_solver_rejects_bad_percentages():
    with pytest.raises(ConfigurationError):
        solve_link_counts((10.0, 10.0, 10.0, 10.0))


@pytest.mark.parametrize("name", ["vsnl", "exodus", "telstra"])
def test_built_topology_reproduces_profile(name):
    profile = isp_profile(name)
    topo = build_isp_topology(name, seed=0)
    assert topo.is_connected()
    measured = detour_breakdown(topo).percentages()
    for got, want in zip(measured, profile.detour_percentages):
        assert abs(got - want) <= 0.005


def test_build_report_counts_sum_to_links():
    topo, report = build_isp_topology_with_report("ebone", seed=0)
    assert report.total_links == topo.num_links


def test_average_row_constant():
    assert TABLE1_AVERAGE == (52.80, 30.86, 3.24, 13.10)


def test_seed_changes_layout_not_mix():
    a = build_isp_topology("vsnl", seed=0)
    b = build_isp_topology("vsnl", seed=1)
    assert detour_breakdown(a).counts == detour_breakdown(b).counts
