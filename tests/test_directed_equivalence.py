"""Directed-substrate equivalence suite.

The directed-capacity refactor must be invisible on symmetric
topologies: every flow-level core and both chunk-level engines have to
reproduce the pre-refactor (undirected-substrate) results exactly.
The goldens below were captured on the commit *before* the refactor
with the exact workloads in this file; the assertions hold them to
1e-12.

The asymmetric half of the suite exercises what the old substrate
could not express at all: per-direction capacities under randomized
churn, cross-checked against from-scratch recomputation with the
allocator's own ``verify=True`` guard.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunksim.config import ChunkSimConfig
from repro.chunksim.network import ChunkNetwork
from repro.flowsim.allocation import IncrementalInrp
from repro.flowsim.simulator import FlowLevelSimulator
from repro.flowsim.strategies import make_strategy
from repro.routing.detour import DetourTable
from repro.routing.shortest import shortest_path
from repro.topology import apply_capacity_asymmetry
from repro.topology.builders import fig3_topology
from repro.topology.generators import mesh_topology
from repro.units import mbps
from repro.workloads import uniform_pairs
from repro.workloads.traffic import FlowSpec

TOL = 1e-12

#: Pre-refactor flow-level results on Fig. 3 (see the module
#: docstring).  Keyed by strategy; identical across all three cores up
#: to float association order (covered by the 1e-12 tolerance).
FLOW_GOLDENS = {
    "sp": {
        "throughput": 0.0675303197353914,
        "mean_fct": 4.319047619047619,
        "completions": [8.5, 2.2, 7.4, 6.6, 2.2142857142857144, 2.0],
    },
    "inrp": {
        "throughput": 0.09020618556701031,
        "mean_fct": 3.233333333333333,
        "completions": [4.6000000000000005, 4.4, 4.2, 3.8, 2.0, 3.4],
    },
}

#: Pre-refactor chunk-level results on Fig. 3, identical across the
#: modern and reference engines.
CHUNK_GOLDENS = {
    "aimd": {
        "goodputs": [933333.3333333334, 960000.0, 2995555.5555555555],
        "jain": 0.7400177114982852,
    },
    "inrpp": {
        "goodputs": [915555.5555555555, 1084444.4444444445, 2995555.5555555555],
        "jain": 0.757081973028817,
    },
}


def _flow_specs():
    return [
        FlowSpec(0, 1, 4, 0.0, 8e6, mbps(20)),
        FlowSpec(1, 1, 3, 0.2, 6e6, mbps(20)),
        FlowSpec(2, 5, 4, 0.4, 5e6, mbps(20)),
        FlowSpec(3, 2, 4, 0.6, 4e6, mbps(20)),
        FlowSpec(4, 1, 5, 0.8, 9e6, mbps(20)),
        FlowSpec(5, 3, 4, 1.0, 3e6, mbps(20)),
    ]


@pytest.mark.parametrize("core", ["reference", "incremental", "vectorized"])
@pytest.mark.parametrize("mode", ["sp", "inrp"])
def test_flow_cores_reproduce_pre_refactor_goldens(mode, core):
    topo = fig3_topology()
    assert topo.is_symmetric()
    result = FlowLevelSimulator(
        topo, make_strategy(mode, topo), _flow_specs(), core=core
    ).run()
    golden = FLOW_GOLDENS[mode]
    assert result.network_throughput == pytest.approx(
        golden["throughput"], abs=TOL
    )
    assert result.mean_fct() == pytest.approx(golden["mean_fct"], abs=TOL)
    records = sorted(result.require_records(), key=lambda r: r.flow_id)
    assert [r.completion_time for r in records] == pytest.approx(
        golden["completions"], abs=TOL
    )


@pytest.mark.parametrize("engine", ["modern", "reference"])
@pytest.mark.parametrize("mode", ["aimd", "inrpp"])
def test_chunk_engines_reproduce_pre_refactor_goldens(mode, engine):
    net = ChunkNetwork(
        fig3_topology(), mode=mode, config=ChunkSimConfig(), engine=engine
    )
    net.add_flow(1, 4, 400, start_time=0.0)
    net.add_flow(5, 4, 400, start_time=0.0)
    net.add_flow(1, 3, 400, start_time=0.0)
    report = net.run(duration=10.0, warmup=1.0)
    golden = CHUNK_GOLDENS[mode]
    assert [f.goodput_bps for f in report.flows] == pytest.approx(
        golden["goodputs"], abs=TOL
    )
    assert report.jain() == pytest.approx(golden["jain"], abs=TOL)


def test_asymmetric_directions_allocate_independently():
    """Same path forward and back: each direction gets its own pipe."""
    topo = fig3_topology()
    topo.set_directed_capacity(2, 4, mbps(1))  # squeeze 2 -> 4 only
    strategy = make_strategy("sp", topo)
    outcome = strategy.allocate(
        {
            0: (tuple(shortest_path(topo, 1, 4)), mbps(10)),
            1: (tuple(shortest_path(topo, 4, 1)), mbps(10)),
        }
    )
    assert outcome.rates[0] == pytest.approx(mbps(1))
    assert outcome.rates[1] == pytest.approx(mbps(2))  # reverse untouched


@settings(deadline=None, max_examples=10)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    churn=st.lists(
        st.integers(min_value=0, max_value=4), min_size=4, max_size=25
    ),
    ratio=st.floats(min_value=0.1, max_value=0.9),
)
def test_asymmetric_churn_verified_against_scratch(seed, churn, ratio):
    """Property: on an asymmetric topology, incremental INRP agrees
    with from-scratch recomputation under arbitrary arrival/departure
    churn (``verify=True`` cross-checks inside every recompute)."""
    topo = mesh_topology(12, extra_links=10, seed=seed, capacity=10.0)
    apply_capacity_asymmetry(topo, ratio)
    capacities = topo.directed_capacities()
    table = DetourTable(topo, max_intermediate=1)
    sampler = uniform_pairs(topo, seed=seed + 1)
    allocator = IncrementalInrp(capacities, table, verify=True)
    active = set()
    next_id = 0
    for action in churn:
        if action == 0 and active:
            victim = min(active)
            allocator.remove_flow(victim)
            active.discard(victim)
        else:
            src, dst = sampler()
            path = tuple(shortest_path(topo, src, dst))
            allocator.add_flow(next_id, path, 4.0)
            active.add(next_id)
            next_id += 1
        allocator.recompute()  # raises SimulationError on divergence
    assert allocator.max_verify_deviation <= 1e-9
