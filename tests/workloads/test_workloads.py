"""Arrival processes, size distributions, pair samplers, workloads."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.topology import fig3_topology, mesh_topology, star_topology
from repro.workloads import (
    DeterministicArrivals,
    ExponentialSize,
    FixedSize,
    FlowWorkload,
    ParetoSize,
    PoissonArrivals,
    gravity_pairs,
    local_pairs,
    uniform_pairs,
)


# ----------------------------------------------------------------------
# Arrivals
# ----------------------------------------------------------------------
def test_poisson_mean_interarrival():
    process = PoissonArrivals(rate_per_second=50.0, seed=1)
    gaps = [process.next_interarrival() for _ in range(4000)]
    assert np.mean(gaps) == pytest.approx(1 / 50.0, rel=0.1)


def test_poisson_times_respect_horizon_and_count():
    process = PoissonArrivals(5.0, seed=2)
    times = list(process.times(horizon=10.0))
    assert all(0 < t <= 10.0 for t in times)
    assert times == sorted(times)
    process = PoissonArrivals(5.0, seed=2)
    assert len(list(process.times(max_events=7))) == 7


def test_poisson_requires_bound():
    process = PoissonArrivals(1.0, seed=0)
    with pytest.raises(WorkloadError):
        next(process.times())
    with pytest.raises(WorkloadError):
        PoissonArrivals(0.0)


def test_poisson_deterministic_per_seed():
    a = list(PoissonArrivals(3.0, seed=9).times(max_events=20))
    b = list(PoissonArrivals(3.0, seed=9).times(max_events=20))
    assert a == b


def test_deterministic_arrivals():
    times = list(DeterministicArrivals(0.5, start=1.0).times(max_events=4))
    assert times == [1.0, 1.5, 2.0, 2.5]
    with pytest.raises(WorkloadError):
        DeterministicArrivals(0.0)


# ----------------------------------------------------------------------
# Sizes
# ----------------------------------------------------------------------
def test_fixed_size():
    dist = FixedSize(1000.0)
    assert dist.sample() == 1000.0
    assert dist.mean == 1000.0
    with pytest.raises(WorkloadError):
        FixedSize(0)


def test_exponential_size_mean():
    dist = ExponentialSize(1e6, seed=3)
    samples = [dist.sample() for _ in range(5000)]
    assert np.mean(samples) == pytest.approx(1e6, rel=0.1)
    assert min(samples) > 0


def test_pareto_size_mean_and_validation():
    dist = ParetoSize(1e6, shape=2.5, seed=4)
    samples = [dist.sample() for _ in range(20000)]
    assert np.mean(samples) == pytest.approx(1e6, rel=0.15)
    with pytest.raises(WorkloadError):
        ParetoSize(1e6, shape=1.0)
    with pytest.raises(WorkloadError):
        ParetoSize(-1.0)


# ----------------------------------------------------------------------
# Pair samplers
# ----------------------------------------------------------------------
def test_uniform_pairs_no_self_loops():
    topo = mesh_topology(10, extra_links=5, seed=0)
    sample = uniform_pairs(topo, seed=1)
    for _ in range(100):
        src, dst = sample()
        assert src != dst
        assert topo.has_node(src) and topo.has_node(dst)


def test_gravity_pairs_prefer_hubs():
    topo = star_topology(8)  # node 0 is the only hub
    sample = gravity_pairs(topo, seed=1)
    draws = [sample() for _ in range(300)]
    hub_rate = sum(1 for s, d in draws if 0 in (s, d)) / len(draws)
    assert hub_rate > 0.5


def test_local_pairs_radius_and_degree():
    topo = mesh_topology(40, extra_links=30, seed=2)
    sample = local_pairs(topo, seed=3, max_hops=3)
    from repro.routing import shortest_path

    for _ in range(50):
        src, dst = sample()
        assert src != dst
        assert topo.degree(src) >= 2 and topo.degree(dst) >= 2
        assert len(shortest_path(topo, src, dst)) - 1 <= 3


def test_local_pairs_validation():
    topo = fig3_topology()
    with pytest.raises(WorkloadError):
        local_pairs(topo, max_hops=1)


# ----------------------------------------------------------------------
# FlowWorkload
# ----------------------------------------------------------------------
def test_workload_generation_sorted_and_reproducible():
    topo = mesh_topology(20, extra_links=10, seed=5)
    make = lambda: FlowWorkload(
        topo, arrival_rate=10.0, mean_size_bits=1e6, demand_bps=1e6, seed=7
    ).generate(horizon=5.0)
    specs_a, specs_b = make(), make()
    assert [s.arrival_time for s in specs_a] == [s.arrival_time for s in specs_b]
    assert all(
        a.arrival_time <= b.arrival_time for a, b in zip(specs_a, specs_a[1:])
    )
    assert all(spec.source != spec.destination for spec in specs_a)
    assert all(spec.size_bits > 0 for spec in specs_a)
    assert {spec.flow_id for spec in specs_a} == set(range(len(specs_a)))


def test_workload_demand_validation():
    topo = mesh_topology(5, extra_links=2, seed=0)
    with pytest.raises(WorkloadError):
        FlowWorkload(topo, 1.0, 1e6, demand_bps=0)


def test_iter_specs_streams_lazily_and_matches_generate():
    """iter_specs is the streaming contract: lazy (a generator, no
    list behind it), in arrival order, and identical to generate()
    from an identically-seeded workload — the determinism checkpoint
    fast-forwarding relies on."""
    topo = mesh_topology(6, extra_links=3, seed=1)

    def make():
        return FlowWorkload(topo, arrival_rate=50.0, mean_size_bits=1e6,
                            demand_bps=1e6, seed=9)

    iterator = make().iter_specs(max_flows=200)
    assert iter(iterator) is iterator  # a true lazy generator
    first = next(iterator)
    assert first.flow_id == 0
    streamed = [first] + list(iterator)
    materialized = make().generate(max_flows=200)
    assert streamed == materialized
    assert all(
        a.arrival_time <= b.arrival_time
        for a, b in zip(streamed, streamed[1:])
    )
