"""Endpoint application tests (INRPP sender/receiver, AIMD)."""

import pytest

from repro.chunksim import ChunkNetwork, ChunkSimConfig
from repro.errors import SimulationError
from repro.topology import Topology, line_topology
from repro.units import mbps


def _two_node_net(mode="inrpp", config=None):
    topo = line_topology(2, capacity=mbps(10))
    return ChunkNetwork(topo, mode=mode, config=config)


def test_receiver_requests_track_data_rate():
    net = _two_node_net()
    flow = net.add_flow(0, 1, num_chunks=500)
    net.run(duration=6.0, warmup=0.0)
    receiver = net.routers[1].receiver_app.flows[flow]
    assert receiver.complete
    # Exactly one request per chunk: max_requested reached the end.
    assert receiver.max_requested == 499


def test_anticipate_horizon_respected():
    config = ChunkSimConfig(anticipation=4, initial_window=2)
    net = _two_node_net(config=config)
    flow = net.add_flow(0, 1, num_chunks=100)
    net.sim.run(until=0.02)  # a few chunks in
    sender = net.routers[0].sender_app.flows[flow]
    # The sender never pushes beyond the anticipate limit.
    assert sender.next_push <= sender.anticipate_limit + 1


def test_sender_push_mode_fills_pipe():
    net = _two_node_net()
    flow = net.add_flow(0, 1, num_chunks=10_000_000)
    report = net.run(duration=5.0, warmup=1.0)
    # A single flow on a clean 10 Mbps link should fill most of it
    # (requests and anticipation permitting).
    assert report.flow(flow).goodput_bps > mbps(8)


def test_duplicate_flow_registration_rejected():
    net = _two_node_net()
    net.add_flow(0, 1, num_chunks=10)
    sender = net.routers[0].sender_app
    with pytest.raises(SimulationError):
        sender.add_flow(0, 1, total_chunks=10)


def test_backpressure_mode_is_request_clocked():
    # With a hard downstream bottleneck the sender ends up in
    # back-pressure mode and sends 1:1 with requests.
    topo = Topology("bp")
    topo.add_link(0, 1, capacity=mbps(10))
    topo.add_link(1, 2, capacity=mbps(1))
    net = ChunkNetwork(topo, mode="inrpp")
    flow = net.add_flow(0, 2, num_chunks=10_000_000)
    report = net.run(duration=8.0, warmup=3.0)
    sender = net.routers[0].sender_app.flows[flow]
    assert sender.mode == "backpressure"
    assert report.flow(flow).goodput_bps == pytest.approx(mbps(1), rel=0.1)


def test_aimd_window_dynamics():
    topo = Topology("aimd")
    topo.add_link(0, 1, capacity=mbps(10))
    topo.add_link(1, 2, capacity=mbps(2))
    net = ChunkNetwork(topo, mode="aimd")
    flow = net.add_flow(0, 2, num_chunks=10_000_000)
    net.run(duration=8.0, warmup=0.0)
    receiver = net.routers[2].receiver_app.flows[flow]
    # Losses occurred and the window halved at least once.
    assert receiver.timeouts > 0
    assert receiver.window >= 1.0


def test_aimd_completes_despite_losses():
    topo = Topology("aimd2")
    topo.add_link(0, 1, capacity=mbps(10))
    topo.add_link(1, 2, capacity=mbps(2))
    config = ChunkSimConfig(aimd_rto=0.3)
    net = ChunkNetwork(topo, mode="aimd", config=config)
    flow = net.add_flow(0, 2, num_chunks=300)
    report = net.run(duration=30.0, warmup=0.0)
    result = report.flow(flow)
    assert result.completed  # retransmissions recover every loss
    assert result.received_chunks == 300
