"""Wire-message and configuration validation tests."""

import pytest

from repro.chunksim import ChunkSimConfig
from repro.chunksim.messages import Backpressure, DataChunk, Gossip, Request
from repro.errors import ConfigurationError


def test_request_carries_paper_fields():
    request = Request(
        flow_id=1, next_chunk=10, ack=9, anticipate_to=26,
        receiver="r", sender="s",
    )
    # The paper's format is ⟨Nc, ACKc, Ac⟩.
    assert request.next_chunk == 10
    assert request.ack == 9
    assert request.anticipate_to == 26
    assert request.size_bytes == 100


def test_serials_are_unique_and_increasing():
    first = DataChunk(flow_id=1, chunk_id=0, size_bytes=1)
    second = Request(flow_id=1, next_chunk=0, ack=-1, anticipate_to=0)
    third = Backpressure(flow_id=1, congested_link=("a", "b"), allowed_bps=1.0)
    assert first.serial < second.serial < third.serial


def test_data_chunk_defaults():
    chunk = DataChunk(flow_id=3, chunk_id=7, size_bytes=10_000)
    assert chunk.tunnel == ()
    assert chunk.detours == 0
    assert chunk.hops == 0
    assert not chunk.anticipated


def test_gossip_carries_backlog_map():
    message = Gossip(origin="n1", backlog_bytes={"n2": 30_000})
    assert message.backlog_bytes["n2"] == 30_000


def test_config_defaults_are_consistent():
    config = ChunkSimConfig()
    assert config.high_watermark_bytes == 4 * config.chunk_bytes
    assert config.low_watermark_bytes == 2 * config.chunk_bytes
    assert config.aimd_buffer_bytes == 16 * config.chunk_bytes


@pytest.mark.parametrize(
    "kwargs",
    [
        {"chunk_bytes": 0},
        {"request_bytes": -1},
        {"ti": 0.0},
        {"anticipation": -1},
        {"initial_window": 0},
        {"rho": 0.0},
        {"rho": 1.5},
        {"high_watermark_chunks": 1, "low_watermark_chunks": 2},
        {"detour_depth": -1},
    ],
)
def test_config_rejects_invalid(kwargs):
    with pytest.raises(ConfigurationError):
        ChunkSimConfig(**kwargs)
