"""Engine stress tests: cancel-heavy churn and tombstone bounds.

The modern :class:`Simulator` tombstones cancelled entries and
compacts the heap once the dead fraction crosses the slack threshold.
These tests pin two properties:

- **order equivalence under churn** — a randomized interleaving of
  schedule / cancel / run produces the exact same firing sequence on
  the modern engine, the reference engine and a naive sorted-list
  model (the executable specification);
- **bounded memory** — under a cancel-heavy timer workload (the AIMD
  retransmission pattern) the heap stays within a constant factor of
  the live event population, while the reference engine's heap grows
  with the total number of cancellations.
"""

from hypothesis import given, settings, strategies as st

from repro.chunksim.engine import ReferenceSimulator, Simulator


class NaiveSimulator:
    """Sorted-list reference model: the executable specification.

    Keeps every scheduled callback in a flat list and, on ``run``,
    repeatedly executes the earliest live ``(time, seq)`` entry.  No
    heap, no tombstones — obviously correct and obviously slow.
    """

    def __init__(self):
        self.now = 0.0
        self._entries = []
        self._seq = 0

    def schedule_entry(self, delay, fn, *args):
        entry = [self.now + delay, self._seq, fn, args]
        self._seq += 1
        self._entries.append(entry)
        return entry

    @staticmethod
    def cancel_entry(entry):
        entry[2] = None

    def run(self, until):
        while True:
            live = [e for e in self._entries if e[2] is not None]
            if not live:
                break
            entry = min(live, key=lambda e: (e[0], e[1]))
            if entry[0] > until:
                break
            self._entries.remove(entry)
            self.now = entry[0]
            entry[2](*entry[3])
        self.now = until

    @property
    def live_pending(self):
        return sum(1 for e in self._entries if e[2] is not None)


#: Delays drawn from a small set so that same-instant ties (the FIFO
#: tie-break) occur constantly.
_DELAYS = (0.0, 0.1, 0.25, 0.5, 1.0, 2.0)


def _drive(sim, actions):
    """Apply a churn script to *sim*; returns the firing log."""
    log = []
    handles = {}
    next_tag = 0

    def fire(tag):
        log.append((sim.now, tag))

    for op, arg in actions:
        if op <= 4:  # schedule (weighted: churn is mostly scheduling)
            delay = _DELAYS[arg % len(_DELAYS)]
            handles[next_tag] = sim.schedule_entry(delay, fire, next_tag)
            next_tag += 1
        elif op <= 7 and handles:  # cancel an arbitrary live handle
            tags = sorted(handles)
            tag = tags[arg % len(tags)]
            sim.cancel_entry(handles.pop(tag))
        else:  # advance the clock
            sim.run(sim.now + _DELAYS[arg % len(_DELAYS)])
    sim.run(sim.now + 10.0 * max(_DELAYS))
    return log


@settings(deadline=None, max_examples=40)
@given(
    actions=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=1_000_000),
        ),
        min_size=5,
        max_size=120,
    )
)
def test_engines_match_naive_model_under_churn(actions):
    """Property: modern == reference == sorted-list model, exactly."""
    naive_log = _drive(NaiveSimulator(), actions)
    # A tiny compaction floor so the churn script actually crosses it.
    modern_log = _drive(Simulator(min_compact_size=4), actions)
    reference_log = _drive(ReferenceSimulator(), actions)
    assert modern_log == naive_log
    assert reference_log == naive_log


@settings(deadline=None, max_examples=20)
@given(
    actions=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=1_000_000),
        ),
        min_size=5,
        max_size=120,
    )
)
def test_dead_accounting_is_consistent_under_churn(actions):
    """``dead`` + ``live_pending`` always partition ``pending``."""
    sim = Simulator(min_compact_size=8)
    handles = {}
    next_tag = 0
    for op, arg in actions:
        if op <= 4:
            handles[next_tag] = sim.schedule_entry(
                _DELAYS[arg % len(_DELAYS)], lambda: None
            )
            next_tag += 1
        elif op <= 6 and handles:
            tags = sorted(handles)
            sim.cancel_entry(handles.pop(tags[arg % len(tags)]))
        elif op == 7 and handles:
            # Double-cancel must be idempotent (no double counting).
            tags = sorted(handles)
            entry = handles[tags[arg % len(tags)]]
            sim.cancel_entry(entry)
            sim.cancel_entry(entry)
        else:
            sim.run(sim.now + _DELAYS[arg % len(_DELAYS)])
        assert 0 <= sim.dead <= sim.pending
        assert sim.live_pending == sim.pending - sim.dead
    sim.run(sim.now + 100.0)
    assert sim.dead == 0


def _timer_churn(sim, rounds=40, per_round=500, cancel_fraction=0.95):
    """AIMD-shaped load: dense timers, nearly all cancelled early.

    Returns the peak heap length observed across the churn.
    """
    peak = 0
    for _ in range(rounds):
        entries = [
            sim.schedule_entry(0.5, lambda: None) for _ in range(per_round)
        ]
        cutoff = int(len(entries) * cancel_fraction)
        for entry in entries[:cutoff]:
            sim.cancel_entry(entry)
        peak = max(peak, sim.pending)
        sim.run(sim.now + 0.01)
    return peak


def test_heap_stays_bounded_under_cancel_heavy_load():
    sim = Simulator(min_compact_size=64)
    peak = _timer_churn(sim)
    total_scheduled = 40 * 500
    # Compaction must actually have run, and the heap must stay within
    # a constant factor of the live population instead of accumulating
    # the ~19k tombstones this load produces.
    assert sim.compactions > 0
    live_peak = 0.05 * total_scheduled + sim.min_compact_size
    assert peak <= 4 * live_peak
    assert sim.dead <= max(
        sim.min_compact_size, sim.compact_slack * sim.pending + 1
    )


def test_reference_engine_accumulates_tombstones():
    # The contrast that motivated the fix: the seed engine keeps every
    # cancelled timer in its heap until the scheduled time is popped.
    reference = ReferenceSimulator()
    modern = Simulator(min_compact_size=64)
    reference_peak = _timer_churn(reference)
    modern_peak = _timer_churn(modern)
    assert reference_peak > 5 * modern_peak


def test_event_handle_cancel_also_compacts():
    # Cancellation through the Event handle (schedule) shares the dead
    # accounting with cancel_entry.
    sim = Simulator(min_compact_size=16)
    events = [sim.schedule(1.0, lambda: None) for _ in range(400)]
    for event in events[:399]:
        event.cancel()
    assert sim.compactions > 0
    assert sim.pending < 100
    sim.run(2.0)
    assert sim.live_pending == 0
