"""Router-interface tests: Eq. 1 estimation, phases, custody."""

import pytest

from repro.chunksim import ChunkSimConfig, Simulator
from repro.chunksim.interface import Phase, RouterInterface
from repro.chunksim.link import SimLink
from repro.chunksim.messages import DataChunk


def _iface(config=None, rate=10e6):
    sim = Simulator()
    received = []
    link = SimLink(
        sim, "r", "n", rate_bps=rate, delay_s=0.001,
        deliver=lambda p, l: received.append(p),
    )
    iface = RouterInterface(sim, link, config or ChunkSimConfig())
    return sim, iface, received


def _chunk(chunk_id=0, size=10_000):
    return DataChunk(flow_id=1, chunk_id=chunk_id, size_bytes=size)


def test_anticipated_rate_from_requests():
    # 10 forwarded requests, each announcing one 10 kB chunk, within
    # one Ti window of 0.1 s -> r_a = 10 * 80kbit / 0.1s = 8 Mbps.
    sim, iface, _ = _iface()
    for _ in range(10):
        iface.anticipate(10_000 * 8)
    assert iface.anticipated_bps() == pytest.approx(8e6)
    # After the window passes, the estimate decays to zero.
    sim.run(until=0.2)
    assert iface.anticipated_bps() == 0.0


def test_phase_transitions():
    config = ChunkSimConfig()
    sim, iface, _ = _iface(config)
    assert iface.phase() is Phase.PUSH
    # Anticipated demand beyond rho * rate flips the phase to DETOUR.
    for _ in range(200):
        iface.anticipate(10_000 * 8)
    assert iface.anticipated_bps() > config.rho * iface.link.rate_bps
    assert iface.phase() is Phase.DETOUR
    # Custody occupation flips it to BACKPRESSURE.
    while iface.can_accept(10_000):
        iface.enqueue(_chunk())
    iface.take_custody(_chunk(99))
    assert iface.phase() is Phase.BACKPRESSURE


def test_can_accept_watermark():
    config = ChunkSimConfig(high_watermark_chunks=2, low_watermark_chunks=1)
    sim, iface, _ = _iface(config)
    assert iface.can_accept(10_000)
    iface.enqueue(_chunk(0))  # goes straight to the wire
    iface.enqueue(_chunk(1))
    iface.enqueue(_chunk(2))
    # Queue is now at the 2-chunk watermark.
    assert not iface.can_accept(10_000)


def test_custody_blocks_line_until_drained():
    config = ChunkSimConfig()
    sim, iface, _ = _iface(config)
    iface.take_custody(_chunk(7))
    # New chunks must not overtake custody chunks.
    assert not iface.can_accept(10_000)
    drained = iface.drain_custody()
    assert drained is not None and drained.chunk_id == 7
    assert iface.custody_backlog == 0


def test_drain_respects_low_watermark():
    config = ChunkSimConfig(high_watermark_chunks=4, low_watermark_chunks=0)
    sim, iface, _ = _iface(config)
    iface.enqueue(_chunk(0))
    iface.enqueue(_chunk(1))  # one queued behind the in-flight chunk
    iface.take_custody(_chunk(2))
    assert iface.drain_custody() is None  # queue above the watermark
    sim.run(until=0.1)  # line drains
    assert iface.drain_custody() is not None


def test_active_flow_count_expires():
    config = ChunkSimConfig(ti=0.05)
    sim, iface, _ = _iface(config)
    iface.note_flow(1)
    iface.note_flow(2)
    assert iface.active_flow_count() == 2
    assert iface.fair_share_bps() == pytest.approx(iface.link.rate_bps / 2)
    sim.run(until=1.0)
    assert iface.active_flow_count() == 1  # never drops below 1
