"""Discrete-event engine tests."""

import pytest

from repro.chunksim import Simulator
from repro.errors import SimulationError


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.run(until=10.0)
    assert fired == ["a", "b", "c"]
    assert sim.now == 10.0


def test_simultaneous_events_fifo():
    sim = Simulator()
    fired = []
    for label in ("first", "second", "third"):
        sim.schedule(1.0, lambda l=label: fired.append(l))
    sim.run(until=2.0)
    assert fired == ["first", "second", "third"]


def test_cancellation():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    sim.run(until=2.0)
    assert fired == []


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(0.5, lambda: fired.append(("inner", sim.now)))

    sim.schedule(1.0, outer)
    sim.run(until=2.0)
    assert fired == [("outer", 1.0), ("inner", 1.5)]


def test_run_until_boundary_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("at-boundary"))
    sim.run(until=1.0)
    assert fired == ["at-boundary"]


def test_partial_run_then_resume():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("early"))
    sim.schedule(5.0, lambda: fired.append("late"))
    sim.run(until=2.0)
    assert fired == ["early"]
    sim.run(until=6.0)
    assert fired == ["early", "late"]


def test_errors():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_max_events_guard():
    sim = Simulator()

    def rearm():
        sim.schedule(0.001, rearm)

    sim.schedule(0.0, rearm)
    with pytest.raises(SimulationError):
        sim.run(until=100.0, max_events=50)


def test_max_events_allows_exactly_the_budget():
    # max_events=N must process N events, not N+1, before raising.
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(0.1 * (i + 1), lambda i=i: fired.append(i))
    sim.run(until=10.0, max_events=5)
    assert fired == [0, 1, 2, 3, 4]

    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(0.1 * (i + 1), lambda i=i: fired.append(i))
    with pytest.raises(SimulationError):
        sim.run(until=10.0, max_events=4)
    assert fired == [0, 1, 2, 3]  # the budget-exceeding event never ran


def test_max_events_ignores_tombstones():
    sim = Simulator()
    fired = []
    cancelled = [sim.schedule(0.1, lambda: fired.append("no")) for _ in range(10)]
    for event in cancelled:
        event.cancel()
    sim.schedule(0.2, lambda: fired.append("yes"))
    sim.run(until=1.0, max_events=1)
    assert fired == ["yes"]


def test_schedule_at_clamps_float_rounding():
    # Re-deriving an absolute time through float arithmetic can land a
    # sub-epsilon hair before now; that must schedule, not raise.
    sim = Simulator()
    fired = []
    sim.schedule(0.3, lambda: None)
    sim.run(until=0.3)
    behind = sim.now - 1e-13
    assert behind < sim.now
    sim.schedule_at(behind, lambda: fired.append(sim.now))
    sim.run(until=1.0)
    assert fired == [pytest.approx(0.3)]


def test_schedule_at_still_rejects_real_past_times():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=1.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)
