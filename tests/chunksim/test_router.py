"""Router pipeline tests: FIB forwarding, detours, back-pressure relay."""

import pytest

from repro.chunksim import ChunkNetwork, ChunkSimConfig
from repro.chunksim.messages import Backpressure, DataChunk
from repro.chunksim.tracing import Trace
from repro.topology import Topology, fig3_topology, line_topology
from repro.units import mbps


def test_fibs_point_along_shortest_paths():
    topo = fig3_topology()
    net = ChunkNetwork(topo, mode="inrpp")
    assert net.routers[1].fib[4] == 2
    assert net.routers[2].fib[4] == 4
    assert net.routers[3].fib[4] == 4
    assert net.routers[5].fib[1] == 2


def test_detour_options_oriented_per_router():
    topo = fig3_topology()
    net = ChunkNetwork(topo, mode="inrpp")
    assert net.routers[2].detour_options[4] == [(2, 3, 4)]
    assert net.routers[4].detour_options[2] == [(4, 3, 2)]
    # The access link 1-2 has no detour.
    assert net.routers[1].detour_options[2] == []


def test_tunnel_chunks_follow_forced_hops():
    # Inject a tunnelled chunk at router 2 and verify it goes via 3.
    topo = fig3_topology()
    net = ChunkNetwork(topo, mode="inrpp")
    net.add_flow(1, 4, num_chunks=1)  # registers receiver app at 4
    chunk = DataChunk(
        flow_id=0, chunk_id=0, size_bytes=10_000,
        receiver=4, sender=1, tunnel=(3, 4),
    )
    router2 = net.routers[2]
    router2.forward(chunk, next_hop=3, upstream=1)
    net.sim.run(until=1.0)
    receiver = net.routers[4].receiver_app.flows[0]
    assert len(receiver.received) == 1
    # 2 -> 3 -> 4 is two router hops from injection.
    assert receiver.hops_total == 2


def test_unroutable_data_counts_as_drop():
    topo = line_topology(2)
    net = ChunkNetwork(topo, mode="inrpp")
    trace = net.trace
    chunk = DataChunk(flow_id=5, chunk_id=0, size_bytes=100, receiver="ghost")
    via = net.routers[1].ifaces[0].link  # the 1 -> 0 direction
    net.routers[0].receive(chunk, via)
    assert net.routers[0].drops == 1
    assert trace.count("data-unroutable") == 1


def test_backpressure_relay_toward_sender():
    # BP arriving at a transit router must be relayed along the FIB
    # toward the flow's sender.
    topo = line_topology(4, capacity=mbps(10))
    net = ChunkNetwork(topo, mode="inrpp")
    net.add_flow(0, 3, num_chunks=1)
    signal = Backpressure(
        flow_id=0, congested_link=(2, 3), allowed_bps=1e6, origin=2
    )
    signal.sender = 0
    net.routers[2]._on_backpressure(signal)
    net.sim.run(until=0.1)
    assert net.trace.count("bp-relayed") >= 1
    # The sender app saw it and switched the flow's mode.
    sender = net.routers[0].sender_app
    assert sender.flows[0].mode == "backpressure" or sender.bp_signals >= 1


def test_gossip_state_propagates():
    topo = fig3_topology()
    config = ChunkSimConfig(ti=0.05)
    net = ChunkNetwork(topo, mode="inrpp", config=config)
    net.sim.run(until=0.3)
    # Router 2 must know about node 3's interfaces by now.
    assert any(
        origin == 3 for origin, _ in net.routers[2].neighbor_backlog
    )


def test_aimd_mode_has_no_detour_or_custody():
    topo = fig3_topology()
    net = ChunkNetwork(topo, mode="aimd")
    f1 = net.add_flow(1, 4, num_chunks=2_000)
    report = net.run(duration=4.0, warmup=0.0)
    assert report.detour_events == 0
    assert report.custody_events == 0
