"""Simulated link tests: serialization, queuing, drops, control path."""

import pytest

from repro.chunksim import Simulator
from repro.chunksim.link import SimLink
from repro.chunksim.messages import DataChunk
from repro.errors import ConfigurationError


def _chunk(size=10_000, chunk_id=0):
    return DataChunk(flow_id=1, chunk_id=chunk_id, size_bytes=size)


def _collector():
    received = []

    def deliver(packet, link):
        received.append((packet, link))

    return received, deliver


def test_serialization_plus_propagation_timing():
    sim = Simulator()
    received, deliver = _collector()
    # 10 kB at 10 Mbps = 8 ms tx; +1 ms propagation = 9 ms.
    link = SimLink(sim, "a", "b", rate_bps=10e6, delay_s=0.001, deliver=deliver)
    link.send(_chunk())
    sim.run(until=0.0089)
    assert received == []
    sim.run(until=0.0091)
    assert len(received) == 1


def test_back_to_back_serialization():
    sim = Simulator()
    received, deliver = _collector()
    link = SimLink(sim, "a", "b", rate_bps=10e6, delay_s=0.0, deliver=deliver)
    for i in range(3):
        link.send(_chunk(chunk_id=i))
    sim.run(until=1.0)
    assert [p.chunk_id for p, _ in received] == [0, 1, 2]
    # 3 chunks x 8 ms each, FIFO order.
    assert link.stats.data_packets == 3
    assert link.stats.busy_time == pytest.approx(0.024)


def test_drop_tail_buffer():
    sim = Simulator()
    received, deliver = _collector()
    link = SimLink(
        sim, "a", "b", rate_bps=10e6, delay_s=0.0,
        buffer_bytes=25_000, deliver=deliver,
    )
    outcomes = [link.send(_chunk(chunk_id=i)) for i in range(5)]
    # First chunk goes straight to the wire; two fit in the buffer.
    assert outcomes == [True, True, True, False, False]
    assert link.stats.drops == 2
    sim.run(until=1.0)
    assert len(received) == 3


def test_control_fast_path_skips_queue():
    sim = Simulator()
    received, deliver = _collector()
    link = SimLink(sim, "a", "b", rate_bps=1e3, delay_s=0.001, deliver=deliver)
    link.send(_chunk(size=100_000))  # hogs the slow wire for 800 s
    link.send_control(_chunk(size=64, chunk_id=99))
    sim.run(until=0.01)
    assert len(received) == 1
    assert received[0][0].chunk_id == 99
    assert link.stats.control_packets == 1


def test_utilization():
    sim = Simulator()
    received, deliver = _collector()
    link = SimLink(sim, "a", "b", rate_bps=10e6, delay_s=0.0, deliver=deliver)
    link.send(_chunk())  # 8 ms of wire time
    sim.run(until=0.016)
    assert link.utilization() == pytest.approx(0.5, rel=0.01)


def test_tx_complete_callback():
    sim = Simulator()
    received, deliver = _collector()
    link = SimLink(sim, "a", "b", rate_bps=10e6, delay_s=0.0, deliver=deliver)
    ticks = []
    link.on_tx_complete = lambda: ticks.append(sim.now)
    link.send(_chunk())
    sim.run(until=1.0)
    assert len(ticks) == 1
    assert ticks[0] == pytest.approx(0.008)


def test_validation():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        SimLink(sim, "a", "b", rate_bps=0.0, delay_s=0.0)
    with pytest.raises(ConfigurationError):
        SimLink(sim, "a", "b", rate_bps=1.0, delay_s=-0.1)
