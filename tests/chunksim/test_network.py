"""End-to-end chunk network tests: both modes on real scenarios."""

import pytest

from repro.chunksim import ChunkNetwork, ChunkSimConfig
from repro.errors import ConfigurationError
from repro.topology import Topology, fig3_topology, line_topology
from repro.units import mbps


def test_simple_transfer_completes():
    topo = line_topology(3, capacity=mbps(10))
    net = ChunkNetwork(topo, mode="inrpp")
    flow = net.add_flow(0, 2, num_chunks=100)
    report = net.run(duration=5.0, warmup=0.0)
    result = report.flow(flow)
    assert result.completed
    assert result.received_chunks == 100
    assert result.duplicates == 0
    assert report.drops == 0
    # 100 chunks x 10 kB at 10 Mbps is ~0.8 s of wire time.
    assert result.completion_time < 2.0


def test_chunk_conservation_no_loss_in_inrpp():
    # INRPP must never drop: every sent chunk is delivered or in
    # custody/queue when the clock stops.
    topo = fig3_topology()
    net = ChunkNetwork(topo, mode="inrpp")
    f1 = net.add_flow(1, 4, num_chunks=10_000)
    f2 = net.add_flow(1, 5, num_chunks=10_000)
    report = net.run(duration=10.0, warmup=0.0)
    assert report.drops == 0
    sender = net.routers[1].sender_app
    for flow_id in (f1, f2):
        sent = sender.flows[flow_id].chunks_sent
        received = report.flow(flow_id).received_chunks
        assert received <= sent


def test_fig3_inrpp_pools_resources():
    topo = fig3_topology()
    net = ChunkNetwork(topo, mode="inrpp")
    f1 = net.add_flow(1, 4, num_chunks=10_000_000)
    f2 = net.add_flow(1, 5, num_chunks=10_000_000)
    report = net.run(duration=12.0, warmup=4.0)
    r1, r2 = report.flow(f1).goodput_bps, report.flow(f2).goodput_bps
    assert r1 == pytest.approx(mbps(5), rel=0.08)
    assert r2 == pytest.approx(mbps(5), rel=0.08)
    assert report.jain() > 0.99
    assert report.detour_events > 0
    assert report.flow(f1).detoured_chunks > 0
    assert report.flow(f2).detoured_chunks == 0


def test_fig3_aimd_is_unfair():
    topo = fig3_topology()
    net = ChunkNetwork(topo, mode="aimd")
    f1 = net.add_flow(1, 4, num_chunks=10_000_000)
    f2 = net.add_flow(1, 5, num_chunks=10_000_000)
    report = net.run(duration=12.0, warmup=4.0)
    r1, r2 = report.flow(f1).goodput_bps, report.flow(f2).goodput_bps
    assert r1 == pytest.approx(mbps(2), rel=0.2)
    assert r2 == pytest.approx(mbps(8), rel=0.2)
    assert report.jain() == pytest.approx(0.73, abs=0.05)
    assert report.drops > 0          # AIMD probes by losing packets
    assert report.custody_events == 0


def test_backpressure_without_detour():
    topo = Topology("bp")
    topo.add_link(0, 1, capacity=mbps(10))
    topo.add_link(1, 2, capacity=mbps(2))
    net = ChunkNetwork(topo, mode="inrpp")
    flow = net.add_flow(0, 2, num_chunks=10_000_000)
    report = net.run(duration=10.0, warmup=3.0)
    assert report.flow(flow).goodput_bps == pytest.approx(mbps(2), rel=0.05)
    assert report.custody_events > 0
    assert report.backpressure_signals > 0
    assert report.drops == 0
    # Custody is conserved and bounded: whatever was not drained when
    # the clock stopped is still sitting in the stores, and the
    # back-pressure loop keeps that residue small.
    residue = report.custody_events - report.custody_drains
    in_store = sum(
        router.custody_used_bytes() for router in net.routers.values()
    )
    config_chunk = net.config.chunk_bytes
    assert residue == in_store // config_chunk
    assert residue <= 32


def test_sender_mode_switches_to_backpressure():
    topo = Topology("bp2")
    topo.add_link(0, 1, capacity=mbps(10))
    topo.add_link(1, 2, capacity=mbps(2))
    net = ChunkNetwork(topo, mode="inrpp")
    flow = net.add_flow(0, 2, num_chunks=10_000_000)
    net.run(duration=5.0, warmup=1.0)
    sender = net.routers[0].sender_app
    assert sender.bp_signals > 0


def test_gossip_can_be_disabled():
    # Without neighbour state, detouring is optimistic: the paper
    # warns that "data may find itself before another congested link"
    # (Section 3.3).  On the single-detour Fig. 3 topology the
    # optimistic choice happens to be the right one, so pooling still
    # reaches the full 5 Mbps — the flag must simply not break things.
    config = ChunkSimConfig(gossip=False)
    topo = fig3_topology()
    net = ChunkNetwork(topo, mode="inrpp", config=config)
    f1 = net.add_flow(1, 4, num_chunks=10_000_000)
    report = net.run(duration=6.0, warmup=2.0)
    goodput = report.flow(f1).goodput_bps
    assert goodput == pytest.approx(mbps(5), rel=0.1)
    # No gossip traffic was exchanged.
    assert not net.routers[2].neighbor_backlog


def test_anticipated_chunks_are_pushed():
    topo = line_topology(2, capacity=mbps(10))
    net = ChunkNetwork(topo, mode="inrpp")
    flow = net.add_flow(0, 1, num_chunks=5_000)
    net.run(duration=3.0, warmup=0.0)
    sender = net.routers[0].sender_app
    assert sender.flows[flow].anticipated_sent > 0


def test_validation():
    topo = line_topology(2)
    with pytest.raises(ConfigurationError):
        ChunkNetwork(topo, mode="tcp")
    net = ChunkNetwork(topo)
    with pytest.raises(ConfigurationError):
        net.add_flow(0, 0, num_chunks=10)
    with pytest.raises(ConfigurationError):
        net.add_flow(0, 1, num_chunks=0)
    with pytest.raises(ConfigurationError):
        net.add_flow(0, 99, num_chunks=10)
    disconnected = Topology.from_links([(0, 1), (2, 3)])
    with pytest.raises(ConfigurationError):
        ChunkNetwork(disconnected)


def test_report_accessors():
    topo = line_topology(2)
    net = ChunkNetwork(topo)
    flow = net.add_flow(0, 1, num_chunks=10)
    report = net.run(duration=2.0, warmup=0.0)
    assert report.flow(flow).flow_id == flow
    with pytest.raises(KeyError):
        report.flow(999)
    assert 0.0 < report.total_goodput_bps()
    assert report.mode == "inrpp"
    assert ((0, 1) in report.link_utilization)
