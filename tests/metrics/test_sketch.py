"""Greenwald-Khanna quantile sketch tests: rank-error bounds, weights,
merging, degenerate inputs."""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.metrics import QuantileSketch


def _rank_error(values, weights, sketch, qs):
    """Worst |estimated rank - target rank| / total weight over *qs*."""
    pairs = sorted(zip(values, weights))
    total = sum(weights)
    worst = 0.0
    for q in qs:
        answer = sketch.quantile(q)
        # Weighted rank band of the answered value.
        below = sum(w for v, w in pairs if v < answer)
        through = below + sum(w for v, w in pairs if v == answer)
        target = q * total
        if below <= target <= through:
            continue
        worst = max(worst, min(abs(below - target), abs(through - target)) / total)
    return worst


QS = [0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]


def test_rank_error_within_epsilon_unweighted():
    rng = random.Random(7)
    values = [rng.lognormvariate(0.0, 1.5) for _ in range(20_000)]
    sketch = QuantileSketch(epsilon=0.01)
    for value in values:
        sketch.insert(value)
    error = _rank_error(values, [1.0] * len(values), sketch, QS)
    assert error <= 0.01 + 1e-12


def test_rank_error_within_epsilon_weighted():
    rng = random.Random(11)
    values = [rng.expovariate(1.0) for _ in range(10_000)]
    weights = [rng.expovariate(1.0) + 0.01 for _ in range(10_000)]
    sketch = QuantileSketch(epsilon=0.02)
    for value, weight in zip(values, weights):
        sketch.insert(value, weight)
    error = _rank_error(values, weights, sketch, QS)
    assert error <= 0.02 + 1e-12


def test_merge_rank_error_additive():
    # Two shards, merged: the documented bound is (eps1 + eps2) * W.
    rng = random.Random(3)
    shard_a = [rng.gauss(0.0, 1.0) for _ in range(8_000)]
    shard_b = [rng.gauss(2.0, 0.5) for _ in range(8_000)]
    a, b = QuantileSketch(epsilon=0.01), QuantileSketch(epsilon=0.01)
    for value in shard_a:
        a.insert(value)
    for value in shard_b:
        b.insert(value)
    a.merge(b)
    values = shard_a + shard_b
    error = _rank_error(values, [1.0] * len(values), a, QS)
    assert error <= 0.02 + 1e-12
    assert a.count == 16_000


def test_extremes_are_exact():
    sketch = QuantileSketch(epsilon=0.05)
    values = list(range(1000))
    random.Random(0).shuffle(values)
    for value in values:
        sketch.insert(float(value))
    assert sketch.quantile(0.0) == 0.0
    assert sketch.quantile(1.0) == 999.0
    assert sketch.min == 0.0
    assert sketch.max == 999.0


def test_bounded_size():
    sketch = QuantileSketch(epsilon=0.01)
    rng = random.Random(1)
    for _ in range(100_000):
        sketch.insert(rng.random())
    # O(1/eps * log(eps * n)) — far below the sample size.
    assert len(sketch) < 2_000


def test_zero_weight_ignored_and_validation():
    sketch = QuantileSketch(epsilon=0.1)
    sketch.insert(5.0, weight=0.0)
    assert sketch.count == 0
    with pytest.raises(ConfigurationError):
        sketch.insert(math.nan)
    with pytest.raises(ConfigurationError):
        sketch.insert(1.0, weight=-1.0)
    with pytest.raises(ConfigurationError):
        sketch.quantile(0.5)  # still empty
    with pytest.raises(ConfigurationError):
        QuantileSketch(epsilon=0.0)
    with pytest.raises(ConfigurationError):
        QuantileSketch(epsilon=0.5)


def test_single_value():
    sketch = QuantileSketch()
    sketch.insert(42.0, weight=3.0)
    for q in (0.0, 0.5, 1.0):
        assert sketch.quantile(q) == 42.0
    assert sketch.total_weight == 3.0


def test_merge_empty_is_noop():
    sketch = QuantileSketch()
    sketch.insert(1.0)
    sketch.merge(QuantileSketch())
    assert sketch.count == 1
    assert sketch.quantile(0.5) == 1.0
    with pytest.raises(ConfigurationError):
        sketch.merge(object())  # type: ignore[arg-type]


def test_summary_reports_quantiles_not_moments():
    sketch = QuantileSketch(epsilon=0.01)
    for value in range(1, 101):
        sketch.insert(float(value))
    summary = sketch.summary()
    assert summary.count == 100
    assert math.isnan(summary.mean) and math.isnan(summary.std)
    assert summary.minimum == 1.0
    assert summary.maximum == 100.0
    assert abs(summary.p50 - 50.0) <= 2.0
