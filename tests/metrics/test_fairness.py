"""Jain index and max-min certificate tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.metrics import (
    bottleneck_fairness_certificate,
    jain_index,
    max_min_violations,
)


def test_paper_fig3_values():
    # The paper reports 0.73 for (2, 8) and 1.0 for (5, 5).
    assert jain_index([2.0, 8.0]) == pytest.approx(0.735, abs=0.001)
    assert jain_index([5.0, 5.0]) == 1.0


def test_equal_rates_are_perfectly_fair():
    assert jain_index([3.0] * 7) == pytest.approx(1.0)


def test_lower_bound_one_over_n():
    # One flow hogs everything: index -> 1/n.
    assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


def test_input_validation():
    with pytest.raises(ConfigurationError):
        jain_index([])
    with pytest.raises(ConfigurationError):
        jain_index([1.0, -2.0])


def test_all_zero_is_degenerately_fair():
    assert jain_index([0.0, 0.0]) == 1.0


@given(st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=1, max_size=30))
def test_jain_bounds(rates):
    value = jain_index(rates)
    assert 0.0 < value <= 1.0 + 1e-12


@given(
    st.floats(min_value=0.1, max_value=100.0),
    st.integers(min_value=1, max_value=20),
)
def test_jain_scale_invariant(rate, n):
    rates = [rate * (i + 1) for i in range(n)]
    scaled = [r * 7.5 for r in rates]
    assert jain_index(rates) == pytest.approx(jain_index(scaled))


# ----------------------------------------------------------------------
# Max-min certificate
# ----------------------------------------------------------------------
def test_certificate_accepts_fair_allocation():
    # Two flows share a 10 link; one is capped at 2 by a second link.
    capacities = {"shared": 10.0, "slow": 2.0}
    flow_links = {1: ["shared", "slow"], 2: ["shared"]}
    demands = {1: 10.0, 2: 10.0}
    rates = {1: 2.0, 2: 8.0}
    assert bottleneck_fairness_certificate(rates, demands, flow_links, capacities)


def test_certificate_rejects_overload():
    capacities = {"l": 10.0}
    violations = max_min_violations(
        {1: 6.0, 2: 6.0}, {1: 10.0, 2: 10.0}, {1: ["l"], 2: ["l"]}, capacities
    )
    assert any("overloaded" in v for v in violations)


def test_certificate_rejects_unfairness():
    # 3/7 split of a saturated link: flow 1 has no bottleneck.
    capacities = {"l": 10.0}
    violations = max_min_violations(
        {1: 3.0, 2: 7.0}, {1: 10.0, 2: 10.0}, {1: ["l"], 2: ["l"]}, capacities
    )
    assert violations


def test_certificate_rejects_demand_overshoot():
    capacities = {"l": 10.0}
    violations = max_min_violations(
        {1: 5.0}, {1: 3.0}, {1: ["l"]}, capacities
    )
    assert any("exceeds demand" in v for v in violations)


def test_certificate_rejects_underuse():
    # Link half empty yet the flow is starved: not max-min.
    capacities = {"l": 10.0}
    violations = max_min_violations(
        {1: 1.0}, {1: 10.0}, {1: ["l"]}, capacities
    )
    assert any("no bottleneck" in v for v in violations)
