"""CDF and summary statistics tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.metrics import Cdf, summarize, weighted_cdf


def test_simple_cdf():
    cdf = Cdf([1.0, 2.0, 3.0, 4.0])
    assert cdf(0.5) == 0.0
    assert cdf(1.0) == pytest.approx(0.25)
    assert cdf(2.5) == pytest.approx(0.5)
    assert cdf(4.0) == pytest.approx(1.0)
    assert cdf(99.0) == 1.0


def test_weighted_cdf_mass():
    # 90% of the weight at stretch 1.0, as in a Fig. 4b-like sample.
    cdf = weighted_cdf([1.0, 1.4], [9.0, 1.0])
    assert cdf(1.0) == pytest.approx(0.9)
    assert cdf(1.4) == pytest.approx(1.0)


def test_quantile_inverse():
    cdf = Cdf([10.0, 20.0, 30.0, 40.0])
    assert cdf.quantile(0.25) == 10.0
    assert cdf.quantile(0.5) == 20.0
    assert cdf.quantile(1.0) == 40.0
    assert cdf.min == 10.0 and cdf.max == 40.0


def test_points_are_plot_ready():
    xs, ps = Cdf([3.0, 1.0, 2.0]).points()
    assert xs == sorted(xs)
    assert ps[-1] == pytest.approx(1.0)


def test_validation():
    with pytest.raises(ConfigurationError):
        Cdf([])
    with pytest.raises(ConfigurationError):
        Cdf([1.0], weights=[1.0, 2.0])
    with pytest.raises(ConfigurationError):
        Cdf([1.0], weights=[-1.0])
    with pytest.raises(ConfigurationError):
        Cdf([1.0], weights=[0.0])
    with pytest.raises(ConfigurationError):
        Cdf([1.0]).quantile(1.5)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
def test_cdf_monotone_and_bounded(values):
    cdf = Cdf(values)
    xs, ps = cdf.points()
    assert all(0.0 <= p <= 1.0 + 1e-9 for p in ps)
    assert all(a <= b + 1e-12 for a, b in zip(ps, ps[1:]))
    assert cdf(max(values)) == pytest.approx(1.0)


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_summarize_consistency(values):
    stats = summarize(values)
    eps = 1e-9 * (1.0 + abs(stats.maximum))
    assert stats.count == len(values)
    assert stats.minimum - eps <= stats.p50 <= stats.maximum + eps
    assert stats.minimum - eps <= stats.mean <= stats.maximum + eps


def test_summarize_empty_rejected():
    with pytest.raises(ConfigurationError):
        summarize([])
