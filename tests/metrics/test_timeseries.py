"""Time-weighted mean and rate-estimator tests."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.metrics import RateEstimator, TimeWeightedMean


def test_time_weighted_mean_piecewise():
    meter = TimeWeightedMean()
    meter.observe(1.0, 10.0)  # 10 held over [0, 1)
    meter.observe(3.0, 4.0)   # 4 held over [1, 3)
    assert meter.mean == pytest.approx((10.0 * 1 + 4.0 * 2) / 3)
    assert meter.total == pytest.approx(18.0)
    assert meter.duration == pytest.approx(3.0)


def test_time_weighted_mean_before_time_passes():
    meter = TimeWeightedMean()
    assert meter.mean == 0.0


def test_time_cannot_go_backwards():
    meter = TimeWeightedMean()
    meter.observe(2.0, 1.0)
    with pytest.raises(SimulationError):
        meter.observe(1.0, 1.0)


def test_rate_estimator_window():
    est = RateEstimator(window=1.0)
    est.record(0.0, 100.0)
    est.record(0.5, 100.0)
    assert est.rate(0.9) == pytest.approx(200.0)
    # The first event leaves the window after t=1.0.
    assert est.rate(1.1) == pytest.approx(100.0)
    assert est.rate(2.0) == pytest.approx(0.0)


def test_rate_estimator_total():
    est = RateEstimator(window=2.0)
    est.record(0.0, 5.0)
    est.record(1.0, 7.0)
    assert est.total(1.5) == pytest.approx(12.0)
    assert est.total(2.5) == pytest.approx(7.0)


def test_rate_estimator_drained_window_is_exactly_zero():
    # 0.1 + 0.3 accumulates to 0.4, but subtracting the amounts back
    # out leaves ~4.4e-17 of positive float residue; a drained window
    # must report exactly 0.0, not the drift.
    est = RateEstimator(window=1.0)
    est.record(0.0, 0.1)
    est.record(0.1, 0.3)
    assert est.rate(5.0) == 0.0
    assert est.total(5.0) == 0.0


def test_rate_estimator_reusable_after_drain():
    est = RateEstimator(window=1.0)
    est.record(0.0, 0.1)
    est.record(0.1, 0.3)
    est.rate(10.0)  # drains
    est.record(10.5, 2.0)
    assert est.rate(10.6) == pytest.approx(2.0)


def test_rate_estimator_validation():
    with pytest.raises(ConfigurationError):
        RateEstimator(window=0.0)
    est = RateEstimator(window=1.0)
    with pytest.raises(ConfigurationError):
        est.record(0.0, -1.0)
