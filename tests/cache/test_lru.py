"""LRU content-store tests."""

import pytest
from hypothesis import given, strategies as st

from repro.cache import LruCache
from repro.errors import CacheError


def test_basic_put_get():
    cache = LruCache(100)
    cache.put("a", 40)
    assert cache.get("a")
    assert not cache.get("b")
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_eviction_is_lru_order():
    evicted = []
    cache = LruCache(100, on_evict=lambda key, size: evicted.append(key))
    cache.put("a", 40)
    cache.put("b", 40)
    cache.get("a")       # refresh "a"; "b" is now least recent
    cache.put("c", 40)   # overflows: "b" must go
    assert evicted == ["b"]
    assert "a" in cache and "c" in cache and "b" not in cache


def test_byte_budget_respected():
    cache = LruCache(100)
    for key in range(20):
        cache.put(key, 30)
        assert cache.used_bytes <= 100


def test_refresh_replaces_size():
    cache = LruCache(100)
    cache.put("a", 40)
    cache.put("a", 70)
    assert cache.used_bytes == 70
    assert len(cache) == 1


def test_oversized_object_not_cached():
    cache = LruCache(100)
    cache.put("big", 500)
    assert "big" not in cache
    assert cache.used_bytes == 0


def test_zero_capacity_cache_holds_nothing():
    cache = LruCache(0)
    cache.put("a", 1)
    assert "a" not in cache


def test_clear():
    cache = LruCache(100)
    cache.put("a", 10)
    cache.clear()
    assert len(cache) == 0 and cache.used_bytes == 0


def test_validation():
    with pytest.raises(CacheError):
        LruCache(-1)
    cache = LruCache(10)
    with pytest.raises(CacheError):
        cache.put("a", -5)


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=50)),
        max_size=200,
    )
)
def test_lru_invariants(operations):
    cache = LruCache(120)
    for key, size in operations:
        cache.put(key, size)
        assert cache.used_bytes <= 120
        assert cache.used_bytes >= 0
        assert len(cache) <= 120  # items are >= 0 bytes each
