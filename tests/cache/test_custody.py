"""Custody store tests (the paper's in-network temporary storage)."""

import pytest
from hypothesis import given, strategies as st

from repro.cache import CustodyStore, custody_duration
from repro.errors import CacheError
from repro.units import gbps, gigabytes


def test_paper_sizing_footnote():
    # "a 10GB cache after a 40Gbps link can hold incoming traffic for
    # 2 seconds" — Section 3.3.
    assert custody_duration(gigabytes(10), gbps(40)) == pytest.approx(2.0)


def test_custody_duration_validation():
    with pytest.raises(CacheError):
        custody_duration(-1, 100.0)
    with pytest.raises(CacheError):
        custody_duration(100, 0.0)


def test_fifo_order():
    store = CustodyStore(capacity_bytes=1000)
    for name in ("first", "second", "third"):
        assert store.accept(name, 100)
    assert store.peek() == "first"
    assert store.release() == ("first", 100)
    assert store.release() == ("second", 100)
    assert store.release() == ("third", 100)
    assert store.release() is None


def test_budget_rejection():
    store = CustodyStore(capacity_bytes=250)
    assert store.accept("a", 100)
    assert store.accept("b", 100)
    assert not store.accept("c", 100)   # would exceed 250
    assert store.stats.rejected == 1
    store.release()
    assert store.accept("c", 100)       # room again after drain


def test_unbounded_store():
    store = CustodyStore(capacity_bytes=None)
    for i in range(1000):
        assert store.accept(i, 10_000)
    assert store.used_bytes == 10_000_000
    assert store.occupancy_fraction() == 0.0


def test_stats_tracking():
    store = CustodyStore(capacity_bytes=300)
    store.accept("a", 100)
    store.accept("b", 200)
    store.release()
    assert store.stats.accepted == 2
    assert store.stats.released == 1
    assert store.stats.peak_bytes == 300
    assert store.stats.accepted_bytes == 300
    assert store.occupancy_fraction() == pytest.approx(200 / 300)


def test_validation():
    with pytest.raises(CacheError):
        CustodyStore(capacity_bytes=-5)
    store = CustodyStore(100)
    with pytest.raises(CacheError):
        store.accept("x", -1)


@given(st.lists(st.integers(min_value=0, max_value=60), max_size=200))
def test_custody_never_exceeds_budget(sizes):
    store = CustodyStore(capacity_bytes=150)
    accepted = 0
    for index, size in enumerate(sizes):
        if store.accept(index, size):
            accepted += 1
        assert store.used_bytes <= 150
        if index % 3 == 0:
            store.release()
    assert store.stats.accepted == accepted
    # Conservation: everything accepted is either inside or released.
    assert store.stats.accepted == len(store) + store.stats.released
