"""ECMP enumeration and hashing tests."""

import pytest

from repro.errors import NoPathError
from repro.routing import all_shortest_paths, ecmp_hash, ecmp_path_for_flow
from repro.routing.ecmp import ecmp_path_table
from repro.topology import Topology


@pytest.fixture
def square():
    return Topology.from_links([(0, 1), (1, 2), (2, 3), (3, 0)])


def test_square_has_two_equal_cost_paths(square):
    paths = all_shortest_paths(square, 0, 2)
    assert sorted(paths) == [(0, 1, 2), (0, 3, 2)]


def test_single_path_graph():
    topo = Topology.from_links([(0, 1), (1, 2)])
    assert all_shortest_paths(topo, 0, 2) == [(0, 1, 2)]


def test_disconnected_raises():
    topo = Topology.from_links([(0, 1), (2, 3)])
    with pytest.raises(NoPathError):
        all_shortest_paths(topo, 0, 2)


def test_hash_stable_and_in_range():
    assert ecmp_hash(12345, 4) == ecmp_hash(12345, 4)
    for flow_id in range(200):
        assert 0 <= ecmp_hash(flow_id, 3) < 3


def test_hash_uses_all_buckets(square):
    chosen = {ecmp_path_for_flow(square, 0, 2, fid) for fid in range(50)}
    assert len(chosen) == 2  # both equal-cost paths get traffic


def test_path_table(square):
    table = ecmp_path_table(square, 0, 2)
    assert set(table.keys()) == {0, 1}
    assert all(path[0] == 0 and path[-1] == 2 for path in table.values())


def test_zero_paths_rejected():
    with pytest.raises(NoPathError):
        ecmp_hash(1, 0)
