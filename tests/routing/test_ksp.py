"""Yen's k-shortest-paths, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.errors import NoPathError, RoutingError
from repro.routing import k_shortest_paths
from repro.topology import Topology, mesh_topology


def test_k1_is_shortest_path():
    topo = Topology.from_links([(0, 1), (1, 2), (0, 2)])
    assert k_shortest_paths(topo, 0, 2, 1) == [(0, 2)]


def test_triangle_two_paths():
    topo = Topology.from_links([(0, 1), (1, 2), (0, 2)])
    paths = k_shortest_paths(topo, 0, 2, 2)
    assert paths == [(0, 2), (0, 1, 2)]


def test_returns_fewer_when_graph_is_thin():
    topo = Topology.from_links([(0, 1), (1, 2)])
    paths = k_shortest_paths(topo, 0, 2, 5)
    assert paths == [(0, 1, 2)]


def test_paths_are_loopless_and_sorted_by_cost():
    topo = mesh_topology(15, extra_links=15, seed=3)
    paths = k_shortest_paths(topo, 0, 9, 5)
    costs = [len(p) - 1 for p in paths]
    assert costs == sorted(costs)
    for path in paths:
        assert len(set(path)) == len(path)
    assert len(set(paths)) == len(paths)


@pytest.mark.parametrize("seed", [1, 4])
def test_matches_networkx_shortest_simple_paths(seed):
    topo = mesh_topology(12, extra_links=10, seed=seed)
    graph = topo.to_networkx()
    expected = []
    for path in nx.shortest_simple_paths(graph, 0, 7):
        expected.append(len(path) - 1)
        if len(expected) == 4:
            break
    got = [len(p) - 1 for p in k_shortest_paths(topo, 0, 7, 4)]
    assert got == expected  # same cost sequence (paths may tie-break)


def test_no_path_and_bad_k():
    topo = Topology.from_links([(0, 1), (2, 3)])
    with pytest.raises(NoPathError):
        k_shortest_paths(topo, 0, 3, 2)
    with pytest.raises(RoutingError):
        k_shortest_paths(topo, 0, 1, 0)
