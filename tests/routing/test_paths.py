"""Path helper tests."""

import pytest

from repro.errors import RoutingError
from repro.routing import path_hops, path_links, path_stretch, validate_path
from repro.topology import Topology


def test_path_hops_and_links():
    assert path_hops((1, 2, 4)) == 2
    assert path_links((1, 2, 4)) == [(1, 2), (2, 4)]
    # Keys are directed: the reverse walk uses the reverse-direction links.
    assert path_links((4, 2, 1)) == [(4, 2), (2, 1)]


def test_empty_path_rejected():
    with pytest.raises(RoutingError):
        path_hops(())


def test_validate_path():
    topo = Topology.from_links([(1, 2), (2, 3)])
    assert validate_path(topo, [1, 2, 3]) == (1, 2, 3)
    with pytest.raises(RoutingError):
        validate_path(topo, [1, 3])  # missing link
    with pytest.raises(RoutingError):
        validate_path(topo, [1, 2, 1])  # revisits a node
    with pytest.raises(RoutingError):
        validate_path(topo, [1, 99])  # unknown node


def test_path_stretch():
    assert path_stretch((1, 2, 3), 2) == 1.0
    assert path_stretch((1, 2, 3, 4), 2) == 1.5
    with pytest.raises(RoutingError):
        path_stretch((1, 2), 0)
