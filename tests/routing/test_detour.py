"""Detour classification and enumeration (the Table 1 machinery)."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.routing import (
    DetourClass,
    DetourTable,
    classify_link_detour,
    detour_breakdown,
    find_detour_paths,
)
from repro.topology import Topology, fig3_topology


def _cycle(n):
    links = [(i, (i + 1) % n) for i in range(n)]
    return Topology.from_links(links)


def test_triangle_edges_are_one_hop():
    topo = _cycle(3)
    for u, v in topo.links():
        assert classify_link_detour(topo, u, v) is DetourClass.ONE_HOP


def test_square_edges_are_two_hop():
    topo = _cycle(4)
    for u, v in topo.links():
        assert classify_link_detour(topo, u, v) is DetourClass.TWO_HOP


def test_pentagon_edges_are_three_plus():
    topo = _cycle(5)
    for u, v in topo.links():
        assert classify_link_detour(topo, u, v) is DetourClass.THREE_PLUS


def test_bridge_is_none():
    topo = Topology.from_links([(0, 1)])
    assert classify_link_detour(topo, 0, 1) is DetourClass.NONE


def test_unknown_link_raises():
    topo = Topology.from_links([(0, 1)])
    with pytest.raises(TopologyError):
        classify_link_detour(topo, 0, 99)


def test_breakdown_percentages_sum_to_100():
    topo = fig3_topology()
    breakdown = detour_breakdown(topo)
    assert breakdown.total_links == 5
    assert sum(breakdown.percentages()) == pytest.approx(100.0)


def test_fig3_bottleneck_has_one_hop_detour():
    topo = fig3_topology()
    assert classify_link_detour(topo, 2, 4) is DetourClass.ONE_HOP
    assert find_detour_paths(topo, 2, 4, max_intermediate=1) == [(2, 3, 4)]


def test_find_detour_paths_depth_two():
    # 0-1 direct, plus 0-2-1 (one-hop) and 0-3-4-1 (two-hop).
    topo = Topology.from_links([(0, 1), (0, 2), (2, 1), (0, 3), (3, 4), (4, 1)])
    one = find_detour_paths(topo, 0, 1, max_intermediate=1)
    assert one == [(0, 2, 1)]
    two = find_detour_paths(topo, 0, 1, max_intermediate=2)
    assert (0, 2, 1) in two and (0, 3, 4, 1) in two
    # Sorted by length: the 1-hop option comes first.
    assert two[0] == (0, 2, 1)


def test_find_detour_paths_avoids_direct_link():
    topo = _cycle(3)
    for path in find_detour_paths(topo, 0, 1, max_intermediate=2):
        assert path[0] == 0 and path[-1] == 1
        assert len(path) >= 3  # never the direct link itself
        assert len(set(path)) == len(path)


def test_detour_table_orientation():
    topo = fig3_topology()
    table = DetourTable(topo, max_intermediate=1)
    assert table.options(2, 4) == [(2, 3, 4)]
    assert table.options(4, 2) == [(4, 3, 2)]
    assert table.has_detour(2, 4)
    assert not table.has_detour(1, 2)  # the access link has no detour
    assert len(table) == topo.num_links


def test_detour_table_rejects_bad_args():
    topo = fig3_topology()
    with pytest.raises(RoutingError):
        DetourTable(topo, max_intermediate=0)
    table = DetourTable(topo)
    with pytest.raises(TopologyError):
        table.options(1, 99)


def test_detour_options_respect_residual_structure():
    # AT&T-style: square-heavy map; every 2-hop-class link must have a
    # depth-2 option and no depth-1 option.
    topo = _cycle(4)
    table = DetourTable(topo, max_intermediate=2)
    for u, v in topo.links():
        options = table.options(u, v)
        assert options, "square links must have depth-2 detours"
        assert all(len(option) == 4 for option in options)
