"""Deterministic Dijkstra tests, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.errors import NoPathError, RoutingError
from repro.routing import shortest_path, shortest_path_length
from repro.routing.shortest import all_pairs_hop_counts, dijkstra, iter_sp_next_hops
from repro.topology import Topology, mesh_topology


def test_line_path():
    topo = Topology.from_links([(0, 1), (1, 2), (2, 3)])
    assert shortest_path(topo, 0, 3) == (0, 1, 2, 3)
    assert shortest_path_length(topo, 0, 3) == 3


def test_trivial_path():
    topo = Topology.from_links([(0, 1)])
    assert shortest_path(topo, 0, 0) == (0,)


def test_no_path_raises():
    topo = Topology.from_links([(0, 1), (2, 3)])
    with pytest.raises(NoPathError):
        shortest_path(topo, 0, 3)


def test_unknown_nodes_raise():
    topo = Topology.from_links([(0, 1)])
    with pytest.raises(RoutingError):
        shortest_path(topo, 0, 99)
    with pytest.raises(RoutingError):
        shortest_path(topo, 99, 0)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_lengths_match_networkx(seed):
    topo = mesh_topology(30, extra_links=25, seed=seed)
    graph = topo.to_networkx()
    expected = dict(nx.all_pairs_shortest_path_length(graph))
    for source, lengths in all_pairs_hop_counts(topo).items():
        assert lengths == expected[source]


def test_deterministic_tie_break():
    # Square: two equal paths 0-1-2 and 0-3-2; repeated calls agree.
    topo = Topology.from_links([(0, 1), (1, 2), (2, 3), (3, 0)])
    first = shortest_path(topo, 0, 2)
    for _ in range(5):
        assert shortest_path(topo, 0, 2) == first


def test_weighted_path_prefers_cheap_links():
    topo = Topology()
    topo.add_link("a", "b", weight=10.0)
    topo.add_link("a", "c", weight=1.0)
    topo.add_link("c", "b", weight=1.0)
    path = shortest_path(topo, "a", "b", weight=topo.weight)
    assert path == ("a", "c", "b")


def test_negative_weight_rejected():
    topo = Topology.from_links([(0, 1)])
    with pytest.raises(RoutingError):
        dijkstra(topo, 0, weight=lambda u, v: -1.0)


def test_iter_sp_next_hops_builds_fib():
    topo = Topology.from_links([(0, 1), (1, 2), (2, 3)])
    fib = dict(iter_sp_next_hops(topo, 3))
    assert fib == {0: 1, 1: 2, 2: 3}
