"""Deterministic RNG derivation tests."""

import numpy as np

from repro.rng import derive_seed, make_rng, spawn


def test_same_seed_same_stream():
    a = make_rng(42, "x")
    b = make_rng(42, "x")
    assert list(a.integers(0, 1000, 10)) == list(b.integers(0, 1000, 10))


def test_labels_decorrelate_streams():
    a = make_rng(42, "arrivals")
    b = make_rng(42, "sizes")
    assert list(a.integers(0, 10**9, 8)) != list(b.integers(0, 10**9, 8))


def test_derive_seed_stable_and_distinct():
    assert derive_seed(1, "x") == derive_seed(1, "x")
    assert derive_seed(1, "x") != derive_seed(2, "x")
    assert derive_seed(1, "x") != derive_seed(1, "y")
    assert 0 <= derive_seed(123456789, "label") < 2**31


def test_generator_passthrough():
    rng = np.random.default_rng(7)
    assert make_rng(rng) is rng


def test_spawn_is_independent():
    rng = make_rng(42)
    child = spawn(rng)
    assert child is not rng
    # Child stream differs from a fresh parent stream.
    fresh = make_rng(42)
    assert list(child.integers(0, 10**9, 4)) != list(fresh.integers(0, 10**9, 4))
