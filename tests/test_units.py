"""Unit-conversion and parsing tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.units import (
    BITS_PER_BYTE,
    format_rate,
    format_size,
    gbps,
    gigabytes,
    kbps,
    kilobytes,
    mbps,
    megabytes,
    parse_rate,
    parse_size,
    transmission_time,
)


def test_rate_constructors():
    assert kbps(1) == 1_000.0
    assert mbps(10) == 10_000_000.0
    assert gbps(40) == 40_000_000_000.0


def test_size_constructors():
    assert kilobytes(1) == 1_000
    assert megabytes(2.5) == 2_500_000
    assert gigabytes(10) == 10_000_000_000


@pytest.mark.parametrize(
    "text,expected",
    [
        ("10Mbps", 10e6),
        ("40Gbps", 40e9),
        ("1.5kbps", 1500.0),
        ("300bps", 300.0),
        ("2Tbps", 2e12),
        ("10 Mbps", 10e6),
        ("10mbps", 10e6),
    ],
)
def test_parse_rate(text, expected):
    assert parse_rate(text) == pytest.approx(expected)


def test_parse_rate_passthrough_numbers():
    assert parse_rate(5000) == 5000.0
    assert parse_rate(5000.5) == 5000.5


@pytest.mark.parametrize("bad", ["", "Mbps", "10 parsecs", "fast"])
def test_parse_rate_rejects_garbage(bad):
    with pytest.raises(ConfigurationError):
        parse_rate(bad)


@pytest.mark.parametrize(
    "text,expected",
    [
        ("10GB", 10_000_000_000),
        ("1KiB", 1024),
        ("2MiB", 2 * 2**20),
        ("500B", 500),
        ("1.5MB", 1_500_000),
    ],
)
def test_parse_size(text, expected):
    assert parse_size(text) == expected


def test_parse_size_rejects_garbage():
    with pytest.raises(ConfigurationError):
        parse_size("10 furlongs")


def test_format_rate_round_trip_suffixes():
    assert format_rate(2_000_000) == "2.00Mbps"
    assert format_rate(40e9) == "40.00Gbps"
    assert format_rate(500) == "500bps"
    assert format_rate(1.5e12) == "1.50Tbps"


def test_format_size():
    assert format_size(10_000_000_000) == "10.00GB"
    assert format_size(999) == "999B"


def test_transmission_time_paper_example():
    # The paper's footnote arithmetic via link-time: 10GB at 40Gbps.
    assert transmission_time(gigabytes(10), gbps(40)) == pytest.approx(2.0)


def test_transmission_time_errors():
    with pytest.raises(ConfigurationError):
        transmission_time(100, 0.0)
    with pytest.raises(ConfigurationError):
        transmission_time(-1, 100.0)


@given(st.floats(min_value=0.001, max_value=1e6))
def test_rate_parse_format_consistency(value):
    rate = mbps(value)
    assert parse_rate(f"{value}Mbps") == pytest.approx(rate, rel=1e-9)


@given(st.integers(min_value=1, max_value=10**9), st.floats(min_value=1.0, max_value=1e12))
def test_transmission_time_positive(size, rate):
    t = transmission_time(size, rate)
    assert t >= 0
    assert t == pytest.approx(size * BITS_PER_BYTE / rate)
