"""Cross-module integration tests: the paper's story end to end."""

import pytest

import repro
from repro import (
    ChunkNetwork,
    build_isp_topology,
    jain_index,
    make_strategy,
    snapshot_experiment,
)
from repro.topology import fig3_topology
from repro.units import mbps
from repro.workloads import local_pairs


def test_public_api_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_version():
    assert repro.__version__ == "1.0.0"


def test_fluid_and_chunk_level_agree_on_fig3():
    """The fluid INRP allocator and the chunk-level INRPP protocol must
    agree on the paper's worked example within a few percent."""
    topo = fig3_topology()
    strategy = make_strategy("inrp", topo)
    flows = {
        1: (strategy.route(1, 1, 4), mbps(10)),
        2: (strategy.route(2, 1, 5), mbps(10)),
    }
    fluid = strategy.allocate(flows).rates

    net = ChunkNetwork(fig3_topology(), mode="inrpp")
    f1 = net.add_flow(1, 4, num_chunks=10_000_000)
    f2 = net.add_flow(1, 5, num_chunks=10_000_000)
    report = net.run(duration=10.0, warmup=4.0)
    assert report.flow(f1).goodput_bps == pytest.approx(fluid[1], rel=0.08)
    assert report.flow(f2).goodput_bps == pytest.approx(fluid[2], rel=0.08)


def test_inrpp_on_synthetic_isp_map_chunk_level():
    """Chunk-level INRPP runs on a Table 1 ISP map (not just toys):
    pick VSNL (smallest) and push two competing transfers."""
    topo = build_isp_topology("vsnl", seed=0)
    nodes = [n for n in topo.nodes() if topo.degree(n) >= 2]
    net = ChunkNetwork(topo, mode="inrpp")
    f1 = net.add_flow(nodes[0], nodes[-1], num_chunks=100_000)
    f2 = net.add_flow(nodes[1], nodes[-2], num_chunks=100_000)
    report = net.run(duration=5.0, warmup=1.0)
    assert report.drops == 0
    assert report.total_goodput_bps() > 0
    rates = [report.flow(f1).goodput_bps, report.flow(f2).goodput_bps]
    assert jain_index(rates) > 0.0


def test_detour_richness_predicts_inrp_gain():
    """Across ISP maps, the INRP gain should track detour availability:
    Telstra (70% one-hop links) gains more than Tiscali (24.5%)."""
    gains = {}
    for isp in ("telstra", "tiscali"):
        topo = build_isp_topology(isp, seed=0)
        sampler = local_pairs(topo, seed=3)
        results = {}
        for name in ("sp", "inrp"):
            strategy = make_strategy(name, topo)
            results[name] = snapshot_experiment(
                topo, strategy, num_flows=max(10, topo.num_nodes // 12),
                demand_bps=mbps(10), num_snapshots=3, seed=3,
                pair_sampler=sampler,
            ).mean_throughput
        gains[isp] = results["inrp"] / results["sp"] - 1.0
    assert gains["telstra"] > gains["tiscali"]


def test_custody_sizing_consistency_with_chunksim():
    """The custody duration helper and the simulator agree: a store
    sized for T seconds at the feed rate absorbs a T-second burst."""
    from repro import custody_duration

    feed = mbps(10)
    store_bytes = 2_500_000  # 2 s at 10 Mbps
    assert custody_duration(store_bytes, feed) == pytest.approx(2.0)
