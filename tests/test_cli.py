"""CLI smoke tests (fast paths only)."""

import pytest

from repro.cli import build_parser, main
from repro.topology.io import load_topology


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Level 3" in out
    assert "max deviation" in out


def test_export_isp_command(tmp_path, capsys):
    output = tmp_path / "vsnl.json"
    assert main(["export-isp", "vsnl", str(output)]) == 0
    topo = load_topology(output)
    assert topo.num_links == 12


def test_export_rejects_unknown_isp(tmp_path):
    with pytest.raises(SystemExit):
        main(["export-isp", "comcast", str(tmp_path / "x.json")])


def test_fig3_command_short(capsys):
    assert main(["fig3", "--duration", "4.0"]) == 0
    out = capsys.readouterr().out
    assert "fig3 (e2e, fluid)" in out
    assert "fig3 (inrpp, chunk-sim)" in out
