"""CLI smoke tests (fast paths only)."""

import json

import pytest

from repro import __version__
from repro.cli import _effective_seed, build_parser, main
from repro.topology.io import load_topology


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_fig4_defaults_to_calibrated_seed():
    args = build_parser().parse_args(["fig4"])
    assert _effective_seed(args) == 42


def test_explicit_seed_wins_over_fig4_default():
    args = build_parser().parse_args(["--seed", "7", "fig4"])
    assert _effective_seed(args) == 7


def test_table1_defaults_to_seed_zero():
    args = build_parser().parse_args(["table1"])
    assert _effective_seed(args) == 0


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Level 3" in out
    assert "max deviation" in out


def test_export_isp_command(tmp_path, capsys):
    output = tmp_path / "vsnl.json"
    assert main(["export-isp", "vsnl", str(output)]) == 0
    topo = load_topology(output)
    assert topo.num_links == 12


def test_export_rejects_unknown_isp(tmp_path):
    with pytest.raises(SystemExit):
        main(["export-isp", "comcast", str(tmp_path / "x.json")])


def test_fig3_command_short(capsys):
    assert main(["fig3", "--duration", "4.0"]) == 0
    out = capsys.readouterr().out
    assert "fig3 (e2e, fluid)" in out
    assert "fig3 (inrpp, chunk-sim)" in out


def test_campaign_list(capsys):
    assert main(["campaign", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("table1", "fig3", "fig4", "snapshot-sweep"):
        assert name in out


def test_campaign_list_tag_filter(capsys):
    assert main(["campaign", "list", "--tags", "paper"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out
    assert "snapshot-sweep" not in out


def test_campaign_run_report_cycle(tmp_path, capsys):
    results_dir = str(tmp_path / "results")
    argv = [
        "campaign",
        "run",
        "--scenarios",
        "table1",
        "--grid",
        "seed=0,1",
        "--grid",
        "isp=vsnl",
        "--results-dir",
        results_dir,
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert out.count("[computed]") == 2
    assert "2 computed, 0 cache hit(s)" in out

    # Second invocation is served from the cache.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert out.count("[cached ]") == 2
    assert "0 computed, 2 cache hit(s)" in out

    records = list((tmp_path / "results" / "table1").glob("*.json"))
    assert len(records) == 2
    record = json.loads(records[0].read_text())
    assert record["schema_version"] == 1
    assert record["scenario"] == "table1"

    assert main(["campaign", "report", "--results-dir", results_dir]) == 0
    out = capsys.readouterr().out
    assert "2 stored record(s)" in out


def test_campaign_report_scenario_filter_ignores_blank_names(tmp_path, capsys):
    results_dir = str(tmp_path / "results")
    main(
        [
            "campaign",
            "run",
            "--scenarios",
            "table1",
            "--grid",
            "isp=vsnl",
            "--results-dir",
            results_dir,
        ]
    )
    capsys.readouterr()
    # A trailing comma must not duplicate rows via the all-records glob.
    assert (
        main(
            [
                "campaign",
                "report",
                "--scenarios",
                "table1,",
                "--results-dir",
                results_dir,
            ]
        )
        == 0
    )
    assert "1 stored record(s)" in capsys.readouterr().out


def test_campaign_list_tags_tolerate_whitespace(capsys):
    assert main(["campaign", "list", "--tags", "paper, sweep"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out
    assert "snapshot-sweep" in out


def test_campaign_report_empty_dir(tmp_path, capsys):
    assert (
        main(["campaign", "report", "--results-dir", str(tmp_path / "none")])
        == 0
    )
    assert "no records" in capsys.readouterr().out


def test_campaign_run_rejects_unknown_scenario(tmp_path, capsys):
    argv = [
        "campaign",
        "run",
        "--scenarios",
        "nope",
        "--results-dir",
        str(tmp_path),
    ]
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert "repro: error:" in err
    assert "unknown scenario 'nope'" in err
