"""Exception hierarchy sanity."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "ConfigurationError",
        "TopologyError",
        "RoutingError",
        "NoPathError",
        "SimulationError",
        "WorkloadError",
        "CacheError",
        "AnalysisError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_no_path_error_carries_endpoints():
    err = errors.NoPathError("a", "b", "isolated component")
    assert err.source == "a"
    assert err.destination == "b"
    assert "isolated component" in str(err)
    assert isinstance(err, errors.RoutingError)


def test_catchable_as_base():
    with pytest.raises(errors.ReproError):
        raise errors.TopologyError("boom")
