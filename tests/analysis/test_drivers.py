"""Experiment driver tests (Table 1, Fig. 3, Fig. 4)."""

import pytest

from repro.analysis import run_fig4, run_table1
from repro.analysis.fig3 import (
    fig3_analytic_e2e,
    fig3_analytic_inrpp,
    run_fig3_simulation,
)
from repro.analysis.table1 import Table1Result


def test_table1_subset_matches_paper():
    result = run_table1(seed=0, isps=["vsnl", "telstra"])
    assert len(result.rows) == 2
    assert result.max_error <= 0.005
    rendered = result.render()
    assert "VSNL" in rendered and "Telstra" in rendered
    comparisons = result.comparisons()
    assert comparisons.max_relative_error() < 0.01


def test_table1_row_fields():
    result = run_table1(seed=0, isps=["vsnl"])
    row = result.rows[0]
    assert row.num_links == 12
    assert sum(row.measured) == pytest.approx(100.0)


def test_fig3_fluid_reproduces_paper_numbers():
    e2e = fig3_analytic_e2e()
    assert e2e.rate_bottlenecked_mbps == pytest.approx(2.0)
    assert e2e.rate_clear_mbps == pytest.approx(8.0)
    assert e2e.jain == pytest.approx(0.735, abs=0.001)
    inrpp = fig3_analytic_inrpp()
    assert inrpp.rate_bottlenecked_mbps == pytest.approx(5.0)
    assert inrpp.rate_clear_mbps == pytest.approx(5.0)
    assert inrpp.jain == pytest.approx(1.0)


def test_fig3_comparison_tables():
    table = fig3_analytic_e2e().comparisons()
    rendered = table.render()
    assert "Jain index" in rendered
    assert table.max_relative_error() < 0.05


def test_fig3_simulation_short_run():
    result, network = run_fig3_simulation("inrpp", duration=6.0)
    assert result.method == "chunk-sim"
    assert result.rate_bottlenecked_mbps == pytest.approx(5.0, rel=0.15)
    assert network.sim.now == 6.0


def test_fig4_small_run_structure():
    result = run_fig4(
        isps=["telstra"],
        strategies=["sp", "inrp"],
        num_snapshots=2,
        seed=1,
    )
    assert set(result.throughput["telstra"]) == {"sp", "inrp"}
    assert result.gain_over_sp("telstra") > -0.5
    assert "telstra" in result.inrp_results
    assert "Fig. 4a" in result.render_fig4a()
    assert "Fig. 4b" in result.render_fig4b()
    assert "gain" in result.comparisons().render()
