"""Ablation driver tests (small configurations for speed)."""

import pytest

from repro.analysis.ablations import (
    ablate_anticipation,
    ablate_custody_size,
    ablate_detour_depth,
    ablate_gossip,
)


def test_detour_depth_monotone_on_small_run():
    throughput = ablate_detour_depth(
        isp="vsnl", depths=(0, 2), seed=3, num_snapshots=2
    )
    assert set(throughput) == {0, 2}
    assert throughput[2] >= throughput[0] - 0.02


def test_custody_sweep_structure():
    results = ablate_custody_size(
        sizes=(("small", 200_000), ("unbounded", None)), duration=6.0
    )
    for point in results.values():
        assert point.goodput_mbps == pytest.approx(2.0, rel=0.1)
        assert point.backpressure_signals > 0
        assert point.drops == 0


def test_anticipation_zero_vs_large():
    results = ablate_anticipation(horizons=(0, 16), duration=8.0)
    # Without anticipation the push gain vanishes (no pooled 5 Mbps);
    # with a healthy horizon the INRPP allocation appears.
    assert results[0][0] < results[16][0]
    assert results[16][2] > 0.95


def test_gossip_ablation_runs():
    results = ablate_gossip(isp="vsnl", duration=4.0, num_flows=2, seed=5)
    assert set(results) == {True, False}
    assert all(value > 0 for value in results.values())
