"""ASCII reporting and comparison-record tests."""

import pytest

from repro.analysis import Comparison, ComparisonTable, ascii_bar_chart, ascii_cdf, ascii_table
from repro.errors import AnalysisError


def test_ascii_table_alignment():
    out = ascii_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert len(lines) == 5


def test_ascii_table_needs_headers():
    with pytest.raises(AnalysisError):
        ascii_table([], [])


def test_bar_chart_scales_to_peak():
    out = ascii_bar_chart(
        {"telstra": {"SP": 0.5, "INRP": 1.0}}, width=10
    )
    lines = out.splitlines()
    sp_line = next(l for l in lines if "SP" in l)
    inrp_line = next(l for l in lines if "INRP" in l)
    assert sp_line.count("#") == 5
    assert inrp_line.count("#") == 10


def test_bar_chart_empty_rejected():
    with pytest.raises(AnalysisError):
        ascii_bar_chart({})


def test_ascii_cdf_samples_curves():
    out = ascii_cdf(
        {"x": ([1.0, 2.0], [0.5, 1.0])}, points=5, title="CDF"
    )
    lines = out.splitlines()
    assert lines[0] == "CDF"
    assert len(lines) == 2 + 5 + 1  # title + header + rule... adjusted below
    # Last sampled row reaches probability 1.
    assert lines[-1].split()[-1] == "1.000"


def test_comparison_math():
    comparison = Comparison("e", "s", paper_value=2.0, measured_value=2.2)
    assert comparison.delta == pytest.approx(0.2)
    assert comparison.relative_error == pytest.approx(0.1)
    missing = Comparison("e", "s", paper_value=None, measured_value=1.0)
    assert missing.delta is None and missing.relative_error is None


def test_comparison_table_render_and_error():
    table = ComparisonTable("exp")
    table.add("a", 1.0, 1.05)
    table.add("b", None, 3.0)
    rendered = table.render()
    assert "exp" in rendered and "paper" in rendered
    assert table.max_relative_error() == pytest.approx(0.05)
