"""End-to-end cross-fidelity agreement on the calibrated Fig. 3 set.

These tests are the contract the tolerances in
:mod:`repro.validation.harness` document: the chunk-level protocol
simulator and the flow-level fluid model must agree on rates,
fairness, stretch, completion times and custody behaviour within the
calibrated bounds.  A failure here means one of the simulators
drifted, not that the tolerances are wrong.
"""

import dataclasses

import pytest

from repro.campaign.scenario import get_scenario
from repro.chunksim import ChunkSimConfig
from repro.cli import main
from repro.validation import (
    CALIBRATED_SCENARIOS,
    run_all_validations,
    run_chunk_fidelity,
    run_flow_fidelity,
    run_validation,
    scenario_by_name,
)


@pytest.mark.parametrize(
    "name", [scenario.name for scenario in CALIBRATED_SCENARIOS]
)
def test_calibrated_scenario_within_tolerance(name):
    report = run_validation(scenario_by_name(name))
    assert report.passed, report.render()


def test_both_engines_agree_on_observables():
    # The validation harness is engine-agnostic: modern and reference
    # chunk engines produce the same observables, so the divergence
    # report is about fidelity, never about the event core.
    scenario = scenario_by_name("fig3-custody-inrp")
    modern = run_chunk_fidelity(scenario, engine="modern")
    reference = run_chunk_fidelity(scenario, engine="reference")
    assert modern.rates_bps == reference.rates_bps
    assert modern.custody_peak_bytes == reference.custody_peak_bytes
    assert modern.custody_onset == reference.custody_onset
    assert modern.drops == reference.drops


def test_custody_scenario_exercises_custody():
    # Guard the calibration itself: the custody scenario must actually
    # produce custody and back-pressure, otherwise its checks are
    # vacuous.
    scenario = scenario_by_name("fig3-custody-inrp")
    chunk = run_chunk_fidelity(scenario)
    fluid = run_flow_fidelity(scenario)
    assert chunk.custody_peak_bytes > 0
    assert chunk.backpressure_signals > 0
    assert fluid.custody_expected
    assert chunk.custody_peak_bytes <= fluid.custody_bound_bytes


def test_paper_scenario_has_no_custody():
    chunk = run_chunk_fidelity(scenario_by_name("fig3-steady-inrp"))
    fluid = run_flow_fidelity(scenario_by_name("fig3-steady-inrp"))
    assert chunk.custody_peak_bytes == 0
    assert not fluid.custody_expected


def test_fluid_first_hop_demand_matches_paper_offered_load():
    fluid = run_flow_fidelity(scenario_by_name("fig3-steady-inrp"))
    assert fluid.demands_bps == {0: 10e6, 1: 10e6}


def test_tolerance_override_detects_divergence():
    # Squeezing a tolerance to zero must flip the verdict: proves the
    # harness actually gates on the tolerances instead of always
    # passing.
    scenario = dataclasses.replace(
        scenario_by_name("fig3-completion-sp"),
        name="fig3-completion-sp-strict",
        tolerances={"fct_rel": 1e-9},
    )
    report = run_validation(scenario)
    assert not report.passed
    assert any("fct" in check.name for check in report.failures)


def test_run_all_validations_subset_and_order():
    reports = run_all_validations(
        names=["fig3-completion-sp", "fig3-completion-inrp"]
    )
    assert [report.scenario for report in reports] == [
        "fig3-completion-sp",
        "fig3-completion-inrp",
    ]


def test_campaign_scenario_registered_and_runs():
    scenario = get_scenario("cross-fidelity")
    assert "validation" in scenario.tags
    payload = scenario.func(scenarios="fig3-completion-sp")
    assert set(payload) == {"fig3-completion-sp"}
    assert payload["fig3-completion-sp"]["passed"] is True


def test_validate_cli_exit_codes(capsys):
    assert main(["validate", "--scenarios", "fig3-completion-sp"]) == 0
    out = capsys.readouterr().out
    assert "1/1 scenario(s) within tolerance" in out


def test_validation_respects_config_override():
    # A custom chunk config flows through to both fidelities (the
    # custody bound is derived from the same Ti / anticipation the
    # protocol runs with).
    config = ChunkSimConfig(anticipation=8)
    report = run_validation(
        scenario_by_name("fig3-steady-inrp"), config=config
    )
    assert report.passed, report.render()
