"""Unit tests for the cross-fidelity harness machinery.

These cover the comparison mechanics (check kinds, tolerance
plumbing, report shape) and the custody predicate without running
full simulations; the end-to-end agreement runs live in
``test_cross_fidelity.py``.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.validation import (
    CALIBRATED_SCENARIOS,
    MetricCheck,
    ValidationFlow,
    ValidationReport,
    ValidationScenario,
    predict_custody,
    scenario_by_name,
)
from repro.validation.harness import DEFAULT_TOLERANCES, _Checker


# ----------------------------------------------------------------------
# Scenario definitions
# ----------------------------------------------------------------------
def test_calibrated_scenarios_are_well_formed():
    names = [scenario.name for scenario in CALIBRATED_SCENARIOS]
    assert len(names) == len(set(names))
    for scenario in CALIBRATED_SCENARIOS:
        assert scenario.chunk_mode in ("inrpp", "aimd")
        assert scenario.kind in ("steady", "completion")
        assert 0 <= scenario.effective_warmup < scenario.duration


def test_scenario_by_name_round_trip_and_unknown():
    scenario = scenario_by_name("fig3-custody-inrp")
    assert scenario.mode == "inrp"
    assert scenario.kind == "steady"
    with pytest.raises(ConfigurationError):
        scenario_by_name("no-such-scenario")


def test_scenario_rejects_unknown_mode_and_empty_flows():
    with pytest.raises(ConfigurationError):
        ValidationScenario(
            name="bad", mode="ecmp2", flows=(ValidationFlow(1, 2),)
        )
    with pytest.raises(ConfigurationError):
        ValidationScenario(name="bad", mode="inrp", flows=())


def test_mode_maps_to_chunk_protocol():
    inrp = scenario_by_name("fig3-steady-inrp")
    sp = scenario_by_name("fig3-steady-sp")
    assert inrp.chunk_mode == "inrpp"
    assert sp.chunk_mode == "aimd"


# ----------------------------------------------------------------------
# Custody predicate
# ----------------------------------------------------------------------
def test_predict_custody_sender_side_deficit_is_not_custody():
    # The paper's two-flow example: flow 0 detours via node 3 but no
    # other flow touches the detour links -> no transit custody.
    splits = {
        0: [((1, 2, 4), 2e6), ((1, 2, 3, 4), 3e6)],
        1: [((1, 2, 5), 5e6)],
    }
    primaries = {0: (1, 2, 4), 1: (1, 2, 5)}
    assert not predict_custody(splits, primaries)


def test_predict_custody_detour_primary_collision():
    # Flow 2's primary path rides link (2, 3), which flow 0's detour
    # also needs -> chunks committed to the detour must take custody.
    splits = {
        0: [((1, 2, 4), 2e6), ((1, 2, 3, 4), 0.5e6)],
        1: [((1, 2, 5), 5e6)],
        2: [((1, 2, 3), 2.5e6)],
    }
    primaries = {0: (1, 2, 4), 1: (1, 2, 5), 2: (1, 2, 3)}
    assert predict_custody(splits, primaries)


def test_predict_custody_ignores_zero_rate_splits():
    splits = {
        0: [((1, 2, 4), 2e6), ((1, 2, 3, 4), 0.0)],
        2: [((1, 2, 3), 2.5e6)],
    }
    primaries = {0: (1, 2, 4), 2: (1, 2, 3)}
    assert not predict_custody(splits, primaries)


# ----------------------------------------------------------------------
# Check kinds
# ----------------------------------------------------------------------
def test_checker_rel_and_abs_edges():
    checker = _Checker({"rate_rel": 0.25, "jain_abs": 0.05})
    checker.rel("in", 1.2, 1.0, "rate_rel")
    checker.rel("out", 1.3, 1.0, "rate_rel")
    checker.abs("in", 0.96, 1.0, "jain_abs")
    checker.abs("out", 0.90, 1.0, "jain_abs")
    assert [check.passed for check in checker.checks] == [
        True,
        False,
        True,
        False,
    ]


def test_checker_bound_and_window():
    checker = _Checker({"custody_slack": 1.0})
    checker.bound("under", 290_000.0, 995_000.0, "custody_slack")
    checker.bound("over", 1_000_001.0, 995_000.0, "custody_slack")
    checker.window("inside", 0.315, 0.02, 0.42)
    checker.window("missing", None, 0.02, 0.42)
    checker.window("too-early", 0.02, 0.02, 0.42)
    assert [check.passed for check in checker.checks] == [
        True,
        False,
        True,
        False,
        False,
    ]


def test_checker_boolean_disagreement_fails():
    checker = _Checker({})
    checker.boolean("agree", True, True)
    checker.boolean("disagree", True, False)
    assert checker.checks[0].passed
    assert not checker.checks[1].passed


# ----------------------------------------------------------------------
# Report shape
# ----------------------------------------------------------------------
def _toy_report(passed: bool) -> ValidationReport:
    return ValidationReport(
        scenario="toy",
        mode="inrp",
        kind="steady",
        engine="modern",
        checks=[
            MetricCheck("rate[0]", "rel", 4.9e6, 5e6, 0.25, True, "ok"),
            MetricCheck("jain", "abs", 0.99, 1.0, 0.05, passed, "edge"),
        ],
    )


def test_report_passed_and_failures():
    assert _toy_report(True).passed
    failing = _toy_report(False)
    assert not failing.passed
    assert [check.name for check in failing.failures] == ["jain"]


def test_report_as_dict_is_json_serialisable():
    payload = _toy_report(True).as_dict()
    round_tripped = json.loads(json.dumps(payload))
    assert round_tripped["scenario"] == "toy"
    assert round_tripped["passed"] is True
    assert len(round_tripped["checks"]) == 2


def test_report_render_marks_verdict_and_failures():
    text = _toy_report(False).render()
    assert "FAIL" in text.splitlines()[0]
    assert any("jain" in line and "FAIL" in line for line in text.splitlines())
    assert "PASS" in _toy_report(True).render().splitlines()[0]


def test_default_tolerances_cover_all_check_keys():
    assert set(DEFAULT_TOLERANCES) == {
        "rate_rel",
        "jain_abs",
        "stretch_abs",
        "fct_rel",
        "custody_slack",
    }
