"""Scenario registry behaviour."""

import pytest

from repro.campaign.scenario import (
    get_scenario,
    iter_scenarios,
    load_builtin_scenarios,
    register_scenario,
)
from repro.errors import ConfigurationError


def test_builtin_scenarios_registered():
    load_builtin_scenarios()
    names = {scenario.name for scenario in iter_scenarios()}
    assert {"table1", "fig3", "fig4", "snapshot-sweep"} <= names
    assert {
        "ablation-detour-depth",
        "ablation-custody",
        "ablation-anticipation",
        "ablation-gossip",
    } <= names


def test_tag_filter():
    paper = iter_scenarios(tags=["paper"])
    assert {s.name for s in paper} == {"table1", "fig3", "fig4"}


def test_unknown_scenario_raises():
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        get_scenario("does-not-exist")


def test_bind_rejects_unknown_param():
    scenario = get_scenario("table1")
    with pytest.raises(ConfigurationError, match="does not accept"):
        scenario.bind(bogus=1)


def test_bind_overlays_defaults():
    scenario = get_scenario("table1")
    bound = scenario.bind(seed=7)
    assert bound["seed"] == 7
    assert "isp" in bound  # default filled in


def test_register_requires_defaults():
    with pytest.raises(ConfigurationError, match="default"):

        @register_scenario("broken-test-scenario")
        def scenario_broken(seed):  # pragma: no cover - registration fails
            return {}


def test_scenario_result_must_be_mapping():
    @register_scenario("bad-return-test-scenario")
    def scenario_bad() -> list:
        return [1, 2, 3]

    with pytest.raises(ConfigurationError, match="mapping"):
        get_scenario("bad-return-test-scenario").run()


def test_table1_scenario_runs_single_isp():
    result = get_scenario("table1").run(isp="vsnl", seed=0)
    assert len(result["rows"]) == 1
    assert result["rows"][0]["isp"] == "vsnl"
    assert result["max_error"] < 0.5
