"""Result store: run keys, schema versioning, record round-trips."""

import json
import warnings

import pytest

from repro.campaign.store import SCHEMA_VERSION, ResultStore, run_key
from repro.errors import ConfigurationError


def test_run_key_depends_on_scenario_and_params():
    base = run_key("table1", {"seed": 0})
    assert base == run_key("table1", {"seed": 0})
    assert base != run_key("table1", {"seed": 1})
    assert base != run_key("fig4", {"seed": 0})


def test_run_key_ignores_param_order():
    assert run_key("x", {"a": 1, "b": 2}) == run_key("x", {"b": 2, "a": 1})


def test_run_key_rejects_unserialisable_params():
    with pytest.raises(ConfigurationError, match="JSON"):
        run_key("x", {"rng": object()})


def test_save_load_roundtrip(tmp_path):
    store = ResultStore(tmp_path)
    params = {"seed": 3}
    path = store.save("demo", params, {"value": 1.5})
    record = store.load("demo", params)
    assert path.exists()
    assert record["schema_version"] == SCHEMA_VERSION
    assert record["scenario"] == "demo"
    assert record["result"] == {"value": 1.5}
    assert store.load("demo", {"seed": 4}) is None


def test_stale_schema_treated_as_miss(tmp_path):
    store = ResultStore(tmp_path)
    params = {"seed": 0}
    path = store.save("demo", params, {"value": 1})
    record = json.loads(path.read_text())
    record["schema_version"] = SCHEMA_VERSION - 1
    path.write_text(json.dumps(record))
    assert store.load("demo", params) is None
    assert list(store.iter_records()) == []


def test_corrupt_record_treated_as_miss(tmp_path):
    store = ResultStore(tmp_path)
    params = {"seed": 0}
    path = store.save("demo", params, {"value": 1})
    path.write_text("{not json")
    assert store.load("demo", params) is None


def test_iter_records_filters_by_scenario(tmp_path):
    store = ResultStore(tmp_path)
    store.save("a", {"seed": 0}, {"v": 1})
    store.save("a", {"seed": 1}, {"v": 2})
    store.save("b", {"seed": 0}, {"v": 3})
    assert len(list(store.iter_records())) == 3
    assert len(list(store.iter_records("a"))) == 2
    assert [r["scenario"] for r in store.iter_records("b")] == ["b"]


def test_records_written_deterministically(tmp_path):
    first = ResultStore(tmp_path / "one")
    second = ResultStore(tmp_path / "two")
    payload = {"z": 1, "a": [1.5, 2.25], "nested": {"k": True}}
    path_one = first.save("demo", {"seed": 5}, payload)
    path_two = second.save("demo", {"seed": 5}, payload)
    assert path_one.read_bytes() == path_two.read_bytes()


def test_iter_records_warns_and_skips_corrupt_files(tmp_path):
    # A partially-written (truncated) record must not crash `campaign
    # report`: the damaged file is skipped with a warning naming it,
    # and every healthy record still comes through.
    store = ResultStore(tmp_path)
    store.save("demo", {"seed": 0}, {"value": 1})
    truncated = store.save("demo", {"seed": 1}, {"value": 2})
    truncated.write_text(truncated.read_text()[:20])
    with pytest.warns(RuntimeWarning, match=truncated.name):
        records = list(store.iter_records())
    assert [r["params"]["seed"] for r in records] == [0]


def test_iter_records_warns_on_non_object_json(tmp_path):
    # Valid JSON that is not a record object (e.g. a file truncated to
    # `null`) used to crash on `.get`; now it is skipped with a warning.
    store = ResultStore(tmp_path)
    store.save("demo", {"seed": 0}, {"value": 1})
    rogue = tmp_path / "demo" / "rogue.json"
    rogue.write_text("null\n")
    with pytest.warns(RuntimeWarning, match="rogue.json"):
        records = list(store.iter_records("demo"))
    assert len(records) == 1
    assert store.load("demo", {"seed": 0})["result"] == {"value": 1}


def test_load_treats_non_object_json_as_miss(tmp_path):
    store = ResultStore(tmp_path)
    params = {"seed": 0}
    path = store.save("demo", params, {"value": 1})
    path.write_text("[1, 2, 3]\n")
    assert store.load("demo", params) is None


def test_schema_mismatch_skipped_silently_not_warned(tmp_path):
    # A stale schema version is a cache miss, not damage: no warning.
    store = ResultStore(tmp_path)
    path = store.save("demo", {"seed": 0}, {"value": 1})
    record = json.loads(path.read_text())
    record["schema_version"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(record))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert list(store.iter_records()) == []


def test_campaign_report_survives_corrupt_store(tmp_path, capsys):
    # End to end: the CLI report over a store with one damaged file
    # still renders the healthy records and exits zero.
    from repro.cli import main

    store = ResultStore(tmp_path)
    store.save("demo", {"seed": 0}, {"value": 1})
    broken = store.save("demo", {"seed": 1}, {"value": 2})
    broken.write_text('{"schema_version": 1, "trunc')
    with pytest.warns(RuntimeWarning):
        code = main(["campaign", "report", "--results-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "1 stored record(s)" in out
