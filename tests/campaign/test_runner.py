"""Campaign planning, execution, caching and determinism."""

import pytest

from repro.campaign.runner import CampaignRunner, RunSpec, plan_runs
from repro.campaign.scenario import register_scenario
from repro.campaign.store import ResultStore
from repro.errors import ConfigurationError
from repro.rng import derive_seed

#: Incremented by the counting scenario; lets tests prove the cache
#: short-circuited a second run (workers=1 executes inline).
_CALLS = {"count": 0}


@register_scenario("counting-test-scenario", summary="test-only counter")
def scenario_counting(seed: int = 0) -> dict:
    _CALLS["count"] += 1
    return {"seed": seed, "value": seed * 2}


def test_plan_expands_grid_per_scenario():
    specs = plan_runs(["table1", "fig3"], {"seed": [0, 1]})
    # table1 accepts seed (2 points); fig3 does not (1 default point).
    by_scenario = {}
    for spec in specs:
        by_scenario.setdefault(spec.scenario, []).append(spec)
    assert len(by_scenario["table1"]) == 2
    assert len(by_scenario["fig3"]) == 1
    assert {spec.params["seed"] for spec in by_scenario["table1"]} == {0, 1}


def test_plan_rejects_axis_no_scenario_accepts():
    with pytest.raises(ConfigurationError, match="grid axis"):
        plan_runs(["table1"], {"bogus": [1, 2]})


def test_plan_base_seed_derives_per_scenario():
    specs = plan_runs(["table1", "fig4"], base_seed=7)
    seeds = {spec.scenario: spec.params["seed"] for spec in specs}
    assert seeds["table1"] == derive_seed(7, "table1")
    assert seeds["fig4"] == derive_seed(7, "fig4")
    assert seeds["table1"] != seeds["fig4"]


def test_plan_grid_seed_wins_over_base_seed():
    specs = plan_runs(["table1"], {"seed": [3]}, base_seed=7)
    assert [spec.params["seed"] for spec in specs] == [3]


def test_runner_requires_positive_workers():
    with pytest.raises(ConfigurationError):
        CampaignRunner(workers=0)


def test_cache_short_circuits_second_run(tmp_path):
    store = ResultStore(tmp_path)
    specs = plan_runs(["counting-test-scenario"], {"seed": [0, 1]})
    runner = CampaignRunner(store=store, workers=1)

    _CALLS["count"] = 0
    first = runner.run(specs)
    assert _CALLS["count"] == 2
    assert first.computed == 2 and first.cache_hits == 0

    second = runner.run(specs)
    assert _CALLS["count"] == 2  # cache hit: scenario never re-executed
    assert second.computed == 0 and second.cache_hits == 2
    assert [o.result for o in second.outcomes] == [
        o.result for o in first.outcomes
    ]

    forced = CampaignRunner(store=store, workers=1, force=True).run(specs)
    assert _CALLS["count"] == 4
    assert forced.computed == 2


def test_same_seed_produces_byte_identical_records(tmp_path):
    """Same scenario + seed -> byte-identical result JSON across runs."""
    spec = plan_runs(["table1"], {"seed": [0], "isp": ["vsnl"]})
    first_store = ResultStore(tmp_path / "first")
    second_store = ResultStore(tmp_path / "second")
    first = CampaignRunner(store=first_store).run(spec)
    second = CampaignRunner(store=second_store).run(spec)
    first_bytes = (tmp_path / "first" / "table1").glob("*.json")
    second_bytes = (tmp_path / "second" / "table1").glob("*.json")
    contents_first = sorted(p.read_bytes() for p in first_bytes)
    contents_second = sorted(p.read_bytes() for p in second_bytes)
    assert contents_first and contents_first == contents_second
    assert first.outcomes[0].run_key == second.outcomes[0].run_key


def test_parallel_workers_match_inline_results(tmp_path):
    specs = plan_runs(["table1"], {"seed": [0, 1], "isp": ["vsnl"]})
    inline = CampaignRunner(store=ResultStore(tmp_path / "inline")).run(specs)
    pooled = CampaignRunner(
        store=ResultStore(tmp_path / "pooled"), workers=2
    ).run(specs)
    assert [o.result for o in inline.outcomes] == [
        o.result for o in pooled.outcomes
    ]
    assert pooled.computed == 2


def test_outcomes_preserve_spec_order(tmp_path):
    store = ResultStore(tmp_path)
    specs = plan_runs(["counting-test-scenario"], {"seed": [5, 3, 4]})
    # Warm the cache for the middle spec only.
    CampaignRunner(store=store).run([specs[1]])
    report = CampaignRunner(store=store).run(specs)
    assert [o.spec.params["seed"] for o in report.outcomes] == [5, 3, 4]
    assert [o.cached for o in report.outcomes] == [False, True, False]


def test_runspec_describe_mentions_params():
    spec = RunSpec("table1", {"seed": 3})
    assert "table1" in spec.describe()
    assert "seed=3" in spec.describe()
