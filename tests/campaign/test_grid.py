"""Grid parsing and expansion."""

import pytest

from repro.campaign.grid import (
    expand_grid,
    parse_grid,
    parse_grid_axis,
    parse_grid_value,
)
from repro.errors import ConfigurationError


def test_value_parsing_types():
    assert parse_grid_value("3") == 3
    assert isinstance(parse_grid_value("3"), int)
    assert parse_grid_value("2.5") == 2.5
    assert parse_grid_value("true") is True
    assert parse_grid_value("False") is False
    assert parse_grid_value("none") is None
    assert parse_grid_value("telstra") == "telstra"


def test_axis_parsing():
    key, values = parse_grid_axis("seed=0,1,2")
    assert key == "seed"
    assert values == [0, 1, 2]


def test_axis_rejects_malformed():
    with pytest.raises(ConfigurationError):
        parse_grid_axis("seed")
    with pytest.raises(ConfigurationError):
        parse_grid_axis("=1,2")
    with pytest.raises(ConfigurationError):
        parse_grid_axis("seed=")


def test_repeated_axis_extends_and_rejects_duplicates():
    grid = parse_grid(["seed=0,1", "seed=2"])
    assert grid == {"seed": [0, 1, 2]}
    with pytest.raises(ConfigurationError):
        parse_grid(["seed=0,1", "seed=1"])


def test_expand_cartesian_product():
    grid = {"seed": [0, 1], "isp": ["telstra", "vsnl"]}
    points = expand_grid(grid)
    assert len(points) == 4
    assert {"seed": 0, "isp": "vsnl"} in points
    assert {"seed": 1, "isp": "telstra"} in points


def test_expand_empty_grid_is_single_default_point():
    assert expand_grid({}) == [{}]
