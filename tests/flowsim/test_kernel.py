"""Property tests for the vectorized CSR allocation kernel.

The kernel (`repro.flowsim.kernel`) must be a drop-in for the scratch
solvers: randomized add/remove churn — including tombstone-compaction
boundaries, tracker rebuilds, and empty / single-flow components —
must stay within 1e-9 of `max_min_allocation` / `inrp_allocation`
after every event.
"""

import math
import random

import pytest

from repro.flowsim import FlowLevelSimulator, make_strategy
from repro.flowsim.allocation import (
    IncrementalInrp,
    IncrementalMaxMin,
    max_min_allocation,
)
from repro.flowsim.kernel import IncidenceStore, LinkSpace
from repro.flowsim.multipath import inrp_allocation
from repro.routing.detour import DetourTable
from repro.routing.paths import cached_path_links
from repro.topology import mesh_topology
from repro.units import mbps
from repro.workloads import FlowWorkload, uniform_pairs

TOL = 1e-9


def _relative_deviation(got, want):
    worst = 0.0
    assert got.keys() == want.keys()
    for flow, rate in want.items():
        worst = max(worst, abs(got[flow] - rate) / max(1.0, abs(rate)))
    return worst


def _churn_step(rng, live, next_id, topo, strategy, remove_probability=0.4):
    """One churn event: remove a random live flow or route a new one."""
    nodes = list(topo.nodes())
    if live and rng.random() < remove_probability:
        return ("remove", rng.choice(sorted(live)), None, None)
    source, destination = rng.sample(nodes, 2)
    path = tuple(strategy.route(next_id, source, destination))
    demand = rng.choice([math.inf, mbps(200.0), mbps(50.0), 0.0])
    return ("add", next_id, path, demand)


@pytest.mark.parametrize("seed", [0, 3])
def test_maxmin_kernel_matches_scratch_under_churn(seed):
    """Vectorized max-min stays within 1e-9 of the scratch solver
    across add/remove churn, with compaction forced often (tiny
    ``min_compact_nnz``) so the tombstone boundaries are crossed
    mid-sequence."""
    topo = mesh_topology(24, extra_links=24, seed=seed, capacity=mbps(10))
    strategy = make_strategy("sp", topo)
    alloc = IncrementalMaxMin(
        topo.directed_capacities(),
        kernel="vectorized",
        min_compact_nnz=8,
        compact_slack=0.2,
    )
    rng = random.Random(seed)
    flow_links, demands, live = {}, {}, set()
    next_id = 0
    for _ in range(140):
        action, flow, path, demand = _churn_step(rng, live, next_id, topo, strategy)
        if action == "remove":
            live.discard(flow)
            del flow_links[flow], demands[flow]
            alloc.remove_flow(flow)
        else:
            links = cached_path_links(path)
            flow_links[flow], demands[flow] = links, demand
            alloc.add_flow(flow, links, demand)
            live.add(flow)
            next_id += 1
        alloc.recompute()
        scratch = max_min_allocation(topo.directed_capacities(), flow_links, demands)
        assert _relative_deviation(alloc.rates, scratch) <= TOL
    alloc._store.check_consistency()
    assert alloc._store.compactions > 0, "churn never crossed a compaction"


@pytest.mark.parametrize("seed", [1, 4])
def test_inrp_kernel_matches_scratch_under_churn(seed):
    """Vectorized INRP (detour splicing included) stays within 1e-9 of
    scratch ``inrp_allocation`` across churn; the run must also cross
    tombstone compactions and at least one tracker rebuild."""
    topo = mesh_topology(16, extra_links=14, seed=seed, capacity=mbps(10))
    table = DetourTable(topo)
    strategy = make_strategy("inrp", topo)
    alloc = IncrementalInrp(
        topo.directed_capacities(),
        table,
        kernel="vectorized",
        min_compact_nnz=8,
        compact_slack=0.2,
    )
    alloc._tracker.slack = 0.05  # rebuild eagerly so churn crosses one
    rng = random.Random(seed)
    flow_paths, demands, live = {}, {}, set()
    next_id = 0
    for _ in range(110):
        action, flow, path, demand = _churn_step(rng, live, next_id, topo, strategy)
        if action == "remove":
            live.discard(flow)
            del flow_paths[flow], demands[flow]
            alloc.remove_flow(flow)
        else:
            flow_paths[flow], demands[flow] = path, demand
            alloc.add_flow(flow, path, demand)
            live.add(flow)
            next_id += 1
        alloc.recompute()
        scratch = inrp_allocation(
            topo.directed_capacities(), flow_paths, demands, table
        )
        assert _relative_deviation(alloc.rates, scratch.rates) <= TOL
    alloc._primary_store.check_consistency()
    assert alloc._primary_store.compactions > 0
    assert alloc._tracker.rebuilds > 0


@pytest.mark.parametrize("kernel_cls", ["sp", "inrp"])
def test_empty_and_single_flow_components(kernel_cls):
    """Degenerate shapes: no flows at all, a single flow, a zero-demand
    flow, and removal back down to empty."""
    topo = mesh_topology(8, extra_links=4, seed=0, capacity=mbps(10))
    if kernel_cls == "sp":
        alloc = IncrementalMaxMin(topo.directed_capacities(), kernel="vectorized")
    else:
        alloc = IncrementalInrp(
            topo.directed_capacities(), DetourTable(topo), kernel="vectorized"
        )
    alloc.recompute()
    assert alloc.rates == {}

    strategy = make_strategy(kernel_cls, topo)
    nodes = list(topo.nodes())
    path = tuple(strategy.route(0, nodes[0], nodes[-1]))
    if kernel_cls == "sp":
        alloc.add_flow(0, cached_path_links(path), math.inf)
        expected = max_min_allocation(
            topo.directed_capacities(), {0: cached_path_links(path)}, {0: math.inf}
        )[0]
    else:
        alloc.add_flow(0, path, math.inf)
        # A lone INRP flow detours past its saturated primary path and
        # pools extra capacity, so compare against the scratch solver.
        expected = inrp_allocation(
            topo.directed_capacities(), {0: path}, {0: math.inf}, DetourTable(topo)
        ).rates[0]
    alloc.recompute()
    assert alloc.rates[0] == pytest.approx(expected, rel=1e-9)
    assert expected >= mbps(10) * (1 - 1e-9)

    # A second, zero-demand flow rides along at rate 0.
    other = tuple(strategy.route(1, nodes[1], nodes[-2]))
    if kernel_cls == "sp":
        alloc.add_flow(1, cached_path_links(other), 0.0)
    else:
        alloc.add_flow(1, other, 0.0)
    alloc.recompute()
    assert alloc.rates[1] == 0.0

    alloc.remove_flow(0)
    alloc.remove_flow(1)
    alloc.recompute()
    assert alloc.rates == {}


def test_incidence_store_compaction_preserves_rows():
    """Direct store-level check: tombstoned rows vanish, live rows keep
    their columns and demands across a forced compaction."""
    space = LinkSpace({("a", "b"): 1.0, ("b", "c"): 2.0, ("c", "d"): 3.0})
    ab, bc, cd = (
        space.index[("a", "b")],
        space.index[("b", "c")],
        space.index[("c", "d")],
    )
    store = IncidenceStore(space, compact_slack=0.2, min_compact_nnz=2)
    store.add(0, [ab, bc], 5.0)
    store.add(1, [bc, cd], 7.0)
    store.add(2, [ab], 9.0)
    store.remove(0)
    store.remove(1)
    store.add(3, [cd], 11.0)  # triggers compaction over tombstones
    store.check_consistency()
    assert store.compactions >= 1
    assert sorted(store.live_flows()) == [2, 3]
    cols, lengths, demands = store.gather([2, 3])
    assert list(lengths) == [1, 1]
    assert list(demands) == [9.0, 11.0]
    assert list(cols) == [space.index[("a", "b")], space.index[("c", "d")]]


def test_inrp_cross_core_overload_equivalence():
    """Reference vs vectorized INRP records at deep overload (spanning
    components, heavy detour churn).  ``total_switches`` is excluded:
    both incremental cores re-fill only dirty components and so do not
    re-count the switches of untouched components."""
    topo = mesh_topology(14, extra_links=12, seed=2, capacity=mbps(10))
    workload = FlowWorkload(
        topo,
        arrival_rate=600.0,
        mean_size_bits=4e6,
        demand_bps=mbps(10),
        seed=2,
        pair_sampler=uniform_pairs(topo, seed=3),
    )
    specs = workload.generate(max_flows=70)
    runs = {}
    for core in ("reference", "vectorized"):
        strategy = make_strategy("inrp", topo)
        runs[core] = FlowLevelSimulator(topo, strategy, specs, core=core).run()
    ref, vec = runs["reference"], runs["vectorized"]
    assert len(ref.records) == len(vec.records)
    for a, b in zip(ref.records, vec.records):
        assert a.flow_id == b.flow_id
        assert a.completed == b.completed
        if a.completed:
            assert b.fct == pytest.approx(a.fct, rel=1e-6, abs=1e-9)
        assert b.delivered_bits == pytest.approx(
            a.delivered_bits, rel=1e-6, abs=1e-3
        )
    assert vec.unfinished == ref.unfinished
    assert vec.network_throughput == pytest.approx(
        ref.network_throughput, rel=1e-6
    )


def test_inrp_cross_core_calibrated_point_equivalence():
    """Reference vs vectorized INRP records at the Fig. 4 calibrated
    operating point (seed 42, 10 Mbps demands, locality-weighted pairs
    with ``max_hops=5``, ``detour_depth=2`` — the knobs of
    ``run_snapshot_cell``).  The overload test above exercises the
    saturated regime; this one pins the moderate-load regime, where
    every flow completes but detour switching is still active."""
    from repro.rng import derive_seed
    from repro.workloads.traffic import local_pairs

    topo = mesh_topology(14, extra_links=12, seed=42, capacity=mbps(10))
    workload = FlowWorkload(
        topo,
        arrival_rate=40.0,
        mean_size_bits=4e6,
        demand_bps=mbps(10),
        seed=42,
        pair_sampler=local_pairs(topo, derive_seed(42, "local"), max_hops=5),
    )
    specs = workload.generate(max_flows=60)
    runs = {}
    for core in ("reference", "vectorized"):
        strategy = make_strategy("inrp", topo, detour_depth=2)
        runs[core] = FlowLevelSimulator(topo, strategy, specs, core=core).run()
    ref, vec = runs["reference"], runs["vectorized"]
    # Regime guard: this must stay the moderate-load complement of the
    # overload test — everything finishes, nothing is starved.
    assert all(record.completed for record in ref.records)
    assert ref.unfinished == 0
    assert len(ref.records) == len(vec.records)
    for a, b in zip(ref.records, vec.records):
        assert a.flow_id == b.flow_id
        assert a.completed == b.completed
        assert b.fct == pytest.approx(a.fct, rel=1e-6, abs=1e-9)
        assert b.delivered_bits == pytest.approx(
            a.delivered_bits, rel=1e-6, abs=1e-3
        )
        assert b.stretch == pytest.approx(a.stretch, rel=1e-6, abs=1e-9)
    assert vec.unfinished == ref.unfinished


@pytest.mark.parametrize("strategy_name", ["sp", "ecmp", "inrp"])
def test_vectorized_core_verified_inside_simulator(strategy_name):
    """``verify_allocator=True`` cross-checks every vectorized
    recompute against the scratch solver inside the simulator loop."""
    topo = mesh_topology(14, extra_links=10, seed=1, capacity=mbps(10))
    workload = FlowWorkload(
        topo,
        arrival_rate=120.0,
        mean_size_bits=2e6,
        demand_bps=mbps(10),
        seed=1,
        pair_sampler=uniform_pairs(topo, seed=2),
    )
    specs = workload.generate(max_flows=40)
    result = FlowLevelSimulator(
        topo,
        make_strategy(strategy_name, topo),
        specs,
        core="vectorized",
        verify_allocator=True,
    ).run()
    assert result.max_verify_deviation is not None
    assert result.max_verify_deviation <= TOL


def test_adaptive_policy_kwargs_reach_the_policy():
    """The simulator's adaptive-core knobs are configurable (satellite
    of the kernel PR): custom values must land on the policy object and
    invalid ones must be rejected."""
    from repro.errors import ConfigurationError

    topo = mesh_topology(8, extra_links=4, seed=0, capacity=mbps(10))
    strategy = make_strategy("sp", topo)
    sim = FlowLevelSimulator(
        topo,
        strategy,
        [],
        adaptive_threshold=0.75,
        adaptive_patience=5,
        adaptive_probe_every=8,
        adaptive_min_active=32,
    )
    assert sim.adaptive_threshold == 0.75
    assert sim.adaptive_patience == 5
    assert sim.adaptive_probe_every == 8
    assert sim.adaptive_min_active == 32
    sim.run()  # empty spec list still exercises policy construction
    with pytest.raises(ConfigurationError):
        FlowLevelSimulator(topo, strategy, [], adaptive_threshold=0.0)
    with pytest.raises(ConfigurationError):
        FlowLevelSimulator(topo, strategy, [], adaptive_patience=0)
