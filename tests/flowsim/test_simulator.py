"""Event-driven flow-level simulator tests."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.flowsim import FlowLevelSimulator, make_strategy
from repro.topology import Topology, fig3_topology, line_topology, mesh_topology
from repro.units import mbps
from repro.workloads import FlowSpec, FlowWorkload, local_pairs

CORES = ("incremental", "reference")


def _spec(flow_id, src, dst, t, size_bits, demand=mbps(10)):
    return FlowSpec(flow_id, src, dst, t, size_bits, demand)


def test_single_flow_completion_time_exact():
    topo = line_topology(3, capacity=mbps(10))
    strategy = make_strategy("sp", topo)
    # 10 Mbit at 10 Mbps -> exactly 1 second.
    sim = FlowLevelSimulator(topo, strategy, [_spec(1, 0, 2, 0.0, 10e6)])
    result = sim.run()
    record = result.records[0]
    assert record.completed
    assert record.fct == pytest.approx(1.0)
    assert record.delivered_bits == pytest.approx(10e6)
    assert record.stretch == pytest.approx(1.0)


def test_two_flows_share_then_speed_up():
    # Two equal flows sharing a 10 Mbps link: each runs at 5 Mbps until
    # the first finishes, after which the survivor gets the full rate.
    topo = line_topology(2, capacity=mbps(10))
    specs = [
        _spec(1, 0, 1, 0.0, 5e6),
        _spec(2, 0, 1, 0.0, 10e6),
    ]
    strategy = make_strategy("sp", topo)
    result = FlowLevelSimulator(topo, strategy, specs).run()
    fct = {record.flow_id: record.fct for record in result.records}
    # Flow 1: 5 Mbit at 5 Mbps = 1 s.  Flow 2: 5 Mbit at 5 Mbps, then
    # 5 Mbit at 10 Mbps = 1.5 s total.
    assert fct[1] == pytest.approx(1.0)
    assert fct[2] == pytest.approx(1.5)


def test_staggered_arrival():
    topo = line_topology(2, capacity=mbps(10))
    specs = [
        _spec(1, 0, 1, 0.0, 10e6),
        _spec(2, 0, 1, 2.0, 10e6),  # arrives after flow 1 finished
    ]
    strategy = make_strategy("sp", topo)
    result = FlowLevelSimulator(topo, strategy, specs).run()
    fct = {record.flow_id: record.fct for record in result.records}
    assert fct[1] == pytest.approx(1.0)
    assert fct[2] == pytest.approx(1.0)


@pytest.mark.parametrize("core", CORES)
def test_horizon_reports_unfinished(core):
    topo = line_topology(2, capacity=mbps(1))
    specs = [_spec(1, 0, 1, 0.0, 100e6)]  # would need 100 s
    strategy = make_strategy("sp", topo)
    result = FlowLevelSimulator(topo, strategy, specs, horizon=1.0, core=core).run()
    assert result.unfinished == 1
    record = result.records[0]
    assert not record.completed
    assert record.delivered_bits == pytest.approx(1e6, rel=0.01)


@pytest.mark.parametrize("core", CORES)
def test_completion_exactly_at_horizon_counts_completed(core):
    # 10 Mbit at 10 Mbps completes at t == 1.0 == horizon: the flow
    # must be finalized as completed, not reported unfinished.
    topo = line_topology(2, capacity=mbps(10))
    specs = [_spec(1, 0, 1, 0.0, 10e6)]
    strategy = make_strategy("sp", topo)
    result = FlowLevelSimulator(topo, strategy, specs, horizon=1.0, core=core).run()
    assert result.unfinished == 0
    record = result.records[0]
    assert record.completed
    assert record.fct == pytest.approx(1.0)
    assert record.delivered_bits == pytest.approx(10e6)


@pytest.mark.parametrize("core", CORES)
def test_horizon_splits_completed_from_unfinished(core):
    # Two flows share 10 Mbps: both run at 5 Mbps.  Flow 1 (5 Mbit)
    # completes exactly at the 1.0 s horizon; flow 2 does not.
    topo = line_topology(2, capacity=mbps(10))
    specs = [_spec(1, 0, 1, 0.0, 5e6), _spec(2, 0, 1, 0.0, 50e6)]
    strategy = make_strategy("sp", topo)
    result = FlowLevelSimulator(topo, strategy, specs, horizon=1.0, core=core).run()
    by_id = {record.flow_id: record for record in result.records}
    assert by_id[1].completed and by_id[1].fct == pytest.approx(1.0)
    assert not by_id[2].completed
    assert by_id[2].delivered_bits == pytest.approx(5e6, rel=1e-6)
    assert result.unfinished == 1


def test_throughput_ratio_bounded():
    topo = fig3_topology()
    specs = [
        _spec(1, 1, 4, 0.0, 4e6),
        _spec(2, 1, 5, 0.0, 16e6),
    ]
    strategy = make_strategy("sp", topo)
    result = FlowLevelSimulator(topo, strategy, specs).run()
    assert 0.0 < result.network_throughput <= 1.0
    assert result.allocations >= 1


def test_inrp_completes_faster_on_fig3():
    # The paper expects the throughput gain "to translate to faster
    # flow completion time by the same proportion".
    topo = fig3_topology()
    specs = [
        _spec(1, 1, 4, 0.0, 10e6),
        _spec(2, 1, 5, 0.0, 10e6),
    ]
    sp_result = FlowLevelSimulator(topo, make_strategy("sp", topo), specs).run()
    inrp_result = FlowLevelSimulator(topo, make_strategy("inrp", topo), specs).run()
    sp_fct = sp_result.records[0].fct
    inrp_fct = inrp_result.records[0].fct
    assert inrp_fct < sp_fct  # 10 Mbit at 5 Mbps vs 2 Mbps


def test_invalid_horizon():
    topo = line_topology(2)
    with pytest.raises(SimulationError):
        FlowLevelSimulator(topo, make_strategy("sp", topo), [], horizon=0.0)


def test_mean_fct_and_stretch_helpers():
    topo = fig3_topology()
    specs = [_spec(1, 1, 4, 0.0, 2e6), _spec(2, 1, 5, 0.0, 2e6)]
    result = FlowLevelSimulator(topo, make_strategy("inrp", topo), specs).run()
    assert result.mean_fct() is not None
    samples = result.stretch_samples()
    assert len(samples) == 2
    assert all(s >= 1.0 for s in samples)


def test_unknown_core_rejected():
    topo = line_topology(2)
    with pytest.raises(ConfigurationError):
        FlowLevelSimulator(topo, make_strategy("sp", topo), [], core="turbo")


def _workload_specs(topo, seed, num_flows, arrival_rate=120.0):
    workload = FlowWorkload(
        topo,
        arrival_rate=arrival_rate,
        mean_size_bits=2e6,
        demand_bps=mbps(10),
        seed=seed,
        pair_sampler=local_pairs(topo, seed=seed + 1, max_hops=4),
    )
    return workload.generate(max_flows=num_flows)


def _assert_equivalent(ref, inc):
    assert len(ref.records) == len(inc.records)
    for a, b in zip(ref.records, inc.records):
        assert a.flow_id == b.flow_id
        assert a.completed == b.completed
        if a.completed:
            assert b.fct == pytest.approx(a.fct, rel=1e-6, abs=1e-9)
        assert b.delivered_bits == pytest.approx(a.delivered_bits, rel=1e-6, abs=1e-3)
        assert b.stretch == pytest.approx(a.stretch, rel=1e-6)
    assert inc.unfinished == ref.unfinished
    assert inc.network_throughput == pytest.approx(
        ref.network_throughput, rel=1e-6
    )
    assert inc.duration == pytest.approx(ref.duration, rel=1e-6)
    # Switch counts are a per-recompute diagnostic, not a flow metric:
    # the reference core re-performs every component's switches at each
    # full fill, while the incremental core only counts the dirty
    # component's.  With directed links the closure decomposition is
    # finer than the reference full fill, so the totals may differ even
    # though records, rates and aggregates agree exactly.
    if ref.total_switches == 0:
        assert inc.total_switches == 0
    else:
        assert inc.total_switches > 0


@pytest.mark.parametrize("strategy_name", ["sp", "ecmp", "inrp"])
@pytest.mark.parametrize("seed", [0, 7])
def test_cores_equivalent_on_random_workloads(strategy_name, seed):
    """The incremental core is a drop-in for the reference loop: same
    records, same aggregates, for every strategy."""
    topo = mesh_topology(24, extra_links=20, seed=seed, capacity=mbps(10))
    num_flows = 60 if strategy_name == "inrp" else 150
    specs = _workload_specs(topo, seed=seed, num_flows=num_flows)
    runs = {}
    for core in CORES:
        strategy = make_strategy(strategy_name, topo)
        runs[core] = FlowLevelSimulator(topo, strategy, specs, core=core).run()
    _assert_equivalent(runs["reference"], runs["incremental"])


@pytest.mark.parametrize("core", CORES)
def test_incremental_allocator_verified_inside_simulator(core):
    """verify_allocator re-checks every dirty-component recompute
    against from-scratch max-min; any divergence raises."""
    topo = mesh_topology(18, extra_links=14, seed=3, capacity=mbps(10))
    specs = _workload_specs(topo, seed=3, num_flows=80)
    strategy = make_strategy("sp", topo)
    sim = FlowLevelSimulator(
        topo, strategy, specs, core=core, verify_allocator=True
    )
    result = sim.run()
    assert result.unfinished == 0


def test_cores_equivalent_with_horizon():
    topo = mesh_topology(20, extra_links=16, seed=11, capacity=mbps(10))
    specs = _workload_specs(topo, seed=11, num_flows=120)
    runs = {}
    for core in CORES:
        strategy = make_strategy("sp", topo)
        runs[core] = FlowLevelSimulator(
            topo, strategy, specs, horizon=0.6, core=core
        ).run()
    _assert_equivalent(runs["reference"], runs["incremental"])


def test_stretch_samples_exclude_unfinished_by_default():
    """Regression: a flow truncated by the horizon (partial delivery)
    used to leak into the Fig. 4b stretch distribution; completed-only
    is the default, ``include_unfinished=True`` the escape hatch."""
    topo = line_topology(2)
    strategy = make_strategy("sp", topo)
    # Flow 1 (5 Mbit at >= 5 Mbps effective) completes within the 1.5 s
    # horizon; flow 2 (100 Mbit) is truncated with bits delivered.
    specs = [_spec(1, 0, 1, 0.0, 5e6), _spec(2, 0, 1, 0.0, 100e6)]
    result = FlowLevelSimulator(topo, strategy, specs, horizon=1.5).run()
    assert result.unfinished == 1
    truncated = [r for r in result.records if not r.completed]
    assert truncated and truncated[0].delivered_bits > 0
    assert len(result.stretch_samples()) == 1
    assert len(result.stretch_samples(include_unfinished=True)) == 2


def _spanning_component_specs(num_flows):
    # Every flow crosses the same single link: one component that spans
    # the whole active set, the adaptive core's worst case.
    return [
        _spec(fid, 0, 1, 0.001 * fid, 4e6) for fid in range(num_flows)
    ]


def test_adaptive_core_falls_back_on_spanning_component():
    """core="auto" must notice that every dirty component spans the
    active set (population above the policy's min_active) and switch
    to full refills; the plain incremental core never does."""
    topo = line_topology(2)
    specs = _spanning_component_specs(120)
    auto = FlowLevelSimulator(
        topo, make_strategy("sp", topo), specs, core="auto"
    ).run()
    assert auto.full_refills > 0
    incremental = FlowLevelSimulator(
        topo, make_strategy("sp", topo), specs, core="incremental"
    ).run()
    assert incremental.full_refills == 0
    reference = FlowLevelSimulator(
        topo, make_strategy("sp", topo), specs, core="reference"
    ).run()
    _assert_equivalent(reference, auto)
    _assert_equivalent(reference, incremental)


def _overload_specs(topo, seed, num_flows):
    """Deep overload: uniform endpoints, arrivals far above the drain
    rate, so the population snowballs into one spanning component."""
    from repro.workloads import uniform_pairs

    workload = FlowWorkload(
        topo,
        arrival_rate=600.0,
        mean_size_bits=4e6,
        demand_bps=mbps(10),
        seed=seed,
        pair_sampler=uniform_pairs(topo, seed=seed + 1),
    )
    return workload.generate(max_flows=num_flows)


@pytest.mark.parametrize("seed", [0, 5])
def test_inrp_cores_equivalent_at_overload(seed):
    """All three cores produce the same records for INRP in the
    deep-overload regime (spanning components, adaptive fallback
    engaged).  ``total_switches`` is excluded: the incremental core
    re-fills only dirty components, so it does not re-count the
    switches of untouched components the way a full re-fill does."""
    topo = mesh_topology(14, extra_links=12, seed=seed, capacity=mbps(10))
    specs = _overload_specs(topo, seed=seed, num_flows=70)
    runs = {}
    for core in ("reference", "incremental", "auto"):
        strategy = make_strategy("inrp", topo)
        runs[core] = FlowLevelSimulator(topo, strategy, specs, core=core).run()
    for core in ("incremental", "auto"):
        ref, other = runs["reference"], runs[core]
        assert len(ref.records) == len(other.records)
        for a, b in zip(ref.records, other.records):
            assert a.flow_id == b.flow_id
            assert a.completed == b.completed
            if a.completed:
                assert b.fct == pytest.approx(a.fct, rel=1e-6, abs=1e-9)
            assert b.delivered_bits == pytest.approx(
                a.delivered_bits, rel=1e-6, abs=1e-3
            )
        assert other.unfinished == ref.unfinished
        assert other.network_throughput == pytest.approx(
            ref.network_throughput, rel=1e-6
        )


def test_inrp_incremental_verified_inside_simulator():
    """verify_allocator cross-checks every incremental INRP recompute
    against from-scratch inrp_allocation and reports the worst
    deviation on the result."""
    topo = mesh_topology(14, extra_links=12, seed=2, capacity=mbps(10))
    specs = _workload_specs(topo, seed=2, num_flows=50)
    result = FlowLevelSimulator(
        topo,
        make_strategy("inrp", topo),
        specs,
        core="incremental",
        verify_allocator=True,
    ).run()
    assert result.max_verify_deviation is not None
    assert result.max_verify_deviation <= 1e-9


def test_auto_core_selects_vectorized_kernel():
    """core="auto" rides the vectorized CSR kernel — per the committed
    bench trajectory it is at least as fast as the scalar solvers at
    every calibrated point — while "incremental" stays scalar and the
    reference core reports no kernel at all."""
    topo = mesh_topology(14, extra_links=12, seed=2, capacity=mbps(10))
    specs = _workload_specs(topo, seed=2, num_flows=40)
    expected = {
        "auto": "vectorized",
        "vectorized": "vectorized",
        "incremental": "scalar",
        "reference": None,
    }
    for core, kernel in expected.items():
        sim = FlowLevelSimulator(topo, make_strategy("sp", topo), specs, core=core)
        result = sim.run()
        assert sim.kernel_used == kernel, core
        assert result.kernel == kernel, core


def test_auto_core_still_adapts_with_vectorized_kernel():
    """The vectorized kernel does not disable the adaptive fallback:
    on a spanning component the auto core both runs vectorized and
    switches to full refills."""
    topo = line_topology(2)
    specs = _spanning_component_specs(120)
    sim = FlowLevelSimulator(topo, make_strategy("sp", topo), specs, core="auto")
    result = sim.run()
    assert sim.kernel_used == "vectorized"
    assert result.full_refills > 0
