"""Event-driven flow-level simulator tests."""

import pytest

from repro.errors import SimulationError
from repro.flowsim import FlowLevelSimulator, make_strategy
from repro.topology import Topology, fig3_topology, line_topology
from repro.units import mbps
from repro.workloads import FlowSpec


def _spec(flow_id, src, dst, t, size_bits, demand=mbps(10)):
    return FlowSpec(flow_id, src, dst, t, size_bits, demand)


def test_single_flow_completion_time_exact():
    topo = line_topology(3, capacity=mbps(10))
    strategy = make_strategy("sp", topo)
    # 10 Mbit at 10 Mbps -> exactly 1 second.
    sim = FlowLevelSimulator(topo, strategy, [_spec(1, 0, 2, 0.0, 10e6)])
    result = sim.run()
    record = result.records[0]
    assert record.completed
    assert record.fct == pytest.approx(1.0)
    assert record.delivered_bits == pytest.approx(10e6)
    assert record.stretch == pytest.approx(1.0)


def test_two_flows_share_then_speed_up():
    # Two equal flows sharing a 10 Mbps link: each runs at 5 Mbps until
    # the first finishes, after which the survivor gets the full rate.
    topo = line_topology(2, capacity=mbps(10))
    specs = [
        _spec(1, 0, 1, 0.0, 5e6),
        _spec(2, 0, 1, 0.0, 10e6),
    ]
    strategy = make_strategy("sp", topo)
    result = FlowLevelSimulator(topo, strategy, specs).run()
    fct = {record.flow_id: record.fct for record in result.records}
    # Flow 1: 5 Mbit at 5 Mbps = 1 s.  Flow 2: 5 Mbit at 5 Mbps, then
    # 5 Mbit at 10 Mbps = 1.5 s total.
    assert fct[1] == pytest.approx(1.0)
    assert fct[2] == pytest.approx(1.5)


def test_staggered_arrival():
    topo = line_topology(2, capacity=mbps(10))
    specs = [
        _spec(1, 0, 1, 0.0, 10e6),
        _spec(2, 0, 1, 2.0, 10e6),  # arrives after flow 1 finished
    ]
    strategy = make_strategy("sp", topo)
    result = FlowLevelSimulator(topo, strategy, specs).run()
    fct = {record.flow_id: record.fct for record in result.records}
    assert fct[1] == pytest.approx(1.0)
    assert fct[2] == pytest.approx(1.0)


def test_horizon_reports_unfinished():
    topo = line_topology(2, capacity=mbps(1))
    specs = [_spec(1, 0, 1, 0.0, 100e6)]  # would need 100 s
    strategy = make_strategy("sp", topo)
    result = FlowLevelSimulator(topo, strategy, specs, horizon=1.0).run()
    assert result.unfinished == 1
    record = result.records[0]
    assert not record.completed
    assert record.delivered_bits == pytest.approx(1e6, rel=0.01)


def test_throughput_ratio_bounded():
    topo = fig3_topology()
    specs = [
        _spec(1, 1, 4, 0.0, 4e6),
        _spec(2, 1, 5, 0.0, 16e6),
    ]
    strategy = make_strategy("sp", topo)
    result = FlowLevelSimulator(topo, strategy, specs).run()
    assert 0.0 < result.network_throughput <= 1.0
    assert result.allocations >= 1


def test_inrp_completes_faster_on_fig3():
    # The paper expects the throughput gain "to translate to faster
    # flow completion time by the same proportion".
    topo = fig3_topology()
    specs = [
        _spec(1, 1, 4, 0.0, 10e6),
        _spec(2, 1, 5, 0.0, 10e6),
    ]
    sp_result = FlowLevelSimulator(topo, make_strategy("sp", topo), specs).run()
    inrp_result = FlowLevelSimulator(topo, make_strategy("inrp", topo), specs).run()
    sp_fct = sp_result.records[0].fct
    inrp_fct = inrp_result.records[0].fct
    assert inrp_fct < sp_fct  # 10 Mbit at 5 Mbps vs 2 Mbps


def test_invalid_horizon():
    topo = line_topology(2)
    with pytest.raises(SimulationError):
        FlowLevelSimulator(topo, make_strategy("sp", topo), [], horizon=0.0)


def test_mean_fct_and_stretch_helpers():
    topo = fig3_topology()
    specs = [_spec(1, 1, 4, 0.0, 2e6), _spec(2, 1, 5, 0.0, 2e6)]
    result = FlowLevelSimulator(topo, make_strategy("inrp", topo), specs).run()
    assert result.mean_fct() is not None
    samples = result.stretch_samples()
    assert len(samples) == 2
    assert all(s >= 1.0 for s in samples)
