"""INRP fluid allocator tests (progressive filling with detours)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.flowsim import inrp_allocation
from repro.routing import DetourTable, shortest_path
from repro.routing.paths import path_links
from repro.topology import Topology, fig3_topology, mesh_topology
from repro.units import mbps
from repro.workloads import uniform_pairs


def _fig3_instance():
    topo = fig3_topology()
    flow_paths = {
        1: shortest_path(topo, 1, 4),
        2: shortest_path(topo, 1, 5),
    }
    demands = {1: mbps(10), 2: mbps(10)}
    return topo, flow_paths, demands


def test_fig3_global_fairness():
    # The paper's Fig. 3 right: both flows get 5 Mbps; the bottlenecked
    # flow carries 2 direct + 3 via the node-3 detour.
    topo, flow_paths, demands = _fig3_instance()
    table = DetourTable(topo, max_intermediate=1)
    result = inrp_allocation(topo.directed_capacities(), flow_paths, demands, table)
    assert result.rates[1] == pytest.approx(mbps(5))
    assert result.rates[2] == pytest.approx(mbps(5))
    split = dict((tuple(path), rate) for path, rate in result.splits[1])
    assert split[(1, 2, 4)] == pytest.approx(mbps(2))
    assert split[(1, 2, 3, 4)] == pytest.approx(mbps(3))
    assert result.switches == 1


def test_zero_replacements_degenerates_to_e2e():
    topo, flow_paths, demands = _fig3_instance()
    table = DetourTable(topo, max_intermediate=1)
    result = inrp_allocation(
        topo.directed_capacities(), flow_paths, demands, table, max_replacements=0
    )
    assert result.rates[1] == pytest.approx(mbps(2))
    assert result.rates[2] == pytest.approx(mbps(8))
    assert result.freeze_reasons[1] == "no-detour"


def test_stretch_metric():
    topo, flow_paths, demands = _fig3_instance()
    table = DetourTable(topo, max_intermediate=1)
    result = inrp_allocation(topo.directed_capacities(), flow_paths, demands, table)
    # Flow 1: 2 Mbps over 2 hops + 3 Mbps over 3 hops vs primary 2 hops.
    expected = (2 * 2 + 3 * 3) / (5 * 2)
    assert result.stretch(1) == pytest.approx(expected)
    assert result.stretch(2) == pytest.approx(1.0)


def test_satisfied_flows_report_demand_reason():
    topo = fig3_topology()
    table = DetourTable(topo, max_intermediate=1)
    result = inrp_allocation(
        topo.directed_capacities(),
        {1: shortest_path(topo, 1, 5)},
        {1: mbps(4)},
        table,
    )
    assert result.rates[1] == pytest.approx(mbps(4))
    assert result.freeze_reasons[1] == "demand"


def test_trivial_flow_source_equals_destination():
    topo = fig3_topology()
    table = DetourTable(topo, max_intermediate=1)
    result = inrp_allocation(
        topo.directed_capacities(), {1: (1,)}, {1: mbps(3)}, table
    )
    assert result.rates[1] == pytest.approx(mbps(3))


@settings(deadline=None, max_examples=20)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    num_flows=st.integers(min_value=1, max_value=15),
)
def test_no_link_overloaded_and_splits_consistent(seed, num_flows):
    """Properties: (1) the allocation never overloads any link,
    (2) each flow's split rates sum to its total, (3) no flow exceeds
    its demand, (4) the worst-off flow never does worse than under e2e
    max-min.  (Aggregate throughput is deliberately NOT asserted:
    detoured bits consume extra link capacity — the stretch of
    Fig. 4b — so under saturation INRP may trade a little aggregate
    for its global fairness.)"""
    topo = mesh_topology(12, extra_links=10, seed=seed, capacity=10.0)
    sampler = uniform_pairs(topo, seed=seed + 13)
    flow_paths = {}
    for flow_id in range(num_flows):
        src, dst = sampler()
        flow_paths[flow_id] = shortest_path(topo, src, dst)
    demands = {flow_id: 8.0 for flow_id in flow_paths}
    capacities = topo.directed_capacities()
    table = DetourTable(topo, max_intermediate=2)
    result = inrp_allocation(capacities, flow_paths, demands, table)

    load = {link: 0.0 for link in capacities}
    for flow_id, splits in result.splits.items():
        total = 0.0
        for path, rate in splits:
            total += rate
            for link in path_links(path):
                load[link] += rate
        assert total == pytest.approx(result.rates[flow_id], abs=1e-6)
        assert result.rates[flow_id] <= demands[flow_id] + 1e-6
    for link, used in load.items():
        assert used <= capacities[link] + 1e-5, f"link {link} overloaded"

    from repro.flowsim import max_min_allocation

    e2e = max_min_allocation(
        capacities,
        {fid: path_links(path) for fid, path in flow_paths.items()},
        demands,
    )
    # Local stability / global fairness: pooling never hurts the
    # most-starved flow.
    assert min(result.rates.values()) >= min(e2e.values()) - 1e-6


def _saturating_instance(flow_ids):
    """Many same-path flows over a bottleneck with a narrow detour, so
    the fill saturates and visits the affected flows for rerouting."""
    topo = Topology()
    topo.add_link("s", "m", capacity=mbps(200))
    topo.add_link("m", "d", capacity=mbps(10))
    topo.add_link("m", "x", capacity=mbps(5))
    topo.add_link("x", "d", capacity=mbps(5))
    table = DetourTable(topo, max_intermediate=1)
    flow_paths = {fid: ("s", "m", "d") for fid in flow_ids}
    demands = {fid: mbps(10) for fid in flow_ids}
    return inrp_allocation(topo.directed_capacities(), flow_paths, demands, table)


def test_saturation_visits_flows_in_arrival_order_not_id_order():
    """Regression: saturation-affected flows used to be visited in
    ``sorted(..., key=repr)`` order, so flow 10 rerouted before flow 2
    and outcomes silently depended on the flow-id type.  The contract
    is arrival (insertion) order of ``flow_paths``: identical ids in a
    different textual form — int vs str, crossing the 9 -> 10 boundary
    where lexicographic and numeric order disagree — must produce
    identical allocations position by position."""
    int_ids = list(range(4, 16))  # 4..15 crosses the 9 -> 10 boundary
    str_ids = [str(fid) for fid in int_ids]
    int_result = _saturating_instance(int_ids)
    str_result = _saturating_instance(str_ids)
    assert int_result.switches == str_result.switches
    assert int_result.switches > 0  # the ordering code path actually ran
    for int_id, str_id in zip(int_ids, str_ids):
        assert int_result.rates[int_id] == pytest.approx(
            str_result.rates[str_id], abs=1e-12
        )
        assert int_result.freeze_reasons[int_id] == str_result.freeze_reasons[str_id]
        int_splits = [(tuple(p), r) for p, r in int_result.splits[int_id]]
        str_splits = [(tuple(p), r) for p, r in str_result.splits[str_id]]
        assert int_splits == str_splits


def test_saturation_order_follows_insertion_not_numeric_value():
    """The same ids presented in a different arrival order give each
    *position* the same treatment: outcomes follow insertion order, not
    any ordering of the id values themselves."""
    forward = _saturating_instance([2, 10])
    backward = _saturating_instance([10, 2])
    assert forward.rates[2] == pytest.approx(backward.rates[10], abs=1e-12)
    assert forward.rates[10] == pytest.approx(backward.rates[2], abs=1e-12)


# ----------------------------------------------------------------------
# Partial pooling (pooling_fraction)
# ----------------------------------------------------------------------
def _single_detouring_flow(fraction):
    topo = fig3_topology()
    table = DetourTable(topo, max_intermediate=1)
    return inrp_allocation(
        topo.directed_capacities(),
        {0: (1, 2, 4)},
        {0: mbps(10)},
        table,
        pooling_fraction=fraction,
    )


@pytest.mark.parametrize("fraction", [0.0, 0.25, 0.5, 1.0])
def test_pooling_fraction_caps_detour_share(fraction):
    """Fig. 3, one flow: the 2 Mbps primary is always granted, and the
    3 Mbps node-3 detour contributes exactly its pooled share."""
    result = _single_detouring_flow(fraction)
    assert result.rates[0] == pytest.approx(mbps(2 + 3 * fraction))
    detour_rate = sum(
        rate for path, rate in result.splits[0] if len(path) > 3
    )
    assert detour_rate == pytest.approx(mbps(3 * fraction))


def test_pooling_fraction_default_is_full_pooling():
    full = _single_detouring_flow(1.0)
    topo = fig3_topology()
    table = DetourTable(topo, max_intermediate=1)
    default = inrp_allocation(
        topo.directed_capacities(), {0: (1, 2, 4)}, {0: mbps(10)}, table
    )
    assert default.rates == full.rates
    assert default.splits == full.splits


def test_pooling_fraction_reserve_protects_primary_traffic():
    """A primary flow on a link keeps the reserved share even when a
    detouring flow got there first."""
    topo = fig3_topology()
    table = DetourTable(topo, max_intermediate=1)
    caps = topo.directed_capacities()
    # Flow 0 detours over (2,3),(3,4); flow 1 arrives later with (2,3)
    # as primary.  With half pooling, flow 1 is guaranteed at least the
    # reserved half of the 3 Mbps link.
    result = inrp_allocation(
        caps,
        {0: (1, 2, 4), 1: (2, 3)},
        {0: mbps(10), 1: mbps(10)},
        table,
        pooling_fraction=0.5,
    )
    assert result.rates[1] >= mbps(1.5) - 1e-9


def test_pooling_fraction_validation():
    topo = fig3_topology()
    table = DetourTable(topo, max_intermediate=1)
    caps = topo.directed_capacities()
    for bad in (-0.1, 1.5):
        with pytest.raises(SimulationError):
            inrp_allocation(
                caps, {0: (1, 2, 4)}, {0: mbps(10)}, table,
                pooling_fraction=bad,
            )
