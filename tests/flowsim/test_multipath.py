"""INRP fluid allocator tests (progressive filling with detours)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flowsim import inrp_allocation
from repro.routing import DetourTable, shortest_path
from repro.routing.paths import path_links
from repro.topology import fig3_topology, mesh_topology
from repro.units import mbps
from repro.workloads import uniform_pairs


def _fig3_instance():
    topo = fig3_topology()
    flow_paths = {
        1: shortest_path(topo, 1, 4),
        2: shortest_path(topo, 1, 5),
    }
    demands = {1: mbps(10), 2: mbps(10)}
    return topo, flow_paths, demands


def test_fig3_global_fairness():
    # The paper's Fig. 3 right: both flows get 5 Mbps; the bottlenecked
    # flow carries 2 direct + 3 via the node-3 detour.
    topo, flow_paths, demands = _fig3_instance()
    table = DetourTable(topo, max_intermediate=1)
    result = inrp_allocation(topo.link_capacities(), flow_paths, demands, table)
    assert result.rates[1] == pytest.approx(mbps(5))
    assert result.rates[2] == pytest.approx(mbps(5))
    split = dict((tuple(path), rate) for path, rate in result.splits[1])
    assert split[(1, 2, 4)] == pytest.approx(mbps(2))
    assert split[(1, 2, 3, 4)] == pytest.approx(mbps(3))
    assert result.switches == 1


def test_zero_replacements_degenerates_to_e2e():
    topo, flow_paths, demands = _fig3_instance()
    table = DetourTable(topo, max_intermediate=1)
    result = inrp_allocation(
        topo.link_capacities(), flow_paths, demands, table, max_replacements=0
    )
    assert result.rates[1] == pytest.approx(mbps(2))
    assert result.rates[2] == pytest.approx(mbps(8))
    assert result.freeze_reasons[1] == "no-detour"


def test_stretch_metric():
    topo, flow_paths, demands = _fig3_instance()
    table = DetourTable(topo, max_intermediate=1)
    result = inrp_allocation(topo.link_capacities(), flow_paths, demands, table)
    # Flow 1: 2 Mbps over 2 hops + 3 Mbps over 3 hops vs primary 2 hops.
    expected = (2 * 2 + 3 * 3) / (5 * 2)
    assert result.stretch(1) == pytest.approx(expected)
    assert result.stretch(2) == pytest.approx(1.0)


def test_satisfied_flows_report_demand_reason():
    topo = fig3_topology()
    table = DetourTable(topo, max_intermediate=1)
    result = inrp_allocation(
        topo.link_capacities(),
        {1: shortest_path(topo, 1, 5)},
        {1: mbps(4)},
        table,
    )
    assert result.rates[1] == pytest.approx(mbps(4))
    assert result.freeze_reasons[1] == "demand"


def test_trivial_flow_source_equals_destination():
    topo = fig3_topology()
    table = DetourTable(topo, max_intermediate=1)
    result = inrp_allocation(
        topo.link_capacities(), {1: (1,)}, {1: mbps(3)}, table
    )
    assert result.rates[1] == pytest.approx(mbps(3))


@settings(deadline=None, max_examples=20)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    num_flows=st.integers(min_value=1, max_value=15),
)
def test_no_link_overloaded_and_splits_consistent(seed, num_flows):
    """Properties: (1) the allocation never overloads any link,
    (2) each flow's split rates sum to its total, (3) no flow exceeds
    its demand, (4) the worst-off flow never does worse than under e2e
    max-min.  (Aggregate throughput is deliberately NOT asserted:
    detoured bits consume extra link capacity — the stretch of
    Fig. 4b — so under saturation INRP may trade a little aggregate
    for its global fairness.)"""
    topo = mesh_topology(12, extra_links=10, seed=seed, capacity=10.0)
    sampler = uniform_pairs(topo, seed=seed + 13)
    flow_paths = {}
    for flow_id in range(num_flows):
        src, dst = sampler()
        flow_paths[flow_id] = shortest_path(topo, src, dst)
    demands = {flow_id: 8.0 for flow_id in flow_paths}
    capacities = topo.link_capacities()
    table = DetourTable(topo, max_intermediate=2)
    result = inrp_allocation(capacities, flow_paths, demands, table)

    load = {link: 0.0 for link in capacities}
    for flow_id, splits in result.splits.items():
        total = 0.0
        for path, rate in splits:
            total += rate
            for link in path_links(path):
                load[link] += rate
        assert total == pytest.approx(result.rates[flow_id], abs=1e-6)
        assert result.rates[flow_id] <= demands[flow_id] + 1e-6
    for link, used in load.items():
        assert used <= capacities[link] + 1e-5, f"link {link} overloaded"

    from repro.flowsim import max_min_allocation

    e2e = max_min_allocation(
        capacities,
        {fid: path_links(path) for fid, path in flow_paths.items()},
        demands,
    )
    # Local stability / global fairness: pooling never hurts the
    # most-starved flow.
    assert min(result.rates.values()) >= min(e2e.values()) - 1e-6
