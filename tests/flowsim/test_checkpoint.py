"""Simulator checkpoint/resume tests: determinism against the
uninterrupted run, pickle roundtrip, streaming-source fast-forward."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.flowsim import FlowLevelSimulator, SimulatorCheckpoint, make_strategy
from repro.topology import mesh_topology
from repro.units import mbps
from repro.workloads import FlowWorkload, uniform_pairs


def _setup(seed=7):
    topo = mesh_topology(14, extra_links=12, seed=2, capacity=mbps(10))
    workload = FlowWorkload(
        topo,
        arrival_rate=120.0,
        mean_size_bits=4e6,
        demand_bps=mbps(10),
        seed=seed,
        pair_sampler=uniform_pairs(topo, seed=3),
    )
    return topo, workload


def _assert_same_records(full, resumed):
    assert resumed.num_flows == full.num_flows
    assert resumed.completed_count == full.completed_count
    assert resumed.unfinished == full.unfinished
    for expected, actual in zip(full.records, resumed.records):
        assert expected.flow_id == actual.flow_id
        assert expected.completed == actual.completed
        assert actual.delivered_bits == pytest.approx(
            expected.delivered_bits, rel=1e-9, abs=1e-3
        )
        if expected.completed:
            assert actual.fct == pytest.approx(expected.fct, rel=1e-9, abs=1e-9)
    assert resumed.network_throughput == pytest.approx(
        full.network_throughput, rel=1e-9
    )


@pytest.mark.parametrize("strategy_name", ("sp", "inrp"))
def test_pause_resume_matches_uninterrupted(strategy_name):
    """Pausing mid-flight and resuming reproduces the uninterrupted
    run exactly — allocations are memoryless in the active set, so the
    checkpoint needs no allocator internals."""
    topo, workload = _setup()
    specs = workload.generate(horizon=3.0)
    full = FlowLevelSimulator(
        topo, make_strategy(strategy_name, topo), specs, horizon=10.0
    ).run()
    checkpoint = FlowLevelSimulator(
        topo, make_strategy(strategy_name, topo), specs, horizon=10.0
    ).run(pause_at=1.5)
    assert isinstance(checkpoint, SimulatorCheckpoint)
    assert checkpoint.time == 1.5
    assert checkpoint.active_flows  # paused mid-flight, not after drain
    resumed = FlowLevelSimulator(
        topo, make_strategy(strategy_name, topo), specs, horizon=10.0
    ).run(resume_from=checkpoint)
    _assert_same_records(full, resumed)


def test_checkpoint_pickle_roundtrip(tmp_path):
    topo, workload = _setup()
    specs = workload.generate(horizon=2.0)
    full = FlowLevelSimulator(topo, make_strategy("sp", topo), specs).run()
    checkpoint = FlowLevelSimulator(
        topo, make_strategy("sp", topo), specs
    ).run(pause_at=1.0)
    path = tmp_path / "sim.ckpt"
    checkpoint.save(path)
    restored = SimulatorCheckpoint.load(path)
    assert restored.specs_consumed == checkpoint.specs_consumed
    resumed = FlowLevelSimulator(
        topo, make_strategy("sp", topo), specs
    ).run(resume_from=restored)
    _assert_same_records(full, resumed)


def test_checkpoint_is_reusable():
    # Resuming twice from one checkpoint gives identical results: the
    # resume deep-copies, so the first resume cannot corrupt the second.
    topo, workload = _setup()
    specs = workload.generate(horizon=2.0)
    checkpoint = FlowLevelSimulator(
        topo, make_strategy("sp", topo), specs
    ).run(pause_at=1.0)
    first = FlowLevelSimulator(
        topo, make_strategy("sp", topo), specs
    ).run(resume_from=checkpoint)
    second = FlowLevelSimulator(
        topo, make_strategy("sp", topo), specs
    ).run(resume_from=checkpoint)
    _assert_same_records(first, second)


def test_streaming_source_pause_and_fast_forward():
    """A streaming-spec simulator pauses and resumes in-place (the
    partially-consumed iterator is retained), and a *fresh* iterator
    resumes by fast-forwarding the checkpoint cursor."""
    topo, workload = _setup()
    specs = workload.generate(horizon=3.0)
    baseline = FlowLevelSimulator(
        topo, make_strategy("sp", topo), specs, horizon=10.0, sink="streaming"
    ).run()

    def fresh_iter():
        _, clone = _setup()
        return clone.iter_specs(horizon=3.0)

    sim = FlowLevelSimulator(
        topo, make_strategy("sp", topo), fresh_iter(), horizon=10.0,
        sink="streaming",
    )
    checkpoint = sim.run(pause_at=1.5)
    same_sim = sim.run(resume_from=checkpoint)
    assert same_sim.num_flows == baseline.num_flows
    assert same_sim.completed_count == baseline.completed_count

    fast_forwarded = FlowLevelSimulator(
        topo, make_strategy("sp", topo), fresh_iter(), horizon=10.0,
        sink="streaming",
    ).run(resume_from=checkpoint)
    assert fast_forwarded.num_flows == baseline.num_flows
    assert fast_forwarded.completed_count == baseline.completed_count
    assert fast_forwarded.network_throughput == pytest.approx(
        baseline.network_throughput, rel=1e-9
    )


def test_consumed_stream_cannot_rerun():
    topo, workload = _setup()
    sim = FlowLevelSimulator(
        topo, make_strategy("sp", topo), workload.iter_specs(horizon=1.0),
        sink="streaming",
    )
    sim.run()
    with pytest.raises(SimulationError, match="already consumed"):
        sim.run()


def test_pause_validation():
    topo, workload = _setup()
    specs = workload.generate(horizon=1.0)
    with pytest.raises(ConfigurationError, match="event core"):
        FlowLevelSimulator(
            topo, make_strategy("sp", topo), specs, core="reference"
        ).run(pause_at=0.5)
    with pytest.raises(SimulationError):
        FlowLevelSimulator(topo, make_strategy("sp", topo), specs).run(
            pause_at=-1.0
        )
    checkpoint = FlowLevelSimulator(
        topo, make_strategy("sp", topo), specs
    ).run(pause_at=0.5)
    with pytest.raises(SimulationError, match="not after"):
        FlowLevelSimulator(topo, make_strategy("sp", topo), specs).run(
            pause_at=0.25, resume_from=checkpoint
        )


def test_pause_past_end_returns_result():
    # A pause instant the run never reaches: the run just completes.
    topo, workload = _setup()
    specs = workload.generate(horizon=1.0)
    full = FlowLevelSimulator(topo, make_strategy("sp", topo), specs).run()
    result = FlowLevelSimulator(
        topo, make_strategy("sp", topo), specs
    ).run(pause_at=1e9)
    assert not isinstance(result, SimulatorCheckpoint)
    _assert_same_records(full, result)


def test_repeated_pause_resume_chain():
    # Three pause/resume legs stitched together equal one run.
    topo, workload = _setup()
    specs = workload.generate(horizon=2.0)
    full = FlowLevelSimulator(
        topo, make_strategy("inrp", topo), specs, horizon=6.0
    ).run()
    state = FlowLevelSimulator(
        topo, make_strategy("inrp", topo), specs, horizon=6.0
    ).run(pause_at=0.8)
    state = FlowLevelSimulator(
        topo, make_strategy("inrp", topo), specs, horizon=6.0
    ).run(pause_at=1.9, resume_from=state)
    final = FlowLevelSimulator(
        topo, make_strategy("inrp", topo), specs, horizon=6.0
    ).run(resume_from=state)
    _assert_same_records(full, final)
