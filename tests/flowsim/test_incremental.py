"""Incremental max-min allocator: equality with from-scratch filling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.flowsim import IncrementalMaxMin, max_min_allocation
from repro.routing import shortest_path
from repro.routing.paths import cached_path_links
from repro.topology import mesh_topology
from repro.units import mbps
from repro.workloads import uniform_pairs


def _assert_matches_scratch(allocator, capacities, flow_links, demands):
    scratch = max_min_allocation(capacities, flow_links, demands)
    rates = allocator.rates
    assert set(rates) == set(scratch)
    for flow, rate in scratch.items():
        assert rates[flow] == pytest.approx(rate, abs=1e-6, rel=1e-6)


def test_single_link_share_and_release():
    allocator = IncrementalMaxMin({"l": 9.0})
    for flow in (1, 2, 3):
        allocator.add_flow(flow, ["l"], 100.0)
    changed = allocator.recompute()
    assert changed[1] == pytest.approx(3.0)
    allocator.remove_flow(2)
    changed = allocator.recompute()
    assert changed[1] == pytest.approx(4.5)
    assert changed[3] == pytest.approx(4.5)


def test_untouched_component_is_not_recomputed():
    # Two disjoint links: churn on "b" must not report "a"'s flow.
    allocator = IncrementalMaxMin({"a": 10.0, "b": 10.0})
    allocator.add_flow("left", ["a"], 100.0)
    allocator.add_flow("right", ["b"], 100.0)
    allocator.recompute()
    allocator.add_flow("right2", ["b"], 100.0)
    changed = allocator.recompute()
    assert "left" not in changed
    assert changed["right"] == pytest.approx(5.0)
    assert changed["right2"] == pytest.approx(5.0)
    assert allocator.rates["left"] == pytest.approx(10.0)


def test_recompute_without_churn_is_empty():
    allocator = IncrementalMaxMin({"l": 1.0})
    allocator.add_flow(1, ["l"], 5.0)
    allocator.recompute()
    assert allocator.recompute() == {}


def test_linkless_flow_gets_full_demand():
    allocator = IncrementalMaxMin({"l": 1.0})
    allocator.add_flow(1, [], 42.0)
    assert allocator.recompute()[1] == 42.0


def test_validation_errors():
    allocator = IncrementalMaxMin({"l": 1.0})
    with pytest.raises(SimulationError):
        allocator.add_flow(1, ["nope"], 1.0)
    with pytest.raises(SimulationError):
        allocator.add_flow(1, ["l"], -1.0)
    allocator.add_flow(1, ["l"], 1.0)
    with pytest.raises(SimulationError):
        allocator.add_flow(1, ["l"], 1.0)
    with pytest.raises(SimulationError):
        allocator.remove_flow(2)


def test_membership_and_len():
    allocator = IncrementalMaxMin({"l": 1.0})
    assert 1 not in allocator and len(allocator) == 0
    allocator.add_flow(1, ["l"], 1.0)
    assert 1 in allocator and len(allocator) == 1


@settings(deadline=None, max_examples=20)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    churn=st.lists(
        st.integers(min_value=0, max_value=4), min_size=4, max_size=40
    ),
    demand=st.floats(min_value=0.5, max_value=30.0),
)
def test_incremental_matches_scratch_under_churn(seed, churn, demand):
    """Property: after any add/remove sequence, the incremental rates
    equal from-scratch progressive filling on the surviving flows."""
    topo = mesh_topology(15, extra_links=12, seed=seed, capacity=10.0)
    capacities = topo.directed_capacities()
    sampler = uniform_pairs(topo, seed=seed + 1)
    allocator = IncrementalMaxMin(capacities)
    flow_links = {}
    demands = {}
    next_id = 0
    for action in churn:
        if action == 0 and flow_links:
            # Remove the oldest surviving flow.
            victim = next(iter(flow_links))
            allocator.remove_flow(victim)
            del flow_links[victim]
            del demands[victim]
        else:
            src, dst = sampler()
            links = cached_path_links(shortest_path(topo, src, dst))
            allocator.add_flow(next_id, links, demand)
            flow_links[next_id] = links
            demands[next_id] = demand
            next_id += 1
        allocator.recompute()
        _assert_matches_scratch(allocator, capacities, flow_links, demands)


def test_verify_mode_accepts_correct_state():
    topo = mesh_topology(10, extra_links=8, seed=3, capacity=mbps(10))
    capacities = topo.directed_capacities()
    sampler = uniform_pairs(topo, seed=4)
    allocator = IncrementalMaxMin(capacities, verify=True)
    for flow_id in range(12):
        src, dst = sampler()
        allocator.add_flow(
            flow_id, cached_path_links(shortest_path(topo, src, dst)), mbps(5)
        )
        allocator.recompute()  # raises SimulationError on divergence
    for flow_id in range(0, 12, 2):
        allocator.remove_flow(flow_id)
        allocator.recompute()
