"""Result-sink layer tests: streaming aggregates vs materialized
records, records-optional accessors, empty-run degradation."""

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.flowsim import (
    FlowAggregates,
    FlowLevelSimulator,
    MaterializingSink,
    StreamingSink,
    make_strategy,
)
from repro.flowsim.metrics import completion_ratio, goodput_bps
from repro.flowsim.sinks import make_sink
from repro.topology import line_topology, mesh_topology
from repro.units import mbps
from repro.workloads import FlowSpec, FlowWorkload, local_pairs, uniform_pairs


def _mesh_workload(seed=7):
    topo = mesh_topology(14, extra_links=12, seed=2, capacity=mbps(10))
    workload = FlowWorkload(
        topo,
        arrival_rate=120.0,
        mean_size_bits=4e6,
        demand_bps=mbps(10),
        seed=seed,
        pair_sampler=uniform_pairs(topo, seed=3),
    )
    return topo, workload


def _sprint_workload():
    from repro.topology import build_isp_topology

    topo = build_isp_topology("sprint", seed=0)
    workload = FlowWorkload(
        topo,
        arrival_rate=800.0,
        mean_size_bits=2.5e6,
        demand_bps=mbps(10),
        seed=1,
        pair_sampler=local_pairs(topo, seed=2, max_hops=3),
    )
    return topo, workload


@pytest.mark.parametrize("strategy_name", ("sp", "inrp"))
def test_streaming_matches_materializing(strategy_name):
    """The equivalence contract of the streaming pipeline: exact
    counts/throughput/goodput/Jain, quantiles within the sketch's rank
    error translated through the local FCT distribution.  The horizon
    truncates the overloaded drain, so both sinks also see unfinished
    flows."""
    topo, workload = _mesh_workload()
    specs = workload.generate(horizon=3.0)
    materialized = FlowLevelSimulator(
        topo, make_strategy(strategy_name, topo), specs, horizon=12.0
    ).run()
    streamed = FlowLevelSimulator(
        topo, make_strategy(strategy_name, topo), specs, horizon=12.0,
        sink="streaming",
    ).run()
    assert streamed.unfinished > 0

    assert streamed.records is None and streamed.aggregates is not None
    assert materialized.records is not None and materialized.aggregates is None
    # Exact aggregates.
    assert streamed.num_flows == materialized.num_flows
    assert streamed.completed_count == materialized.completed_count
    assert streamed.unfinished == materialized.unfinished
    assert streamed.delivered_bits == pytest.approx(
        materialized.delivered_bits, rel=1e-12
    )
    assert streamed.goodput_bps() == pytest.approx(
        materialized.goodput_bps(), rel=1e-12
    )
    assert streamed.network_throughput == pytest.approx(
        materialized.network_throughput, rel=1e-12
    )
    assert streamed.mean_fct() == pytest.approx(materialized.mean_fct(), rel=1e-12)
    assert streamed.jain_goodput() == pytest.approx(
        materialized.jain_goodput(), rel=1e-9
    )
    assert streamed.completion_ratio() == pytest.approx(
        materialized.completion_ratio()
    )
    # Sketch quantiles: the answered value's rank is within epsilon of
    # the target, so it must fall between the exact quantiles at
    # q -/+ 2*epsilon (slack for the discrete record grid).
    epsilon = streamed.aggregates.fct_sketch.epsilon
    for q in (0.25, 0.5, 0.9, 0.99):
        lo = materialized.fct_quantile(max(q - 2 * epsilon, 0.0))
        hi = materialized.fct_quantile(min(q + 2 * epsilon, 1.0))
        assert lo <= streamed.fct_quantile(q) <= hi
    stretch = streamed.stretch_quantile(0.9)
    assert stretch is not None and stretch >= 1.0


def test_streaming_with_lazy_spec_iterator():
    """Full streaming pipeline: lazy specs in, aggregates out, same
    answers as the materialized list."""
    topo, workload = _mesh_workload()
    specs = workload.generate(horizon=3.0)
    baseline = FlowLevelSimulator(topo, make_strategy("sp", topo), specs).run()
    streamed = FlowLevelSimulator(
        topo,
        make_strategy("sp", topo),
        workload_clone_iter(horizon=3.0),
        sink="streaming",
    ).run()
    assert streamed.num_flows == baseline.num_flows
    assert streamed.completed_count == baseline.completed_count
    assert streamed.network_throughput == pytest.approx(
        baseline.network_throughput, rel=1e-12
    )


def workload_clone_iter(horizon):
    # A fresh identically-seeded workload yields the same spec stream.
    _, workload = _mesh_workload()
    return workload.iter_specs(horizon=horizon)


def test_streaming_on_calibrated_inrp_point():
    topo, workload = _sprint_workload()
    specs = workload.generate(max_flows=300)
    materialized = FlowLevelSimulator(topo, make_strategy("inrp", topo), specs).run()
    streamed = FlowLevelSimulator(
        topo, make_strategy("inrp", topo), specs, sink="streaming"
    ).run()
    assert streamed.completed_count == materialized.completed_count
    assert streamed.network_throughput == pytest.approx(
        materialized.network_throughput, rel=1e-12
    )
    assert streamed.mean_fct() == pytest.approx(materialized.mean_fct(), rel=1e-12)


def test_require_records_guides_to_materialize():
    topo, workload = _mesh_workload()
    result = FlowLevelSimulator(
        topo,
        make_strategy("sp", topo),
        workload.generate(horizon=2.0),
        sink="streaming",
    ).run()
    assert not result.has_records
    with pytest.raises(AnalysisError, match="materialize"):
        result.require_records()
    with pytest.raises(AnalysisError, match="materialize"):
        result.stretch_samples()


def test_make_sink_resolution():
    assert isinstance(make_sink(None), MaterializingSink)
    assert isinstance(make_sink("materialize"), MaterializingSink)
    assert isinstance(make_sink("streaming"), StreamingSink)
    custom = StreamingSink(epsilon=0.1)
    assert make_sink(custom) is custom
    with pytest.raises(ConfigurationError):
        make_sink("csv")
    with pytest.raises(ConfigurationError):
        FlowLevelSimulator(
            line_topology(2, capacity=mbps(10)),
            make_strategy("sp", line_topology(2, capacity=mbps(10))),
            [],
            sink="bogus",
        ).run()


def test_aggregates_merge_matches_single_pass():
    topo, workload = _mesh_workload()
    records = FlowLevelSimulator(
        topo, make_strategy("sp", topo), workload.generate(horizon=3.0)
    ).run().records
    whole = FlowAggregates()
    for record in records:
        whole.observe(record)
    half = len(records) // 2
    left, right = FlowAggregates(), FlowAggregates()
    for record in records[:half]:
        left.observe(record)
    for record in records[half:]:
        right.observe(record)
    left.merge(right)
    assert left.flows == whole.flows
    assert left.completed == whole.completed
    assert left.delivered_bits == pytest.approx(whole.delivered_bits)
    assert left.jain_goodput() == pytest.approx(whole.jain_goodput())
    assert left.mean_fct() == pytest.approx(whole.mean_fct())
    # Merged sketch still answers within the (doubled) rank error.
    assert left.fct_sketch.quantile(0.5) == pytest.approx(
        whole.fct_sketch.quantile(0.5), rel=0.1
    )


def test_empty_run_degrades_gracefully():
    topo = line_topology(2, capacity=mbps(10))
    for sink in ("materialize", "streaming"):
        result = FlowLevelSimulator(
            topo, make_strategy("sp", topo), [], sink=sink
        ).run()
        assert result.num_flows == 0
        assert result.completion_ratio() == 0.0
        assert result.goodput_bps() == 0.0
        assert result.mean_fct() is None
        assert result.fct_quantile(0.5) is None
        assert result.stretch_quantile(0.5) is None
        assert result.jain_goodput() == 1.0


def test_module_metrics_empty_run_consistency():
    # The free-function metrics degrade the same way as the accessors.
    assert completion_ratio([]) == 0.0
    assert goodput_bps([], 0.0) == 0.0
    with pytest.raises(AnalysisError):
        goodput_bps([], -1.0)


def test_materializing_result_unchanged_by_refactor():
    """The default sink reproduces the historical result shape: sorted
    records, one per spec, with aggregates unset."""
    topo = line_topology(3, capacity=mbps(10))
    specs = [
        FlowSpec(2, 0, 2, 0.5, 5e6, mbps(10)),
        FlowSpec(1, 0, 2, 0.0, 10e6, mbps(10)),
    ]
    result = FlowLevelSimulator(topo, make_strategy("sp", topo), specs).run()
    assert [record.flow_id for record in result.records] == [1, 2]
    assert result.aggregates is None
    assert all(record.completed for record in result.records)
