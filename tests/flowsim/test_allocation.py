"""Max-min progressive-filling allocator tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.flowsim import max_min_allocation
from repro.metrics import bottleneck_fairness_certificate
from repro.routing import shortest_path
from repro.routing.paths import path_links
from repro.topology import fig3_topology, mesh_topology
from repro.units import mbps
from repro.workloads import uniform_pairs


def test_equal_share_on_single_link():
    rates = max_min_allocation(
        {"l": 9.0},
        {1: ["l"], 2: ["l"], 3: ["l"]},
        {1: 100.0, 2: 100.0, 3: 100.0},
    )
    assert all(rate == pytest.approx(3.0) for rate in rates.values())


def test_demand_caps_release_capacity():
    rates = max_min_allocation(
        {"l": 10.0},
        {1: ["l"], 2: ["l"]},
        {1: 2.0, 2: 100.0},
    )
    assert rates[1] == pytest.approx(2.0)
    assert rates[2] == pytest.approx(8.0)


def test_fig3_e2e_arithmetic():
    # The paper's Fig. 3 left: (2, 8) on the shared 10 Mbps link.
    topo = fig3_topology()
    capacities = topo.directed_capacities()
    flow_links = {
        1: path_links(shortest_path(topo, 1, 4)),
        2: path_links(shortest_path(topo, 1, 5)),
    }
    demands = {1: mbps(10), 2: mbps(10)}
    rates = max_min_allocation(capacities, flow_links, demands)
    assert rates[1] == pytest.approx(mbps(2))
    assert rates[2] == pytest.approx(mbps(8))


def test_empty_path_gets_full_demand():
    rates = max_min_allocation({"l": 1.0}, {1: []}, {1: 42.0})
    assert rates[1] == 42.0


def test_zero_demand():
    rates = max_min_allocation({"l": 1.0}, {1: ["l"]}, {1: 0.0})
    assert rates[1] == 0.0


def test_unknown_link_rejected():
    with pytest.raises(SimulationError):
        max_min_allocation({"l": 1.0}, {1: ["nope"]}, {1: 1.0})


def test_missing_demand_rejected():
    with pytest.raises(SimulationError):
        max_min_allocation({"l": 1.0}, {1: ["l"]}, {})


@settings(deadline=None, max_examples=25)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_flows=st.integers(min_value=1, max_value=25),
    demand=st.floats(min_value=0.5, max_value=30.0),
)
def test_max_min_certificate_on_random_instances(seed, num_flows, demand):
    """Property: progressive filling always passes the bottleneck
    characterisation of max-min fairness."""
    topo = mesh_topology(15, extra_links=12, seed=seed, capacity=10.0)
    sampler = uniform_pairs(topo, seed=seed + 1)
    flow_links = {}
    demands = {}
    for flow_id in range(num_flows):
        src, dst = sampler()
        flow_links[flow_id] = path_links(shortest_path(topo, src, dst))
        demands[flow_id] = demand
    capacities = topo.directed_capacities()
    rates = max_min_allocation(capacities, flow_links, demands)
    assert bottleneck_fairness_certificate(
        rates, demands, flow_links, capacities, tolerance=1e-5
    )
