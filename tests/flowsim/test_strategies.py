"""Strategy object tests (SP / ECMP / INRP)."""

import pytest

from repro.errors import ConfigurationError
from repro.flowsim import make_strategy
from repro.topology import Topology, fig3_topology
from repro.units import mbps


def test_factory_names():
    topo = fig3_topology()
    assert make_strategy("sp", topo).name == "SP"
    assert make_strategy("ECMP", topo).name == "ECMP"
    assert make_strategy("inrp", topo).name == "INRP"
    assert make_strategy("urp", topo).name == "INRP"  # paper's legend label
    with pytest.raises(ConfigurationError):
        make_strategy("ospf", topo)


def test_sp_allocation_matches_paper():
    topo = fig3_topology()
    strategy = make_strategy("sp", topo)
    flows = {
        1: (strategy.route(1, 1, 4), mbps(10)),
        2: (strategy.route(2, 1, 5), mbps(10)),
    }
    outcome = strategy.allocate(flows)
    assert outcome.rates[1] == pytest.approx(mbps(2))
    assert outcome.rates[2] == pytest.approx(mbps(8))
    assert outcome.switches == 0


def test_inrp_allocation_matches_paper():
    topo = fig3_topology()
    strategy = make_strategy("inrp", topo)
    flows = {
        1: (strategy.route(1, 1, 4), mbps(10)),
        2: (strategy.route(2, 1, 5), mbps(10)),
    }
    outcome = strategy.allocate(flows)
    assert outcome.rates[1] == pytest.approx(mbps(5))
    assert outcome.rates[2] == pytest.approx(mbps(5))
    assert outcome.switches >= 1


def test_inrp_backpressured_flows_reported():
    # Line with a hard bottleneck and no detour: the flow freezes with
    # "no-detour", i.e. the fluid equivalent of back-pressure.
    topo = Topology.from_links([(0, 1), (1, 2)], capacity=mbps(2))
    topo.set_capacity(0, 1, mbps(10))
    strategy = make_strategy("inrp", topo)
    flows = {1: (strategy.route(1, 0, 2), mbps(10))}
    outcome = strategy.allocate(flows)
    assert outcome.rates[1] == pytest.approx(mbps(2))
    assert outcome.backpressured == [1]


def test_ecmp_spreads_flows_on_square():
    topo = Topology.from_links([(0, 1), (1, 2), (2, 3), (3, 0)])
    strategy = make_strategy("ecmp", topo)
    routes = {strategy.route(fid, 0, 2) for fid in range(40)}
    assert routes == {(0, 1, 2), (0, 3, 2)}


def test_sp_route_is_cached_and_deterministic():
    topo = fig3_topology()
    strategy = make_strategy("sp", topo)
    assert strategy.route(1, 1, 4) is strategy.route(2, 1, 4)


def test_inrp_depth_zero_equals_sp():
    topo = fig3_topology()
    sp = make_strategy("sp", topo)
    inrp0 = make_strategy("inrp", topo, detour_depth=0)
    flows = {
        1: (sp.route(1, 1, 4), mbps(10)),
        2: (sp.route(2, 1, 5), mbps(10)),
    }
    assert inrp0.allocate(flows).rates == pytest.approx(sp.allocate(flows).rates)


def test_inrp_rejects_negative_depth():
    with pytest.raises(ConfigurationError):
        make_strategy("inrp", fig3_topology(), detour_depth=-1)


def test_inrp_pooling_fraction_scales_allocation():
    topo = fig3_topology()
    flows = {1: ((1, 2, 4), mbps(10))}
    half = make_strategy("inrp", topo, pooling_fraction=0.5)
    full = make_strategy("inrp", topo)
    assert half.allocate(flows).rates[1] == pytest.approx(mbps(3.5))
    assert full.allocate(flows).rates[1] == pytest.approx(mbps(5.0))


def test_inrp_rejects_bad_pooling_fraction():
    for bad in (-0.1, 1.01):
        with pytest.raises(ConfigurationError):
            make_strategy("inrp", fig3_topology(), pooling_fraction=bad)


def test_partial_pooling_downgrades_vectorized_kernel():
    topo = fig3_topology()
    partial = make_strategy("inrp", topo, pooling_fraction=0.5)
    allocator = partial.incremental_allocator(kernel="vectorized")
    assert allocator._kernel == "scalar"
    full = make_strategy("inrp", topo)
    assert full.incremental_allocator(kernel="vectorized")._kernel == "vectorized"
