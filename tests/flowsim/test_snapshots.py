"""Snapshot experiment tests."""

import pytest

from repro.errors import ConfigurationError
from repro.flowsim import make_strategy, snapshot_experiment
from repro.topology import build_isp_topology, mesh_topology
from repro.units import mbps
from repro.workloads import local_pairs


@pytest.fixture(scope="module")
def small_topo():
    return mesh_topology(30, extra_links=25, seed=3)


def test_throughput_in_unit_interval(small_topo):
    strategy = make_strategy("sp", small_topo)
    result = snapshot_experiment(
        small_topo, strategy, num_flows=10, demand_bps=mbps(10), num_snapshots=3
    )
    assert len(result.throughputs) == 3
    assert all(0.0 < t <= 1.0 + 1e-9 for t in result.throughputs)
    assert result.mean_throughput > 0


def test_reproducible_with_seed(small_topo):
    def run():
        strategy = make_strategy("sp", small_topo)
        return snapshot_experiment(
            small_topo, strategy, num_flows=8, demand_bps=mbps(5),
            num_snapshots=2, seed=11,
        ).throughputs

    assert run() == run()


def test_inrp_collects_stretch_and_switches(small_topo):
    strategy = make_strategy("inrp", small_topo)
    result = snapshot_experiment(
        small_topo, strategy, num_flows=15, demand_bps=mbps(10),
        num_snapshots=3, seed=5,
        pair_sampler=local_pairs(small_topo, seed=5),
    )
    assert result.stretch_values
    assert len(result.stretch_values) == len(result.stretch_weights)
    cdf = result.stretch_cdf()
    assert cdf.min >= 1.0 - 1e-9
    assert result.switches >= 0


def test_validation(small_topo):
    strategy = make_strategy("sp", small_topo)
    with pytest.raises(ConfigurationError):
        snapshot_experiment(small_topo, strategy, num_flows=0, demand_bps=1.0)
    with pytest.raises(ConfigurationError):
        snapshot_experiment(
            small_topo, strategy, num_flows=1, demand_bps=1.0, num_snapshots=0
        )


def test_inrp_beats_sp_on_isp_map():
    # A small-scale version of Fig. 4a's headline comparison.
    topo = build_isp_topology("telstra", seed=0)
    sampler = local_pairs(topo, seed=9)
    outcomes = {}
    for name in ("sp", "inrp"):
        strategy = make_strategy(name, topo)
        outcomes[name] = snapshot_experiment(
            topo, strategy, num_flows=topo.num_nodes // 12,
            demand_bps=mbps(10), num_snapshots=3, seed=9,
            pair_sampler=sampler,
        ).mean_throughput
    assert outcomes["inrp"] > outcomes["sp"]
