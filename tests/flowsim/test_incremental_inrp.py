"""Incremental INRP allocator: detour-closure components vs scratch."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.flowsim import IncrementalInrp, detour_closure, inrp_allocation
from repro.routing import DetourTable, shortest_path
from repro.routing.paths import cached_path_links
from repro.topology import Topology, fig3_topology, mesh_topology
from repro.units import mbps
from repro.workloads import uniform_pairs


def _assert_matches_scratch(allocator, capacities, table, paths, demands):
    scratch = inrp_allocation(capacities, paths, demands, table)
    rates = allocator.rates
    assert set(rates) == set(scratch.rates)
    for flow, rate in scratch.rates.items():
        assert rates[flow] == pytest.approx(rate, abs=1e-9, rel=1e-9)


def test_fig3_rates_and_splits_match_scratch():
    topo = fig3_topology()
    table = DetourTable(topo, max_intermediate=1)
    allocator = IncrementalInrp(topo.directed_capacities(), table)
    allocator.add_flow(1, shortest_path(topo, 1, 4), mbps(10))
    allocator.add_flow(2, shortest_path(topo, 1, 5), mbps(10))
    rates, splits, switches = allocator.recompute()
    # The paper's Fig. 3 right: both flows get 5 Mbps, flow 1 carries
    # 2 Mbps direct + 3 Mbps via the node-3 detour.
    assert rates[1] == pytest.approx(mbps(5))
    assert rates[2] == pytest.approx(mbps(5))
    split = {tuple(path): rate for path, rate in splits[1]}
    assert split[(1, 2, 4)] == pytest.approx(mbps(2))
    assert split[(1, 2, 3, 4)] == pytest.approx(mbps(3))
    assert switches == 1


def _two_island_topology():
    """Two disconnected bottleneck links: a1-a2 and b1-b2."""
    topo = Topology()
    topo.add_link("a1", "a2", capacity=mbps(10))
    topo.add_link("b1", "b2", capacity=mbps(10))
    return topo


def test_untouched_closure_component_not_recomputed():
    topo = _two_island_topology()
    table = DetourTable(topo, max_intermediate=1)
    allocator = IncrementalInrp(topo.directed_capacities(), table)
    allocator.add_flow("left", ("a1", "a2"), mbps(10))
    allocator.add_flow("right", ("b1", "b2"), mbps(10))
    allocator.recompute()
    allocator.add_flow("right2", ("b1", "b2"), mbps(10))
    rates, splits, _ = allocator.recompute()
    assert "left" not in rates and "left" not in splits
    assert rates["right"] == pytest.approx(mbps(5))
    assert rates["right2"] == pytest.approx(mbps(5))
    assert allocator.rates["left"] == pytest.approx(mbps(10))


def test_full_refill_returns_whole_population():
    topo = _two_island_topology()
    table = DetourTable(topo, max_intermediate=1)
    allocator = IncrementalInrp(topo.directed_capacities(), table)
    allocator.add_flow("left", ("a1", "a2"), mbps(10))
    allocator.add_flow("right", ("b1", "b2"), mbps(10))
    allocator.recompute()
    allocator.add_flow("right2", ("b1", "b2"), mbps(10))
    rates, splits, _ = allocator.recompute(full=True)
    assert set(rates) == {"left", "right", "right2"}
    assert rates["left"] == pytest.approx(mbps(10))
    assert rates["right"] == pytest.approx(mbps(5))


def test_recompute_without_churn_is_empty():
    topo = fig3_topology()
    table = DetourTable(topo, max_intermediate=1)
    allocator = IncrementalInrp(topo.directed_capacities(), table)
    allocator.add_flow(1, shortest_path(topo, 1, 4), mbps(10))
    allocator.recompute()
    assert allocator.recompute() == ({}, {}, 0)


def test_linkless_flow_gets_full_demand():
    topo = fig3_topology()
    table = DetourTable(topo, max_intermediate=1)
    allocator = IncrementalInrp(topo.directed_capacities(), table)
    allocator.add_flow(1, (2,), mbps(7))
    rates, splits, switches = allocator.recompute()
    assert rates[1] == mbps(7)
    assert switches == 0


def test_validation_errors():
    topo = fig3_topology()
    table = DetourTable(topo, max_intermediate=1)
    allocator = IncrementalInrp(topo.directed_capacities(), table)
    with pytest.raises(SimulationError):
        allocator.add_flow(1, (1, 99), 1.0)
    with pytest.raises(SimulationError):
        allocator.add_flow(1, (1, 2), -1.0)
    allocator.add_flow(1, (1, 2), 1.0)
    with pytest.raises(SimulationError):
        allocator.add_flow(1, (1, 2), 1.0)
    with pytest.raises(SimulationError):
        allocator.remove_flow(2)
    assert 1 in allocator and len(allocator) == 1


def test_detour_closure_rounds():
    topo = fig3_topology()
    table = DetourTable(topo, max_intermediate=1)
    path = shortest_path(topo, 1, 4)
    primary = set(cached_path_links(tuple(path)))
    closure0 = detour_closure(path, table, 0)
    assert closure0 == frozenset(primary)
    closure1 = detour_closure(path, table, 1)
    closure2 = detour_closure(path, table, 2)
    # Fig. 3: the node-3 detour around (2, 4) joins at round 1.
    assert primary < closure1 <= closure2
    assert (2, 3) in closure1 and (3, 4) in closure1


@settings(deadline=None, max_examples=15)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    churn=st.lists(
        st.integers(min_value=0, max_value=4), min_size=4, max_size=30
    ),
    demand=st.floats(min_value=0.5, max_value=30.0),
)
def test_incremental_inrp_matches_scratch_under_churn(seed, churn, demand):
    """Property: after any arrival/departure sequence, the incremental
    rates equal from-scratch ``inrp_allocation`` on the survivors.
    ``verify=True`` additionally cross-checks inside every recompute."""
    topo = mesh_topology(12, extra_links=10, seed=seed, capacity=10.0)
    capacities = topo.directed_capacities()
    table = DetourTable(topo, max_intermediate=1)
    sampler = uniform_pairs(topo, seed=seed + 1)
    allocator = IncrementalInrp(capacities, table, verify=True)
    paths = {}
    demands = {}
    next_id = 0
    for action in churn:
        if action == 0 and paths:
            victim = next(iter(paths))
            allocator.remove_flow(victim)
            del paths[victim]
            del demands[victim]
        else:
            src, dst = sampler()
            path = tuple(shortest_path(topo, src, dst))
            allocator.add_flow(next_id, path, demand)
            paths[next_id] = path
            demands[next_id] = demand
            next_id += 1
        allocator.recompute()  # raises SimulationError on divergence
        _assert_matches_scratch(allocator, capacities, table, paths, demands)
    assert allocator.max_verify_deviation <= 1e-9
