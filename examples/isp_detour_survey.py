#!/usr/bin/env python3
"""Survey detour availability across the nine ISP maps (Table 1).

Rebuilds the paper's Table 1 on the calibrated synthetic maps and, as
a bonus, shows the custody sizing arithmetic from Section 3.3 (a 10 GB
store behind a 40 Gbps link buys 2 seconds of custody).

Run:  python examples/isp_detour_survey.py
"""

from repro import custody_duration
from repro.analysis import run_table1
from repro.units import gbps, gigabytes, mbps, parse_rate, parse_size


def main() -> None:
    result = run_table1(seed=0)
    print(result.render())
    print()
    print(f"max deviation from the paper: {result.max_error:.4f} percentage points")
    print()

    print("Custody sizing (paper Section 3.3 footnote):")
    for store, line in (("10GB", "40Gbps"), ("1GB", "10Gbps"), ("100MB", "1Gbps")):
        seconds = custody_duration(parse_size(store), parse_rate(line))
        print(f"  {store:>6} behind {line:>7} holds {seconds:.1f}s of line-rate traffic")


if __name__ == "__main__":
    main()
