#!/usr/bin/env python3
"""Drive a parameter sweep through the campaign orchestrator.

Sweeps strategy × detour depth on the VSNL map (the smallest ISP, so
this stays quick) through the ``snapshot-sweep`` scenario, with results
cached in a temporary store — run it twice and the second pass is all
cache hits.  This is the library-level equivalent of::

    python -m repro campaign run --scenarios snapshot-sweep \
        --grid strategy=sp,ecmp,inrp --grid detour_depth=0,2 --workers 2

Run:  PYTHONPATH=src python examples/campaign_sweep.py
"""

import tempfile

from repro.analysis.reporting import ascii_table
from repro.campaign import CampaignRunner, ResultStore, plan_runs


def main() -> None:
    grid = {
        "isp": ["vsnl"],
        "strategy": ["sp", "ecmp", "inrp"],
        "detour_depth": [0, 2],
        "num_snapshots": [4],
    }
    specs = plan_runs(["snapshot-sweep"], grid, base_seed=1)
    print(f"planned {len(specs)} runs (3 strategies x 2 depths)\n")

    with tempfile.TemporaryDirectory() as results_dir:
        runner = CampaignRunner(store=ResultStore(results_dir), workers=2)
        report = runner.run(specs)

        rows = []
        for outcome in report.outcomes:
            result = outcome.result
            rows.append(
                [
                    result["strategy"],
                    str(result["detour_depth"]),
                    f"{result['mean_throughput']:.3f}",
                    f"{result['std_throughput']:.3f}",
                    str(result["switches"]),
                ]
            )
        print(
            ascii_table(
                ["strategy", "detour depth", "throughput", "std", "switches"],
                rows,
                title="snapshot-sweep on VSNL (campaign-run)",
            )
        )
        print(f"\n{report.summary()}")

        # The cache makes repeat sweeps free: same grid, zero recompute.
        rerun = runner.run(specs)
        print(f"re-run: {rerun.summary()}")


if __name__ == "__main__":
    main()
