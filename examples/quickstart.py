#!/usr/bin/env python3
"""Quickstart: resource pooling on the paper's Fig. 3 example.

Builds the five-node topology of the paper's worked example, allocates
two competing flows under e2e flow control and under INRPP, and prints
the rates and Jain fairness of both — the (2, 8) vs (5, 5) contrast
that motivates the whole paper.

Run:  python examples/quickstart.py
"""

from repro import fig3_topology, jain_index, make_strategy
from repro.units import format_rate, mbps


def main() -> None:
    topo = fig3_topology()
    print(f"topology: {topo}")
    print("links:")
    for u, v in topo.links():
        print(f"  {u} -- {v}: {format_rate(topo.capacity(u, v))}")
    print()

    # Flow 1 crosses the 2 Mbps bottleneck (2-4); flow 2 has a clear
    # 10 Mbps path.  Both share the 10 Mbps access link (1-2).
    for name in ("sp", "inrp"):
        strategy = make_strategy(name, topo)
        flows = {
            1: (strategy.route(1, 1, 4), mbps(10)),
            2: (strategy.route(2, 1, 5), mbps(10)),
        }
        outcome = strategy.allocate(flows)
        rates = [outcome.rates[1], outcome.rates[2]]
        print(f"{strategy.name}:")
        for flow_id in (1, 2):
            parts = ", ".join(
                f"{'-'.join(map(str, path))} @ {format_rate(rate)}"
                for path, rate in outcome.splits[flow_id]
                if rate > 0
            )
            print(f"  flow {flow_id}: {format_rate(outcome.rates[flow_id])}  ({parts})")
        print(f"  Jain fairness: {jain_index(rates):.3f}")
        print()


if __name__ == "__main__":
    main()
