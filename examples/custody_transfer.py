#!/usr/bin/env python3
"""Store-and-forward custody in action (Section 3.3, back-pressure).

A sender pushes a bulk transfer into a path whose last hop is five
times slower than its feed, with no detour available.  The bottleneck
router takes the surplus into its custody store and back-pressures the
sender into the closed-loop mode; when the push resumes, custody fills
again — the 'temporary custodian' cycle of the paper.  The example
prints the custody occupancy over time and the protocol counters.

Run:  python examples/custody_transfer.py
"""

from repro import ChunkNetwork, ChunkSimConfig, Topology
from repro.units import format_size, mbps


def main() -> None:
    topo = Topology("custody-demo")
    topo.add_link("src", "mid", capacity=mbps(10))
    topo.add_link("mid", "dst", capacity=mbps(2))

    config = ChunkSimConfig(custody_bytes=500_000, resume_timeout=0.5)
    net = ChunkNetwork(topo, mode="inrpp", config=config)
    flow = net.add_flow("src", "dst", num_chunks=10_000_000)

    # Sample custody occupancy at the bottleneck router every 250 ms.
    samples = []
    mid = net.routers["mid"]

    def _sample():
        samples.append((net.sim.now, mid.custody_used_bytes()))
        net.sim.schedule(0.25, _sample)

    net.sim.schedule(0.25, _sample)
    report = net.run(duration=12.0, warmup=2.0)

    print("custody occupancy at the bottleneck router:")
    for time, used in samples[:20]:
        bar = "#" * int(used / 10_000)
        print(f"  t={time:5.2f}s  {format_size(used):>9}  |{bar}")
    print()
    result = report.flow(flow)
    print(f"goodput: {result.goodput_bps / 1e6:.2f} Mbps (bottleneck is 2 Mbps)")
    print(
        f"custody events={report.custody_events}"
        f" drains={report.custody_drains}"
        f" peak={format_size(report.custody_peak_bytes)}"
    )
    print(
        f"backpressure signals={report.backpressure_signals}"
        f"  drops={report.drops} (INRPP never drops)"
    )


if __name__ == "__main__":
    main()
