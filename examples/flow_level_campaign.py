#!/usr/bin/env python3
"""A flow-level simulation campaign: Poisson arrivals, three strategies.

Uses the event-driven flow-level simulator (rates recomputed at every
arrival/departure) on the Exodus map with Poisson flow arrivals and
exponential flow sizes, and compares SP / ECMP / INRP on network
throughput, mean flow completion time and path stretch — the dynamic
version of the paper's Fig. 4 snapshot experiment.

Run:  python examples/flow_level_campaign.py
"""

from repro import FlowLevelSimulator, make_strategy
from repro.analysis.reporting import ascii_table
from repro.flowsim.metrics import completion_ratio, mean_fct, stretch_cdf
from repro.topology.isp import build_isp_topology
from repro.units import mbps
from repro.workloads import FlowWorkload, local_pairs


def main() -> None:
    topo = build_isp_topology("exodus", seed=0)
    workload = FlowWorkload(
        topo,
        arrival_rate=8.0,                # flows per second, network-wide
        mean_size_bits=20e6,             # 20 Mbit (2.5 MB) transfers
        demand_bps=mbps(10),             # access-limited senders
        seed=7,
        pair_sampler=local_pairs(topo, seed=7),
    )
    specs = workload.generate(horizon=25.0)
    print(f"topology: {topo}; {len(specs)} flows over 25s\n")

    rows = []
    for name in ("sp", "ecmp", "inrp"):
        strategy = make_strategy(name, topo)
        sim = FlowLevelSimulator(topo, strategy, specs, horizon=120.0)
        result = sim.run()
        fct = mean_fct(result.records)
        stretch = stretch_cdf(result.records)
        rows.append(
            [
                strategy.name,
                f"{result.network_throughput:.3f}",
                f"{fct:.2f}s" if fct else "-",
                f"{completion_ratio(result.records):.2%}",
                f"{stretch.quantile(0.95):.2f}",
                str(result.total_switches),
            ]
        )
    print(
        ascii_table(
            ["strategy", "throughput", "mean FCT", "completed", "p95 stretch", "switches"],
            rows,
            title="Flow-level campaign (Exodus, Poisson arrivals)",
        )
    )


if __name__ == "__main__":
    main()
