#!/usr/bin/env python3
"""Fig. 3 at chunk level: AIMD baseline vs the INRPP protocol.

Runs the full discrete-event protocol simulation on the Fig. 3
topology: receiver-driven requests, sender push with anticipation,
per-interface anticipated-rate estimation, detouring through node 3
and (if needed) custody + back-pressure.  Prints goodputs, Jain's
index and the protocol event counters for both modes.

Run:  python examples/fig3_fairness_demo.py
"""

from repro import ChunkNetwork, fig3_topology


def run_mode(mode: str) -> None:
    topo = fig3_topology()
    net = ChunkNetwork(topo, mode=mode)
    flow_bottlenecked = net.add_flow(1, 4, num_chunks=10_000_000)
    flow_clear = net.add_flow(1, 5, num_chunks=10_000_000)
    report = net.run(duration=20.0, warmup=5.0)

    label = "e2e flow control (AIMD)" if mode == "aimd" else "INRPP"
    print(f"--- {label} ---")
    for flow_id, name in ((flow_bottlenecked, "1 -> 4"), (flow_clear, "1 -> 5")):
        flow = report.flow(flow_id)
        print(
            f"  flow {name}: {flow.goodput_bps / 1e6:.2f} Mbps"
            f"  (mean path {flow.mean_hops:.2f} hops,"
            f" {flow.detoured_chunks} detoured chunks)"
        )
    print(f"  Jain fairness: {report.jain():.3f}")
    print(
        f"  drops={report.drops} custody={report.custody_events}"
        f" backpressure={report.backpressure_signals}"
        f" detours={report.detour_events}"
    )
    print()


def main() -> None:
    print("Paper expectation: AIMD -> (2, 8) Mbps, Jain 0.73;")
    print("                   INRPP -> (5, 5) Mbps, Jain 1.00\n")
    run_mode("aimd")
    run_mode("inrpp")


if __name__ == "__main__":
    main()
