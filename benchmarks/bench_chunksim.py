#!/usr/bin/env python
"""Chunk-level engine benchmark: modern vs reference event core.

Two measurements, both driving the seed-era :class:`ReferenceSimulator`
and the modern :class:`Simulator` through identical workloads:

``engine-churn``
    The event core alone under the AIMD retransmission-timer shape:
    a large population of outstanding RTO timers where ~90 % are
    cancelled (delivery beat the timeout) and re-armed every round.
    This isolates what the engine modernization changed — C-speed
    heap entries, tombstone accounting and slack-triggered compaction
    — because the seed core pays a Python ``__lt__`` call per heap
    level and drags every tombstone to its expiry.  Measured speedups
    on the development machine: 3.5-4.3x at 20k outstanding timers,
    2.9-3.2x at 200k (both cores become memory-bound at very large
    heaps, which compresses the ratio); the CI floors below sit under
    those ranges to absorb runner noise.

``fig3-e2e``
    Full protocol simulations on the Fig. 3 topology (both INRPP and
    the AIMD baseline) at many times the seed flow count.  End-to-end
    runs also pay for protocol work both engines now share (the
    request-relay fast path, handle-free timers and the batched
    interface phases live in the protocol modules, so the reference
    engine benefits from them too), which dilutes the engine-swap
    gap: expect ~1.6-2x for the timer-heavy AIMD mode and only
    ~1.1-1.4x for steady INRPP, whose event rate is throttled by
    back-pressure.  Every run is checked for *identical traced
    results* across engines: same event count, drops,
    custody/backpressure/detour counters, goodputs and per-flow chunk
    counts.  A deviation fails the benchmark.

Standalone script (same pattern as ``bench_flowsim.py``) so CI can
gate on it::

    python benchmarks/bench_chunksim.py --smoke
    python benchmarks/bench_chunksim.py                 # full sizes
    python benchmarks/bench_chunksim.py --out BENCH.json

Exit status is non-zero when cross-engine equivalence breaks or a
speedup floor (``--min-core-speedup``, ``--min-e2e-speedup``) is
missed.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.fig3 import fig3_topology
from repro.chunksim import ChunkNetwork
from repro.chunksim.engine import make_engine

#: Flow endpoints cycled to populate the Fig. 3 topology at scale.
PAIRS = ((1, 4), (1, 5), (4, 1), (5, 1), (3, 5), (2, 4))


# ----------------------------------------------------------------------
# Engine-core churn (the 3x claim)
# ----------------------------------------------------------------------
def run_churn(engine: str, outstanding: int, rounds: int = 10, rto: float = 0.5):
    """One churn run; returns (seconds, fired, events_processed)."""
    sim = make_engine(engine)
    fired = [0]

    def fire(i):
        fired[0] += 1

    timers = [sim.schedule_entry(rto, fire, i) for i in range(outstanding)]
    start = time.process_time()
    for _ in range(rounds):
        for i, timer in enumerate(timers):
            if i % 10 < 9:  # delivery wins the race: cancel + re-arm
                sim.cancel_entry(timer)
                timers[i] = sim.schedule_entry(rto, fire, i)
        sim.run(until=sim.now + rto / rounds)
    sim.run(until=sim.now + 2 * rto)
    return time.process_time() - start, fired[0], sim.events_processed


def bench_churn(outstanding: int, repeat: int):
    record = {"outstanding": outstanding, "seconds": {}, "events": {}}
    for engine in ("reference", "modern"):
        runs = [run_churn(engine, outstanding) for _ in range(repeat)]
        record["seconds"][engine] = round(min(run[0] for run in runs), 4)
        record["events"][engine] = runs[0][2]
        print(
            f"  {engine:10s} core: {record['seconds'][engine]:8.3f}s "
            f"({record['events'][engine]} events)",
            flush=True,
        )
    if record["events"]["modern"] != record["events"]["reference"]:
        record["equivalent"] = False
    else:
        record["equivalent"] = True
    record["speedup"] = round(
        record["seconds"]["reference"] / max(record["seconds"]["modern"], 1e-9),
        3,
    )
    print(f"  core speedup {record['speedup']}x", flush=True)
    return record


# ----------------------------------------------------------------------
# Fig. 3-scale end-to-end (identical traced results)
# ----------------------------------------------------------------------
def run_fig3_scale(engine: str, mode: str, num_flows: int, duration: float):
    network = ChunkNetwork(fig3_topology(), mode=mode, engine=engine)
    for index in range(num_flows):
        source, destination = PAIRS[index % len(PAIRS)]
        network.add_flow(
            source, destination, num_chunks=10_000_000, start_time=0.01 * index
        )
    start = time.process_time()
    report = network.run(duration=duration, warmup=0.25 * duration)
    seconds = time.process_time() - start
    observables = (
        report.events_processed,
        report.drops,
        report.custody_events,
        report.custody_drains,
        report.custody_peak_bytes,
        report.backpressure_signals,
        report.detour_events,
        round(report.jain(), 10),
        tuple(round(flow.goodput_bps, 6) for flow in report.flows),
        tuple(flow.received_chunks for flow in report.flows),
    )
    return seconds, observables


def bench_fig3(mode: str, num_flows: int, duration: float, repeat: int):
    record = {
        "mode": mode,
        "num_flows": num_flows,
        "duration": duration,
        "seconds": {},
    }
    traces = {}
    for engine in ("reference", "modern"):
        runs = [
            run_fig3_scale(engine, mode, num_flows, duration)
            for _ in range(repeat)
        ]
        record["seconds"][engine] = round(min(run[0] for run in runs), 4)
        traces[engine] = runs[0][1]
        print(
            f"  {engine:10s} engine: {record['seconds'][engine]:8.3f}s "
            f"({traces[engine][0]} events)",
            flush=True,
        )
    record["equivalent"] = traces["modern"] == traces["reference"]
    record["events_processed"] = traces["reference"][0]
    record["speedup"] = round(
        record["seconds"]["reference"] / max(record["seconds"]["modern"], 1e-9),
        3,
    )
    verdict = "identical" if record["equivalent"] else "DIVERGED"
    print(
        f"  e2e speedup {record['speedup']}x, traced results {verdict}",
        flush=True,
    )
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes for CI (fewer flows, smaller timer population)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="timing repeats; the minimum is reported (default 3)",
    )
    parser.add_argument(
        "--min-core-speedup",
        type=float,
        default=None,
        help="fail below this engine-churn speedup "
        "(default: 2.5 full, 2.0 smoke; measured 2.9-4.3x)",
    )
    parser.add_argument(
        "--min-e2e-speedup",
        type=float,
        default=None,
        help="fail below this Fig. 3-scale end-to-end speedup, applied "
        "to the timer-heavy aimd point (default: 1.2 full, 1.0 smoke; "
        "inrpp is gated at 1.0 — back-pressure caps its event rate)",
    )
    parser.add_argument("--out", default=None, help="write the JSON record here")
    args = parser.parse_args(argv)

    if args.smoke:
        outstanding, num_flows, duration = 20_000, 96, 20.0
        min_core = args.min_core_speedup or 2.0
        min_e2e = {"inrpp": 1.0, "aimd": args.min_e2e_speedup or 1.0}
    else:
        outstanding, num_flows, duration = 200_000, 960, 30.0
        min_core = args.min_core_speedup or 2.5
        min_e2e = {"inrpp": 1.0, "aimd": args.min_e2e_speedup or 1.2}

    record = {"mode": "smoke" if args.smoke else "full", "points": {}}
    failures = []

    print(f"[engine-churn] {outstanding} outstanding timers", flush=True)
    churn = bench_churn(outstanding, args.repeat)
    record["points"]["engine-churn"] = churn
    if not churn["equivalent"]:
        failures.append("engine-churn: event counts diverged across engines")
    if churn["speedup"] < min_core:
        failures.append(
            f"engine-churn: speedup {churn['speedup']}x below the "
            f"{min_core}x floor"
        )

    for mode in ("inrpp", "aimd"):
        print(
            f"[fig3-e2e] mode={mode}, {num_flows} flows, {duration}s",
            flush=True,
        )
        point = bench_fig3(mode, num_flows, duration, args.repeat)
        record["points"][f"fig3-{mode}"] = point
        if not point["equivalent"]:
            failures.append(f"fig3-{mode}: traced results diverged")
        if point["speedup"] < min_e2e[mode]:
            failures.append(
                f"fig3-{mode}: speedup {point['speedup']}x below the "
                f"{min_e2e[mode]}x floor"
            )

    record["ok"] = not failures
    if args.out:
        Path(args.out).write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.out}", flush=True)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr, flush=True)
        return 1
    print("all engine benchmarks within bounds", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
