"""Ablation — custody store size (DESIGN.md decision 2).

On a detour-free path with a 2 Mbps bottleneck behind a 10 Mbps feed,
the custody store absorbs the push surplus until back-pressure
throttles the sender.  Goodput should be insensitive to the store size
(back-pressure keeps custody bounded), while a zero-size store must
still not drop chunks — it simply back-pressures immediately.
Also checks the paper's sizing arithmetic (10 GB @ 40 Gbps = 2 s).
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import ascii_table
from repro.cache.custody import custody_duration
from repro.chunksim import ChunkNetwork, ChunkSimConfig
from repro.topology.graph import Topology
from repro.units import gbps, gigabytes, mbps

from conftest import register_report


def _bottleneck_topology() -> Topology:
    topo = Topology("custody-ablation")
    topo.add_link(0, 1, capacity=mbps(10))
    topo.add_link(1, 2, capacity=mbps(2))
    return topo


def _run():
    results = {}
    for label, custody_bytes in (
        ("40kB", 40_000),
        ("200kB", 200_000),
        ("2MB", 2_000_000),
        ("unbounded", None),
    ):
        config = ChunkSimConfig(custody_bytes=custody_bytes)
        net = ChunkNetwork(_bottleneck_topology(), mode="inrpp", config=config)
        flow = net.add_flow(0, 2, num_chunks=10_000_000)
        report = net.run(duration=15.0, warmup=5.0)
        results[label] = (
            report.flow(flow).goodput_bps / 1e6,
            report.custody_peak_bytes,
            report.backpressure_signals,
            report.drops,
        )
    return results


def test_bench_ablation_custody(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [label, f"{goodput:.3f}", str(peak), str(bp), str(drops)]
        for label, (goodput, peak, bp, drops) in results.items()
    ]
    register_report(
        "Ablation: custody store size (0-1-2 bottleneck line)",
        ascii_table(
            ["custody", "goodput Mbps", "peak bytes", "bp signals", "drops"], rows
        ),
    )
    for label, (goodput, peak, bp, drops) in results.items():
        # Back-pressure keeps goodput at the bottleneck rate whatever
        # the store size.
        assert goodput == pytest.approx(2.0, rel=0.05), label
        assert bp > 0, label
        if label == "40kB":
            # A store holding only ~32 ms of the feed can overflow
            # during a push burst before back-pressure bites — the
            # ablation's point: custody must cover the control delay.
            assert drops < 50, label
        else:
            assert drops == 0, label
    # The paper's footnote: a 10 GB cache behind 40 Gbps holds 2 s.
    assert custody_duration(gigabytes(10), gbps(40)) == pytest.approx(2.0)
