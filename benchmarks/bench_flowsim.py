#!/usr/bin/env python
"""Flow-level simulator core benchmark: incremental vs reference.

Runs the same Poisson load sweep through both `FlowLevelSimulator`
cores and reports the wall-clock speedup plus an equivalence check
(per-flow completion times and delivered bits must agree within 1e-6
relative).  A separate verification pass re-checks every incremental
recompute against from-scratch ``max_min_allocation``.

Unlike the pytest-benchmark drivers next door, this is a standalone
script so CI can run it and archive the JSON record::

    python benchmarks/bench_flowsim.py --smoke --out BENCH_flowsim.json
    python benchmarks/bench_flowsim.py --flows 10000   # the full sweep

Exit status is non-zero when equivalence or verification fails, or
when ``--min-speedup`` is given and not met.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import FlowLevelSimulator, FlowWorkload, build_isp_topology, make_strategy
from repro.units import mbps
from repro.workloads import local_pairs

#: Relative tolerance for cross-core record equivalence.
TOLERANCE = 1e-6


def build_specs(args, num_flows):
    topo = build_isp_topology(args.isp, seed=0)
    workload = FlowWorkload(
        topo,
        arrival_rate=args.arrival_rate,
        mean_size_bits=args.mean_size_mbit * 1e6,
        demand_bps=mbps(args.demand_mbps),
        seed=args.seed,
        pair_sampler=local_pairs(topo, seed=args.seed + 1, max_hops=args.max_hops),
    )
    return topo, workload.generate(max_flows=num_flows)


def run_core(topo, strategy_name, specs, core, verify=False):
    strategy = make_strategy(strategy_name, topo)
    sim = FlowLevelSimulator(
        topo, strategy, specs, core=core, verify_allocator=verify
    )
    start = time.perf_counter()
    result = sim.run()
    return result, time.perf_counter() - start


def check_equivalence(reference, incremental):
    """Worst relative deviation between the two cores' records."""
    worst = 0.0
    for ref, inc in zip(reference.records, incremental.records):
        if ref.flow_id != inc.flow_id or ref.completed != inc.completed:
            return math.inf
        if ref.completed:
            worst = max(worst, abs(ref.fct - inc.fct) / max(abs(ref.fct), 1e-12))
        worst = max(
            worst,
            abs(ref.delivered_bits - inc.delivered_bits) / max(ref.size_bits, 1.0),
        )
    worst = max(
        worst,
        abs(reference.network_throughput - incremental.network_throughput)
        / max(reference.network_throughput, 1e-12),
    )
    return worst


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--flows", type=int, default=10_000, help="sweep size")
    parser.add_argument("--isp", default="sprint", help="ISP map (Table 1 name)")
    parser.add_argument("--strategy", default="sp", help="routing strategy")
    parser.add_argument("--arrival-rate", type=float, default=1500.0)
    parser.add_argument("--mean-size-mbit", type=float, default=2.5)
    parser.add_argument("--demand-mbps", type=float, default=10.0)
    parser.add_argument("--max-hops", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run (2000 flows) with full allocator verification",
    )
    parser.add_argument(
        "--verify-flows",
        type=int,
        default=2000,
        help="size of the from-scratch allocator verification pass",
    )
    parser.add_argument("--min-speedup", type=float, default=None)
    parser.add_argument("--out", default=None, help="write the JSON record here")
    args = parser.parse_args(argv)

    num_flows = 2000 if args.smoke else args.flows
    topo, specs = build_specs(args, num_flows)
    print(
        f"flowsim bench: {args.isp} ({topo.num_nodes} nodes), "
        f"{num_flows} flows, strategy={args.strategy}",
        flush=True,
    )

    reference, reference_s = run_core(topo, args.strategy, specs, "reference")
    print(f"  reference core:   {reference_s:8.2f}s", flush=True)
    incremental, incremental_s = run_core(topo, args.strategy, specs, "incremental")
    print(f"  incremental core: {incremental_s:8.2f}s", flush=True)
    speedup = reference_s / incremental_s if incremental_s > 0 else math.inf
    worst = check_equivalence(reference, incremental)
    print(f"  speedup {speedup:.2f}x, worst record deviation {worst:.2e}", flush=True)

    # Every incremental recompute re-checked against from-scratch
    # max-min (quadratic, so on a bounded slice of the sweep).
    verified = None
    if args.strategy in ("sp", "ecmp"):
        verify_specs = specs[: min(len(specs), args.verify_flows)]
        run_core(topo, args.strategy, verify_specs, "incremental", verify=True)
        verified = len(verify_specs)
        print(f"  allocator verified from scratch on {verified} flows", flush=True)

    record = {
        "bench": "flowsim-core",
        "params": {
            "isp": args.isp,
            "strategy": args.strategy,
            "num_flows": num_flows,
            "arrival_rate": args.arrival_rate,
            "mean_size_mbit": args.mean_size_mbit,
            "demand_mbps": args.demand_mbps,
            "max_hops": args.max_hops,
            "seed": args.seed,
            "smoke": args.smoke,
        },
        "reference_seconds": round(reference_s, 4),
        "incremental_seconds": round(incremental_s, 4),
        "speedup": round(speedup, 3),
        "worst_record_deviation": worst,
        "equivalent": worst <= TOLERANCE,
        "allocator_verified_flows": verified,
        "result": {
            "completed": len(reference.completed_records),
            "unfinished": reference.unfinished,
            "allocations": reference.allocations,
            "network_throughput": reference.network_throughput,
            "mean_fct": reference.mean_fct(),
            "duration": reference.duration,
        },
    }
    if args.out:
        Path(args.out).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"  wrote {args.out}", flush=True)

    if not record["equivalent"]:
        print(f"FAIL: cores diverged beyond {TOLERANCE}", file=sys.stderr)
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
