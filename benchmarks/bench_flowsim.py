#!/usr/bin/env python
"""Flow-level simulator core benchmark: incremental vs reference vs auto.

Runs a set of calibrated operating points through the
`FlowLevelSimulator` cores and reports wall-clock speedups plus
cross-core equivalence (per-flow completion times and delivered bits
within 1e-6 relative) and incremental-vs-scratch allocator verification
(re-checked every recompute on a bounded slice; must stay within 1e-9).

Points:

``sp-calibrated``
    The PR-3 point: sprint map, SP, local pairs within 4 hops, rho < 1.
    Dirty max-min components are small; the incremental core wins big.
``inrp-calibrated``
    The paper's own strategy through the detour-closure allocator
    (`IncrementalInrp`): sprint, local pairs within 3 hops, rho < 1.
``inrp-overload``
    Deep overload (exodus, uniform pairs, arrivals far above the drain
    rate): the population snowballs into one spanning component where
    pure dirty-component search loses to full refills — the regime the
    adaptive ``core="auto"`` exists for, so this point runs all three
    cores and reports auto against the better of the other two.
``inrp-directed``
    The directed-substrate point: sprint with every reverse direction
    scaled to half capacity (``apply_capacity_asymmetry``) and
    bidirectional uniform pairs, so traffic genuinely exercises
    per-direction link state through the detour-closure allocator and
    the CSR kernel.

Unlike the pytest-benchmark drivers next door, this is a standalone
script so CI can run it and diff-check the JSON record against the
committed ``BENCH_flowsim.json``::

    python benchmarks/bench_flowsim.py --smoke --check-against BENCH_flowsim.json
    python benchmarks/bench_flowsim.py                  # the full sweep
    python benchmarks/bench_flowsim.py --points inrp-calibrated

Exit status is non-zero when equivalence, verification, an explicit
``--min-inrp-speedup`` / ``--max-auto-ratio`` bar, or the
``--check-against`` diff fails.
"""

from __future__ import annotations

import argparse
import json
import math
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import FlowLevelSimulator, FlowWorkload, build_isp_topology, make_strategy
from repro.topology import apply_capacity_asymmetry
from repro.units import mbps
from repro.workloads import local_pairs, uniform_pairs

#: Relative tolerance for cross-core record equivalence.
TOLERANCE = 1e-6
#: Incremental-vs-scratch allocator verification bar.
VERIFY_TOLERANCE = 1e-9

#: The calibrated operating points.  ``flows_smoke`` sizes the CI run;
#: ``verify_flows`` bounds the (quadratic) from-scratch verification.
POINTS = {
    "sp-calibrated": dict(
        isp="sprint",
        strategy="sp",
        arrival_rate=1500.0,
        mean_size_mbit=2.5,
        demand_mbps=10.0,
        pairs="local",
        max_hops=4,
        seed=1,
        flows_full=10_000,
        flows_smoke=2_000,
        verify_flows=2_000,
        cores=("reference", "incremental", "vectorized"),
    ),
    "inrp-calibrated": dict(
        isp="sprint",
        strategy="inrp",
        arrival_rate=800.0,
        mean_size_mbit=2.5,
        demand_mbps=10.0,
        pairs="local",
        max_hops=3,
        seed=1,
        flows_full=10_000,
        flows_smoke=2_000,
        verify_flows=600,
        cores=("reference", "incremental", "vectorized"),
    ),
    "inrp-overload": dict(
        isp="exodus",
        strategy="inrp",
        arrival_rate=400.0,
        mean_size_mbit=4.0,
        demand_mbps=10.0,
        pairs="uniform",
        max_hops=None,
        seed=1,
        flows_full=1_500,
        flows_smoke=500,
        verify_flows=200,
        cores=("reference", "incremental", "vectorized", "auto"),
    ),
    "inrp-directed": dict(
        isp="sprint",
        strategy="inrp",
        arrival_rate=500.0,
        mean_size_mbit=2.5,
        demand_mbps=10.0,
        pairs="local",
        max_hops=3,
        capacity_asymmetry=0.5,
        seed=1,
        flows_full=6_000,
        flows_smoke=800,
        verify_flows=400,
        cores=("reference", "incremental", "vectorized"),
    ),
}


#: The streaming-pipeline memory benchmark: the ``load-sweep-xl``
#: operating point (sprint, SP, rho < 1 so the active set stays small
#: and a million arrivals drain in minutes).  Each measurement runs in
#: a fresh subprocess and reports its RSS growth (VmHWM peak minus the
#: post-import baseline), so sinks are compared on identical terms and
#: without tracemalloc's order-of-magnitude slowdown.  The full mode
#: pits a 1M-flow streaming run against a 100k-flow materialized run:
#: the streaming run must stay under the fixed ceiling AND under the
#: materialized run's footprint at a tenth of the scale.
MEMORY_POINT = dict(
    isp="sprint",
    strategy="sp",
    arrival_rate=1500.0,
    mean_size_mbit=0.25,
    demand_mbps=10.0,
    max_hops=4,
    seed=1,
    flows=dict(
        full=dict(streaming=1_000_000, materialize=100_000),
        smoke=dict(streaming=60_000, materialize=60_000),
    ),
    #: Peak-RSS-growth ceiling for the streaming run, in MB.
    ceiling_mb=dict(full=192, smoke=96),
)


def build_specs(point, num_flows):
    topo = build_isp_topology(point["isp"], seed=0)
    if point.get("capacity_asymmetry"):
        apply_capacity_asymmetry(topo, point["capacity_asymmetry"])
    seed = point["seed"]
    if point["pairs"] == "local":
        sampler = local_pairs(topo, seed=seed + 1, max_hops=point["max_hops"])
    else:
        sampler = uniform_pairs(topo, seed=seed + 1)
    workload = FlowWorkload(
        topo,
        arrival_rate=point["arrival_rate"],
        mean_size_bits=point["mean_size_mbit"] * 1e6,
        demand_bps=mbps(point["demand_mbps"]),
        seed=seed,
        pair_sampler=sampler,
    )
    return topo, workload.generate(max_flows=num_flows)


def run_core(topo, strategy_name, specs, core, verify=False, adaptive=None):
    strategy = make_strategy(strategy_name, topo)
    sim = FlowLevelSimulator(
        topo,
        strategy,
        specs,
        core=core,
        verify_allocator=verify,
        **(adaptive or {}),
    )
    start = time.perf_counter()
    result = sim.run()
    return result, time.perf_counter() - start


def check_equivalence(reference, other):
    """Worst relative deviation between two cores' records."""
    worst = 0.0
    for ref, oth in zip(reference.records, other.records):
        if ref.flow_id != oth.flow_id or ref.completed != oth.completed:
            return math.inf
        if ref.completed:
            worst = max(worst, abs(ref.fct - oth.fct) / max(abs(ref.fct), 1e-12))
        worst = max(
            worst,
            abs(ref.delivered_bits - oth.delivered_bits) / max(ref.size_bits, 1.0),
        )
    worst = max(
        worst,
        abs(reference.network_throughput - other.network_throughput)
        / max(reference.network_throughput, 1e-12),
    )
    return worst


def run_point(name, point, num_flows, verify_flows, adaptive=None):
    topo, specs = build_specs(point, num_flows)
    print(
        f"[{name}] {point['isp']} ({topo.num_nodes} nodes), {num_flows} flows, "
        f"strategy={point['strategy']}, pairs={point['pairs']}",
        flush=True,
    )
    results, seconds, full_refills = {}, {}, {}
    for core in point["cores"]:
        results[core], seconds[core] = run_core(
            topo, point["strategy"], specs, core, adaptive=adaptive
        )
        full_refills[core] = results[core].full_refills
        print(f"  {core:12s} core: {seconds[core]:8.2f}s", flush=True)

    worst = max(
        check_equivalence(results["reference"], results[core])
        for core in point["cores"]
        if core != "reference"
    )
    speedup = (
        seconds["reference"] / seconds["incremental"]
        if seconds["incremental"] > 0
        else math.inf
    )
    print(
        f"  speedup {speedup:.2f}x, worst record deviation {worst:.2e}",
        flush=True,
    )
    vectorized_speedup = None
    if "vectorized" in seconds:
        vectorized_speedup = (
            seconds["incremental"] / seconds["vectorized"]
            if seconds["vectorized"] > 0
            else math.inf
        )
        print(
            f"  vectorized vs incremental: {vectorized_speedup:.2f}x",
            flush=True,
        )
    auto_vs_best = None
    if "auto" in seconds:
        best = min(seconds["reference"], seconds["incremental"])
        auto_vs_best = seconds["auto"] / best if best > 0 else math.inf
        print(f"  auto vs best-of-others: {auto_vs_best:.2f}x", flush=True)

    # Every recompute of the newest allocator core re-checked against
    # the from-scratch solver (quadratic, so on a bounded slice).
    verify_core = "vectorized" if "vectorized" in point["cores"] else "incremental"
    verify_specs = specs[: min(len(specs), verify_flows)]
    verified, _ = run_core(
        topo, point["strategy"], verify_specs, verify_core, verify=True
    )
    max_deviation = verified.max_verify_deviation or 0.0
    print(
        f"  {verify_core} allocator verified from scratch on "
        f"{len(verify_specs)} flows (max deviation {max_deviation:.2e})",
        flush=True,
    )

    reference = results["reference"]
    return {
        "params": {
            key: point[key]
            for key in (
                "isp",
                "strategy",
                "arrival_rate",
                "mean_size_mbit",
                "demand_mbps",
                "pairs",
                "max_hops",
                "capacity_asymmetry",
                "seed",
            )
            if key in point
        },
        "num_flows": num_flows,
        "seconds": {core: round(value, 4) for core, value in seconds.items()},
        "speedup": round(speedup, 3),
        "vectorized_speedup": (
            None if vectorized_speedup is None else round(vectorized_speedup, 3)
        ),
        "auto_vs_best": None if auto_vs_best is None else round(auto_vs_best, 3),
        "worst_record_deviation": worst,
        "equivalent": worst <= TOLERANCE,
        "full_refills": full_refills,
        "verify": {
            "core": verify_core,
            "flows": len(verify_specs),
            "max_deviation": max_deviation,
            "ok": max_deviation <= VERIFY_TOLERANCE,
        },
        "result": {
            "completed": len(reference.completed_records),
            "unfinished": reference.unfinished,
            "allocations": reference.allocations,
            "network_throughput": reference.network_throughput,
            "mean_fct": reference.mean_fct(),
            "duration": reference.duration,
            "total_switches": reference.total_switches,
        },
    }


def _rss_kb(field):
    """Read a VmRSS/VmHWM field (kB) from /proc/self/status; 0 when
    the platform has no procfs (the memory bench then reports only
    what it can)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith(field):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def memory_child(spec):
    """Run one sink measurement and print a JSON line (internal;
    invoked as ``--memory-child sink:num_flows`` in a fresh process)."""
    sink, _, num_flows = spec.partition(":")
    num_flows = int(num_flows)
    point = MEMORY_POINT
    topo = build_isp_topology(point["isp"], seed=0)
    workload = FlowWorkload(
        topo,
        arrival_rate=point["arrival_rate"],
        mean_size_bits=point["mean_size_mbit"] * 1e6,
        demand_bps=mbps(point["demand_mbps"]),
        seed=point["seed"],
        pair_sampler=local_pairs(
            topo, seed=point["seed"] + 1, max_hops=point["max_hops"]
        ),
    )
    baseline_kb = _rss_kb("VmRSS")
    start = time.perf_counter()
    if sink == "streaming":
        specs = workload.iter_specs(max_flows=num_flows)
    else:
        # The materialized schedule is part of that pipeline's
        # footprint, so it is generated inside the measured window.
        specs = workload.generate(max_flows=num_flows)
    result = FlowLevelSimulator(
        topo, make_strategy(point["strategy"], topo), specs, sink=sink
    ).run()
    seconds = time.perf_counter() - start
    peak_kb = _rss_kb("VmHWM")
    print(
        json.dumps(
            {
                "sink": sink,
                "num_flows": num_flows,
                "baseline_rss_kb": baseline_kb,
                "peak_rss_kb": peak_kb,
                "rss_growth_mb": round((peak_kb - baseline_kb) / 1024.0, 1),
                "seconds": round(seconds, 1),
                "completed": result.completed_count,
                "unfinished": result.unfinished,
                "network_throughput": result.network_throughput,
                "p99_fct": result.fct_quantile(0.99),
            }
        )
    )
    return 0


def run_memory(smoke):
    """Measure both sinks in fresh subprocesses and assert the
    streaming pipeline's bounded-memory contract."""
    mode = "smoke" if smoke else "full"
    sizes = MEMORY_POINT["flows"][mode]
    ceiling_mb = MEMORY_POINT["ceiling_mb"][mode]
    runs = {}
    for sink in ("streaming", "materialize"):
        num_flows = sizes[sink]
        print(
            f"[memory] {sink} sink, {num_flows} flows "
            f"({MEMORY_POINT['isp']}, {MEMORY_POINT['strategy']}) ...",
            flush=True,
        )
        child = subprocess.run(
            [sys.executable, __file__, "--memory-child", f"{sink}:{num_flows}"],
            capture_output=True,
            text=True,
        )
        if child.returncode != 0:
            raise RuntimeError(
                f"memory child ({sink}) failed:\n{child.stderr}"
            )
        runs[sink] = json.loads(child.stdout.strip().splitlines()[-1])
        measured = runs[sink]
        print(
            f"  peak RSS growth {measured['rss_growth_mb']:.1f} MB "
            f"in {measured['seconds']:.1f}s "
            f"({measured['completed']} completed)",
            flush=True,
        )
    streaming, materialized = runs["streaming"], runs["materialize"]
    scale = streaming["num_flows"] / materialized["num_flows"]
    checks = {
        # The headline contract: N-flow streaming peak under a fixed
        # ceiling, and no larger than materializing 1/scale as many.
        "streaming_under_ceiling": streaming["rss_growth_mb"] <= ceiling_mb,
        "streaming_below_materialized": (
            streaming["rss_growth_mb"] <= materialized["rss_growth_mb"] * 1.10
        ),
    }
    record = {
        "point": {
            key: MEMORY_POINT[key]
            for key in (
                "isp",
                "strategy",
                "arrival_rate",
                "mean_size_mbit",
                "demand_mbps",
                "max_hops",
                "seed",
            )
        },
        "ceiling_mb": ceiling_mb,
        "scale_ratio": scale,
        "streaming": streaming,
        "materialize": materialized,
        "checks": checks,
    }
    for name, passed in checks.items():
        print(f"  {name}: {'ok' if passed else 'FAIL'}", flush=True)
    return record


def check_against(record, committed_path):
    """Diff the fresh record against the committed trajectory file.

    Deterministic simulation outputs must agree tightly; wall-clock
    derived numbers (speedup, auto ratio) only generously — CI runners
    are noisy and share cores.
    """
    path = Path(committed_path)
    if not path.exists():
        return [
            f"committed trajectory file not found: {committed_path} "
            f"(generate it with --merge-into)"
        ]
    committed = json.loads(path.read_text())
    section = committed.get(record["mode"])
    if section is None:
        return [f"committed file has no '{record['mode']}' section"]
    failures = []
    if "memory" in record:
        baseline_memory = section.get("memory")
        if baseline_memory is None:
            failures.append(
                f"committed '{record['mode']}' section has no memory record"
            )
        else:
            fresh_memory = record["memory"]
            for sink in ("streaming", "materialize"):
                for field in ("num_flows", "completed", "unfinished"):
                    old = baseline_memory[sink][field]
                    new = fresh_memory[sink][field]
                    if old != new:
                        failures.append(
                            f"memory/{sink}: {field} changed {old} -> {new}"
                        )
            # RSS itself is machine-dependent; the binding constraints
            # are the fixed ceiling and the cross-sink comparison,
            # asserted as checks on the fresh run.
            for name, passed in fresh_memory["checks"].items():
                if not passed:
                    failures.append(f"memory: check '{name}' failed")
    for name, fresh in record.get("points", {}).items():
        baseline = section.get("points", {}).get(name)
        if baseline is None:
            failures.append(f"{name}: missing from committed record")
            continue
        for field in ("completed", "unfinished", "allocations"):
            if fresh["result"][field] != baseline["result"][field]:
                failures.append(
                    f"{name}: {field} changed "
                    f"{baseline['result'][field]} -> {fresh['result'][field]}"
                )
        for field in ("network_throughput", "mean_fct", "duration"):
            old, new = baseline["result"][field], fresh["result"][field]
            if old is None or new is None:
                if old != new:
                    failures.append(f"{name}: {field} changed {old} -> {new}")
                continue
            if abs(new - old) > 1e-6 * max(abs(old), 1e-12):
                failures.append(f"{name}: {field} changed {old} -> {new}")
        # Timing: generous floors, not equality.
        if fresh["speedup"] < 0.4 * baseline["speedup"]:
            failures.append(
                f"{name}: speedup regressed {baseline['speedup']}x -> "
                f"{fresh['speedup']}x (floor is 40% of committed)"
            )
        if baseline.get("vectorized_speedup") and fresh.get("vectorized_speedup"):
            if fresh["vectorized_speedup"] < 0.4 * baseline["vectorized_speedup"]:
                failures.append(
                    f"{name}: vectorized speedup regressed "
                    f"{baseline['vectorized_speedup']}x -> "
                    f"{fresh['vectorized_speedup']}x (floor is 40% of committed)"
                )
        if baseline.get("auto_vs_best") and fresh.get("auto_vs_best"):
            ceiling = max(1.6, 1.8 * baseline["auto_vs_best"])
            if fresh["auto_vs_best"] > ceiling:
                failures.append(
                    f"{name}: auto_vs_best regressed "
                    f"{baseline['auto_vs_best']}x -> {fresh['auto_vs_best']}x "
                    f"(ceiling {ceiling:.2f}x)"
                )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--points",
        default=None,
        help="comma-separated subset of points (default: all)",
    )
    parser.add_argument("--flows", type=int, default=None, help="override sweep size")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run (per-point smoke sizes) with allocator verification",
    )
    parser.add_argument("--min-inrp-speedup", type=float, default=None)
    parser.add_argument(
        "--min-vectorized-speedup",
        type=float,
        default=None,
        help="fail if the vectorized core is below this multiple of the "
        "incremental core at any calibrated (non-overload) point",
    )
    # Adaptive ``core="auto"`` policy knobs, passed through to the
    # simulator at every point so the sweep harness can explore them
    # (defaults: the simulator's own).
    parser.add_argument("--adaptive-threshold", type=float, default=None)
    parser.add_argument("--adaptive-patience", type=int, default=None)
    parser.add_argument("--adaptive-probe-every", type=int, default=None)
    parser.add_argument("--adaptive-min-active", type=int, default=None)
    parser.add_argument(
        "--max-auto-ratio",
        type=float,
        default=None,
        help="fail if auto exceeds this multiple of the better core at overload",
    )
    parser.add_argument(
        "--memory",
        action="store_true",
        help="run the streaming-pipeline memory benchmark (subprocess "
        "peak-RSS measurement per sink); core points are skipped unless "
        "--points names them explicitly",
    )
    parser.add_argument("--memory-child", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--out", default=None, help="write the JSON record here")
    parser.add_argument(
        "--merge-into",
        default=None,
        help="insert this run under its mode key ('smoke'/'full') in a "
        "trajectory file holding both sections — how the committed "
        "BENCH_flowsim.json is (re)generated",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        help="diff-check results against a committed BENCH_flowsim.json",
    )
    args = parser.parse_args(argv)

    if args.memory_child:
        return memory_child(args.memory_child)

    if args.points is not None:
        names = args.points.split(",")
    elif args.memory:
        names = []  # memory-only invocation
    else:
        names = list(POINTS)
    unknown = [name for name in names if name not in POINTS]
    if unknown:
        print(f"unknown point(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    adaptive = {
        key: value
        for key, value in (
            ("adaptive_threshold", args.adaptive_threshold),
            ("adaptive_patience", args.adaptive_patience),
            ("adaptive_probe_every", args.adaptive_probe_every),
            ("adaptive_min_active", args.adaptive_min_active),
        )
        if value is not None
    }
    record = {
        "bench": "flowsim-core",
        "mode": "smoke" if args.smoke else "full",
        "points": {},
    }
    if adaptive:
        record["adaptive"] = adaptive
    for name in names:
        point = POINTS[name]
        num_flows = args.flows or (
            point["flows_smoke"] if args.smoke else point["flows_full"]
        )
        verify_flows = min(point["verify_flows"], num_flows)
        record["points"][name] = run_point(
            name, point, num_flows, verify_flows, adaptive=adaptive
        )
    if args.memory:
        record["memory"] = run_memory(args.smoke)

    if args.out:
        Path(args.out).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}", flush=True)
    if args.merge_into:
        trajectory_path = Path(args.merge_into)
        trajectory = (
            json.loads(trajectory_path.read_text())
            if trajectory_path.exists()
            else {"bench": record["bench"]}
        )
        section = trajectory.setdefault(record["mode"], {})
        if record["points"]:
            section["points"] = record["points"]
        if "memory" in record:
            section["memory"] = record["memory"]
        trajectory_path.write_text(
            json.dumps(trajectory, indent=2, sort_keys=True) + "\n"
        )
        print(f"merged '{record['mode']}' section into {args.merge_into}", flush=True)

    status = 0
    for name, point_record in record["points"].items():
        if not point_record["equivalent"]:
            print(f"FAIL: {name}: cores diverged beyond {TOLERANCE}", file=sys.stderr)
            status = 1
        if not point_record["verify"]["ok"]:
            print(
                f"FAIL: {name}: incremental-vs-scratch deviation "
                f"{point_record['verify']['max_deviation']:.2e} exceeds "
                f"{VERIFY_TOLERANCE}",
                file=sys.stderr,
            )
            status = 1
    if "memory" in record:
        for name, passed in record["memory"]["checks"].items():
            if not passed:
                print(f"FAIL: memory check '{name}'", file=sys.stderr)
                status = 1
    if args.min_inrp_speedup is not None:
        inrp = record["points"].get("inrp-calibrated")
        if inrp and inrp["speedup"] < args.min_inrp_speedup:
            print(
                f"FAIL: INRP speedup {inrp['speedup']}x below "
                f"{args.min_inrp_speedup}x",
                file=sys.stderr,
            )
            status = 1
    if args.min_vectorized_speedup is not None:
        for name in ("sp-calibrated", "inrp-calibrated"):
            point_record = record["points"].get(name)
            if point_record and (
                (point_record.get("vectorized_speedup") or math.inf)
                < args.min_vectorized_speedup
            ):
                print(
                    f"FAIL: {name}: vectorized speedup "
                    f"{point_record['vectorized_speedup']}x below "
                    f"{args.min_vectorized_speedup}x",
                    file=sys.stderr,
                )
                status = 1
    if args.max_auto_ratio is not None:
        overload = record["points"].get("inrp-overload")
        if overload and overload["auto_vs_best"] > args.max_auto_ratio:
            print(
                f"FAIL: adaptive core {overload['auto_vs_best']}x of the better "
                f"core at overload (bar {args.max_auto_ratio}x)",
                file=sys.stderr,
            )
            status = 1
    if args.check_against:
        failures = check_against(record, args.check_against)
        for failure in failures:
            print(f"FAIL: trajectory check: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(f"trajectory check against {args.check_against}: ok", flush=True)
    return status


if __name__ == "__main__":
    sys.exit(main())
