"""Fig. 3 — global fairness vs e2e flow control, worked example.

Paper numbers: e2e flow control gives (2, 8) Mbps and Jain 0.73;
INRPP gives (5, 5) Mbps and Jain 1.0.  Both are reproduced twice —
with the fluid allocators and with the full chunk-level protocol
simulation (AIMD baseline vs INRPP with detour + back-pressure).
"""

from __future__ import annotations

import pytest

from repro.analysis.fig3 import (
    PAPER_E2E_JAIN,
    PAPER_INRPP_JAIN,
    fig3_analytic_e2e,
    fig3_analytic_inrpp,
    run_fig3_simulation,
)

from conftest import register_report


def test_bench_fig3_fluid(benchmark):
    def _run():
        return fig3_analytic_e2e(), fig3_analytic_inrpp()

    e2e, inrpp = benchmark.pedantic(_run, rounds=1, iterations=1)
    register_report("Fig. 3 (fluid allocators)", e2e.comparisons().render())
    register_report("Fig. 3 (fluid allocators, INRPP)", inrpp.comparisons().render())
    assert e2e.rate_bottlenecked_mbps == pytest.approx(2.0, abs=0.01)
    assert e2e.rate_clear_mbps == pytest.approx(8.0, abs=0.01)
    assert e2e.jain == pytest.approx(PAPER_E2E_JAIN, abs=0.01)
    assert inrpp.rate_bottlenecked_mbps == pytest.approx(5.0, abs=0.01)
    assert inrpp.rate_clear_mbps == pytest.approx(5.0, abs=0.01)
    assert inrpp.jain == pytest.approx(PAPER_INRPP_JAIN, abs=1e-6)


def test_bench_fig3_chunk_simulation(benchmark):
    def _run():
        e2e, _ = run_fig3_simulation("e2e", duration=20.0)
        inrpp, net = run_fig3_simulation("inrpp", duration=20.0)
        return e2e, inrpp, net

    e2e, inrpp, net = benchmark.pedantic(_run, rounds=1, iterations=1)
    register_report("Fig. 3 (chunk-level, AIMD)", e2e.comparisons().render())
    register_report("Fig. 3 (chunk-level, INRPP)", inrpp.comparisons().render())
    # AIMD tracks the per-path bottlenecks: ~(2, 8) Mbps, Jain ~0.73.
    assert e2e.rate_bottlenecked_mbps == pytest.approx(2.0, rel=0.15)
    assert e2e.rate_clear_mbps == pytest.approx(8.0, rel=0.15)
    assert e2e.jain == pytest.approx(PAPER_E2E_JAIN, abs=0.05)
    # INRPP pools the shared link and the detour: (5, 5) Mbps, Jain 1.
    assert inrpp.rate_bottlenecked_mbps == pytest.approx(5.0, rel=0.05)
    assert inrpp.rate_clear_mbps == pytest.approx(5.0, rel=0.05)
    assert inrpp.jain > 0.99
