"""Ablation — neighbour-state gossip on/off (DESIGN.md decision 4).

Section 3.3 of the paper discusses two detour policies: (i) periodic
one-hop utilisation exchange (informed) and (ii) blind further
detouring (optimistic).  The bench runs concurrent chunk-level
transfers over an ISP map with both policies and reports the aggregate
goodput; informed detouring must never do materially worse.
"""

from __future__ import annotations

from repro.analysis.ablations import ablate_gossip
from repro.analysis.reporting import ascii_table

from conftest import register_report


def _run():
    return ablate_gossip(isp="vsnl", duration=10.0, num_flows=4, seed=11)


def test_bench_ablation_gossip(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [
            "informed (gossip on)" if gossip else "optimistic (gossip off)",
            f"{value / 1e6:.3f}",
        ]
        for gossip, value in sorted(results.items(), reverse=True)
    ]
    register_report(
        "Ablation: neighbour-state gossip (VSNL, 4 flows)",
        ascii_table(["detour policy", "aggregate goodput Mbps"], rows),
    )
    assert results[True] > 0 and results[False] > 0
    # Informed detouring is never materially worse than optimistic.
    assert results[True] >= results[False] * 0.9
