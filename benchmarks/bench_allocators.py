"""Micro-benchmarks of the fluid allocators (library performance).

These are true pytest-benchmark timing runs (many iterations): the
max-min progressive filler and the INRP detour-switching filler on a
mid-size ISP map with a realistic flow population.
"""

from __future__ import annotations

from repro.flowsim.allocation import max_min_allocation
from repro.flowsim.multipath import inrp_allocation
from repro.flowsim.strategies import make_strategy
from repro.routing.detour import DetourTable
from repro.routing.paths import path_links
from repro.topology.isp import build_isp_topology
from repro.units import mbps
from repro.workloads.traffic import local_pairs


def _instance():
    topo = build_isp_topology("exodus", seed=0)
    sampler = local_pairs(topo, seed=7)
    strategy = make_strategy("sp", topo)
    flow_paths = {}
    fid = 0
    while len(flow_paths) < 60:
        src, dst = sampler()
        flow_paths[fid] = strategy.route(fid, src, dst)
        fid += 1
    demands = {fid: mbps(10) for fid in flow_paths}
    return topo, flow_paths, demands


def test_bench_max_min_allocation(benchmark):
    topo, flow_paths, demands = _instance()
    capacities = topo.directed_capacities()
    flow_links = {fid: path_links(path) for fid, path in flow_paths.items()}
    rates = benchmark(max_min_allocation, capacities, flow_links, demands)
    assert all(rate >= 0 for rate in rates.values())


def test_bench_inrp_allocation(benchmark):
    topo, flow_paths, demands = _instance()
    capacities = topo.directed_capacities()
    table = DetourTable(topo, max_intermediate=2)
    result = benchmark(
        inrp_allocation, capacities, flow_paths, demands, table
    )
    assert all(rate >= 0 for rate in result.rates.values())
