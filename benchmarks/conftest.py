"""Benchmark session support: collect and print reproduction reports.

Every bench registers its rendered paper-vs-measured tables here; the
``pytest_terminal_summary`` hook prints them after the benchmark
timing table, so ``pytest benchmarks/ --benchmark-only`` shows both
the performance numbers and the reproduction deltas.
"""

from __future__ import annotations

from typing import List

_REPORTS: List[str] = []


def register_report(title: str, body: str) -> None:
    """Store a rendered report for the end-of-session summary."""
    _REPORTS.append(f"\n=== {title} ===\n{body}")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction reports")
    for report in _REPORTS:
        terminalreporter.write_line(report)
