"""Fig. 4a — network throughput of SP / ECMP / INRP on three ISPs.

Paper: "INRP achieves between 9-15% extra bandwidth utilisation,
compared to SP.  ECMP also performs better than SP."  The bench
regenerates the bar chart and gates on the INRP-over-SP band.
"""

from __future__ import annotations

from _shared import fig4_result
from conftest import register_report


def test_bench_fig4a(benchmark):
    result = benchmark.pedantic(fig4_result, rounds=1, iterations=1)
    register_report("Fig. 4a: network throughput", result.render_fig4a())
    register_report("Fig. 4a: INRP gain over SP", result.comparisons().render())
    for isp in result.throughput:
        gain = result.gain_over_sp(isp)
        # Shape gate: INRP clearly ahead of SP on every topology, in a
        # band bracketing the paper's 9-15% (substitution S1/S2 slack).
        assert 0.05 <= gain <= 0.25, f"{isp}: INRP gain {gain:.3f} out of band"
        # ECMP must not collapse below SP (equal-cost sets are thin on
        # the synthetic maps, so parity with SP is the expected floor).
        ecmp_gain = result.gain_over_sp(isp, "ecmp")
        assert ecmp_gain >= -0.05
        # INRP is the best strategy on every topology.
        row = result.throughput[isp]
        assert row["inrp"] >= row["ecmp"] and row["inrp"] >= row["sp"]
