"""Shared, cached experiment runs so Fig. 4a/4b benches reuse one sweep."""

from __future__ import annotations

from functools import lru_cache

from repro.analysis.fig4 import Fig4Result, run_fig4


@lru_cache(maxsize=1)
def fig4_result() -> Fig4Result:
    """The calibrated Fig. 4 sweep (seed 42, defaults from the driver)."""
    return run_fig4()
