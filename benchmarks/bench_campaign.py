"""Campaign orchestrator — fan-out overhead and cache-hit latency.

Two things worth measuring on the orchestration layer itself:

- a cold sweep (plan + execute + persist) over a small grid, i.e. what
  one campaign cell costs on top of the underlying driver, and
- a warm sweep over the same grid, which must be dominated by JSON
  loads — the cache is the reason repeat campaigns are free.
"""

from __future__ import annotations

import tempfile

from repro.campaign import CampaignRunner, ResultStore, plan_runs

from conftest import register_report

_GRID = {"isp": ["vsnl"], "seed": [0, 1], "num_snapshots": [2]}


def _sweep(results_dir: str) -> object:
    specs = plan_runs(["snapshot-sweep"], _GRID)
    return CampaignRunner(store=ResultStore(results_dir)).run(specs)


def test_bench_campaign_cold(benchmark):
    with tempfile.TemporaryDirectory() as results_dir:
        report = benchmark.pedantic(
            _sweep, args=(results_dir,), rounds=1, iterations=1
        )
    assert report.computed == 2 and report.cache_hits == 0
    register_report("campaign: cold sweep", report.summary())


def test_bench_campaign_cached(benchmark):
    with tempfile.TemporaryDirectory() as results_dir:
        _sweep(results_dir)  # warm the store
        report = benchmark.pedantic(
            _sweep, args=(results_dir,), rounds=3, iterations=1
        )
        assert report.computed == 0 and report.cache_hits == 2
    register_report("campaign: warm sweep (all cache hits)", report.summary())
