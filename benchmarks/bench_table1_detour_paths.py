"""Table 1 — detour availability across the nine ISP maps.

Regenerates the paper's Table 1: per-ISP percentages of links with
1-hop / 2-hop / 3+-hop / no detours.  The synthetic maps are calibrated
so every cell matches the paper to 2-decimal rounding (< 0.005 pp).
"""

from __future__ import annotations

from repro.analysis.table1 import run_table1

from conftest import register_report


def test_bench_table1(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    register_report("Table 1: detour availability", result.render())
    # Reproduction gate: every cell within 0.5 pp of the paper's value
    # (measured: < 0.005 pp, i.e. exact to published rounding).
    assert result.max_error < 0.5
    # The qualitative ordering the paper calls out: Level 3 is by far
    # the most detour-rich map, VSNL/Tiscali the poorest.
    by_one_hop = {row.isp: row.measured[0] for row in result.rows}
    assert by_one_hop["level3"] > 90.0
    assert by_one_hop["level3"] > by_one_hop["telstra"] > by_one_hop["exodus"]
    assert by_one_hop["vsnl"] < 30.0 and by_one_hop["tiscali"] < 30.0
