"""Fig. 4b — CDF of INRP path stretch on Exodus / Telstra / Tiscali.

Paper: detouring comes "with minimal path stretch" — the CDF starts
above ~0.5 at stretch 1.0 and tops out around 1.35.  We gate on the
same shape: most traffic unstretched, a thin bounded tail.
"""

from __future__ import annotations

from _shared import fig4_result
from conftest import register_report


def test_bench_fig4b(benchmark):
    result = benchmark.pedantic(fig4_result, rounds=1, iterations=1)
    register_report("Fig. 4b: INRP path stretch CDF", result.render_fig4b())
    for isp, snapshot in result.inrp_results.items():
        cdf = snapshot.stretch_cdf()
        # Most traffic takes the shortest path (paper: >= ~50-65%).
        assert cdf(1.0) >= 0.5, f"{isp}: only {cdf(1.0):.2f} of bits unstretched"
        # The stretch tail is thin and bounded (paper max ~1.35; our
        # depth-2 detours on short paths allow a slightly longer tail).
        assert cdf.quantile(0.95) <= 1.5, f"{isp}: p95 stretch too large"
        assert cdf.max <= 2.0, f"{isp}: max stretch {cdf.max:.2f}"
