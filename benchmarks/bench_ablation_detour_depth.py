"""Ablation — detour depth 0 / 1 / 2 (DESIGN.md decision 1).

Depth 0 disables detouring (INRP degenerates to SP-with-push), depth 1
is the literal "one-hop detours", depth 2 adds the extra hop on the
detour path.  Throughput should be non-decreasing in depth, with the
step 0 -> 1 the largest on triangle-rich maps (Telstra).
"""

from __future__ import annotations

from repro.analysis.reporting import ascii_table
from repro.flowsim.snapshots import snapshot_experiment
from repro.flowsim.strategies import make_strategy
from repro.rng import derive_seed
from repro.topology.isp import build_isp_topology
from repro.units import mbps
from repro.workloads.traffic import local_pairs

from conftest import register_report


def _run():
    topo = build_isp_topology("telstra", seed=0)
    num_flows = max(10, topo.num_nodes // 12)
    sampler_seed = derive_seed(42, "ablation-depth")
    throughput = {}
    for depth in (0, 1, 2):
        strategy = make_strategy("inrp", topo, detour_depth=depth)
        snapshot = snapshot_experiment(
            topo,
            strategy,
            num_flows=num_flows,
            demand_bps=mbps(10),
            num_snapshots=6,
            seed=42,
            pair_sampler=local_pairs(topo, sampler_seed),
        )
        throughput[depth] = snapshot.mean_throughput
    return throughput


def test_bench_ablation_detour_depth(benchmark):
    throughput = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [str(depth), f"{value:.3f}", f"{value / throughput[0] - 1:+.2%}"]
        for depth, value in sorted(throughput.items())
    ]
    register_report(
        "Ablation: detour depth (Telstra)",
        ascii_table(["depth", "throughput", "gain vs depth 0"], rows),
    )
    assert throughput[1] >= throughput[0] - 0.01
    assert throughput[2] >= throughput[1] - 0.01
    assert throughput[2] > throughput[0] * 1.05  # detouring must pay
