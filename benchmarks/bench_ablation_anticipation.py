"""Ablation — anticipation horizon Ac (DESIGN.md decision 3).

``Ac`` bounds how far ahead of explicit requests the sender may push.
With Ac = 0 the sender is purely request-clocked (no push gain); the
INRPP pooling of Fig. 3 needs a horizon at least covering the in-
flight pipe.  The bench sweeps Ac on the Fig. 3 scenario and reports
the bottlenecked flow's goodput.
"""

from __future__ import annotations

import pytest

from repro.analysis.fig3 import run_fig3_simulation
from repro.analysis.reporting import ascii_table
from repro.chunksim import ChunkSimConfig

from conftest import register_report


def _run():
    results = {}
    for anticipation in (0, 2, 8, 32):
        config = ChunkSimConfig(anticipation=anticipation)
        outcome, _ = run_fig3_simulation("inrpp", duration=15.0, config=config)
        results[anticipation] = (
            outcome.rate_bottlenecked_mbps,
            outcome.rate_clear_mbps,
            outcome.jain,
        )
    return results


def test_bench_ablation_anticipation(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [str(ac), f"{r1:.3f}", f"{r2:.3f}", f"{jain:.3f}"]
        for ac, (r1, r2, jain) in sorted(results.items())
    ]
    register_report(
        "Ablation: anticipation horizon Ac (Fig. 3, INRPP)",
        ascii_table(["Ac", "flow 1->4 Mbps", "flow 1->5 Mbps", "Jain"], rows),
    )
    # A modest horizon restores the full pooled allocation...
    assert results[8][0] == pytest.approx(5.0, rel=0.1)
    assert results[8][2] > 0.98
    # ...and larger horizons do not destabilise it.
    assert results[32][0] == pytest.approx(5.0, rel=0.1)
